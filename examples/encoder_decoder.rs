//! Encoder-decoder (T5-style) pricing: both attention flavors of a
//! decoder block — causal self-attention and cross-attention into a long
//! encoder context — under baseline and FLAT dataflows, plus a simple
//! end-to-end summarization-serving estimate.
//!
//! Run: `cargo run --release --example encoder_decoder`

use flat::arch::Accelerator;
use flat::core::{BlockDataflow, CostModel, Granularity};
use flat::workloads::{DecoderBlock, Model};

fn main() {
    let accel = Accelerator::cloud();
    let model = Model::t5_small();
    let (batch, enc_seq, dec_seq) = (64u64, 16_384u64, 1024u64);
    let cm = CostModel::new(&accel);

    println!("# T5-style summarization on {accel}");
    println!("# encoder context {enc_seq}, decoder window {dec_seq}, batch {batch}\n");

    let dec_block = DecoderBlock::for_model(&model, batch, dec_seq, enc_seq);
    println!("## one decoder block ({dec_block})");
    for df in [
        BlockDataflow::base(),
        BlockDataflow::flat(Granularity::Row(256)),
    ] {
        let cost = cm.decoder_block_cost(&dec_block, &df);
        let total = cost.total();
        println!(
            "  {:10}  total {:.3e} cyc (util {:.3}) | L-A {:.3e}  proj {:.3e}  FC {:.3e}",
            df.label(),
            total.cycles,
            total.util(),
            cost.logit_attend.cycles,
            cost.projection.cycles,
            cost.feed_forward.cycles,
        );
    }

    // End-to-end: encode the document once, then run the decoder stack.
    println!(
        "\n## end-to-end estimate (encoder stack + decoder stack, {} blocks each)",
        model.blocks()
    );
    for df in [
        BlockDataflow::base(),
        BlockDataflow::flat(Granularity::Row(256)),
    ] {
        let enc = cm.model_cost(&model, batch, enc_seq, &df).total();
        let dec = cm
            .decoder_block_cost(&dec_block, &df)
            .total()
            .repeat(model.blocks());
        let total_s = accel.cycles_to_seconds(enc.cycles + dec.cycles);
        println!(
            "  {:10}  encode {:.3e} + decode {:.3e} cyc = {:.1} ms/batch ({:.0} docs/s)",
            df.label(),
            enc.cycles,
            dec.cycles,
            total_s * 1e3,
            batch as f64 / total_s,
        );
    }
    println!();
    println!("The cross-attention layer reads a 16K-token encoder memory from every");
    println!("decoder position - its [dec, enc] logit slice is exactly the tensor FLAT");
    println!("keeps on-chip, so the fused dataflow accelerates the decoder as well as");
    println!("the encoder.");
}
