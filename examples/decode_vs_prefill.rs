//! Decode vs prefill: where FLAT matters and where it honestly does not.
//!
//! The paper's quadratic bottleneck lives in *prefill/encoder* attention
//! (`N` queries × `N` keys). An autoregressive *decode step* with a KV
//! cache has one query row: its logit tensor is `B·H·1·context` — linear
//! — so there is nothing quadratic for fusion to eliminate. This example
//! prices both phases at the same context length and shows the contrast,
//! which is exactly the boundary one should check before adopting the
//! dataflow.
//!
//! Run: `cargo run --release --example decode_vs_prefill`

use flat::arch::Accelerator;
use flat::core::{BlockDataflow, CostModel, Granularity};
use flat::workloads::{Model, Scope};

fn main() {
    let accel = Accelerator::cloud();
    let model = Model::xlm();
    let cm = CostModel::new(&accel);
    let context = 16_384;

    println!("# {model} on {accel}, context {context}\n");

    println!("## prefill (N x N attention) — the paper's regime");
    let prefill = model.block(64, context);
    for df in [
        BlockDataflow::base(),
        BlockDataflow::flat(Granularity::Row(256)),
    ] {
        let r = cm.scope_cost(&prefill, &df, Scope::LogitAttend);
        println!(
            "  {:10}  util {:.3}  off-chip {:>12}  logits {:>10}",
            df.label(),
            r.util(),
            r.traffic.offchip.to_string(),
            prefill.config().logit_size().to_string(),
        );
    }

    println!("\n## decode step (1 x N attention, KV cache) — linear regime");
    let decode = model.decode_step(64, context);
    for df in [
        BlockDataflow::base(),
        BlockDataflow::flat(Granularity::Row(1)),
    ] {
        let r = cm.scope_cost(&decode, &df, Scope::LogitAttend);
        println!(
            "  {:10}  util {:.3}  off-chip {:>12}  logits {:>10}",
            df.label(),
            r.util(),
            r.traffic.offchip.to_string(),
            decode.config().logit_size().to_string(),
        );
    }

    println!();
    println!("Prefill: the quadratic intermediate dominates and FLAT's fusion removes it.");
    println!(
        "Decode: the logit tensor is ~{}x smaller than prefill's; both dataflows are",
        prefill.config().logit_elements() / decode.config().logit_elements()
    );
    println!("bound by streaming the KV cache, which no fusion can avoid — attention");
    println!("decoding is bandwidth-limited by fundamentals (activation-activation, B=1 row).");
}
