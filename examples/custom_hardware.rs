//! Designing a custom attention accelerator with the full toolbox:
//! builder, area model, two-level hierarchy, and the joint
//! hardware + dataflow search.
//!
//! Run: `cargo run --release --example custom_hardware`

use flat::arch::{Accelerator, AreaModel, L2Sram, MemorySystem, Noc, Sfu};
use flat::core::{CostModel, FusedDataflow, Granularity};
use flat::dse::{best_hardware, HwSearchSpec, Objective, SpaceKind};
use flat::tensor::Bytes;
use flat::workloads::Model;

fn main() {
    // 1. Hand-build a part with the fluent builder.
    let custom = Accelerator::builder("my-npu")
        .pe(48, 48)
        .sg(Bytes::from_kib(384))
        .noc(Noc::Tree)
        .sfu(Sfu::new(512, 16))
        .memory(MemorySystem::new(2.0e12, 100.0e9))
        .clock_hz(1.2e9)
        .l2_sram(L2Sram::new(Bytes::from_mib(4), 300.0e9))
        .build();
    let area = AreaModel::default_28nm();
    println!("hand-built: {custom}");
    println!(
        "die area:   {:.2} mm² (28nm-class model)\n",
        area.area_mm2(&custom)
    );

    // 2. Price a workload on it.
    let block = Model::bert().block(32, 8192);
    let cm = CostModel::new(&custom);
    let report = cm.fused_la_cost(&block, &FusedDataflow::new(Granularity::Row(64)));
    println!(
        "BERT N=8192 FLAT-R64: util {:.3}, off-chip {}, {:.2} ms",
        report.util(),
        report.traffic.offchip,
        custom.cycles_to_seconds(report.cycles) * 1e3
    );

    // 3. Or let the joint HW+dataflow search pick the split for you.
    let spec = HwSearchSpec::edge_class(area.area_mm2(&custom));
    let best = best_hardware(&spec, &block, SpaceKind::Full, Objective::MaxUtil)
        .expect("budget affords candidates");
    println!("\nsame area, searched: {}", best.hw.accel);
    println!(
        "  util {:.3}, {:.0} useful MACs/cycle",
        best.report.util(),
        best.useful_macs_per_cycle
    );
    println!("\nThe searcher rebalances silicon between PEs and SRAM for the workload —");
    println!("with FLAT in the dataflow space, the answer is always compute-heavy (§8).");
}
