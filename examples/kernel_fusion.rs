//! Numerical witness: run real attention arithmetic three ways — naive,
//! FLAT row-tiled, and streaming (online softmax) — and verify they agree
//! while using wildly different live intermediate footprints.
//!
//! Run: `cargo run --release --example kernel_fusion`

use flat::kernels::{
    flat_attention, naive_attention, quantized_flat_attention, streaming_attention, Mask,
    MultiHeadInput,
};

fn main() {
    let (batch, heads, seq, dk) = (2usize, 8usize, 256usize, 64usize);
    let input = MultiHeadInput::random(batch, heads, seq, seq, dk, 2023);
    println!("# attention: B={batch} H={heads} N={seq} dk={dk} (f32)");
    println!();

    let naive = naive_attention(&input, Mask::None);
    let naive_live = seq * seq;
    println!("naive:     live logit elements per head = {naive_live} (the O(N^2) tensor)");

    for rows in [4usize, 16, 64] {
        let fused = flat_attention(&input, rows, Mask::None);
        let max_diff = fused
            .iter()
            .zip(&naive)
            .map(|(f, n)| f.max_abs_diff(n))
            .fold(0.0f32, f32::max);
        println!(
            "FLAT R={rows:<3}: live logit elements = {:>6} ({}x smaller), max |diff| vs naive = {max_diff:.2e}",
            rows * seq,
            naive_live / (rows * seq),
        );
        assert!(max_diff < 1e-4);
    }

    let streamed = streaming_attention(&input, 16, 32, Mask::None);
    let max_diff = streamed
        .iter()
        .zip(&naive)
        .map(|(s, n)| s.max_abs_diff(n))
        .fold(0.0f32, f32::max);
    println!(
        "streaming (16x32 tiles, online softmax): live = {:>6} elements, max |diff| = {max_diff:.2e}",
        16 * 32
    );
    assert!(max_diff < 1e-3);

    println!();
    println!("Causal (decoder) masking, cross-checked the same way:");
    let causal_naive = naive_attention(&input, Mask::Causal);
    let causal_fused = flat_attention(&input, 16, Mask::Causal);
    let max_diff = causal_fused
        .iter()
        .zip(&causal_naive)
        .map(|(f, n)| f.max_abs_diff(n))
        .fold(0.0f32, f32::max);
    println!("FLAT R=16 causal: max |diff| = {max_diff:.2e}");
    assert!(max_diff < 1e-4);

    println!();
    println!("Quantization is orthogonal (§7): the same fused execution over int8 tensors:");
    let q8 = quantized_flat_attention(&input, 16, Mask::None);
    let max_diff = q8
        .iter()
        .zip(&naive)
        .map(|(q, n)| q.max_abs_diff(n))
        .fold(0.0f32, f32::max);
    println!("int8 FLAT R=16: max |diff| vs fp32 = {max_diff:.3} (quantization noise, not dataflow error)");

    println!();
    println!("All executions compute the same attention; only the live slice of");
    println!("the logit tensor differs. FLAT needs complete rows (exact softmax); the");
    println!("streaming variant relaxes even that with online rescaling.");
}
