//! Energy audit: where does the energy go, and what exactly does FLAT
//! save? Reproduces the paper's §5.3.2 observation that FLAT changes
//! *only* the off-chip access count — compute and scratchpad activity are
//! identical — yet that one change dominates the bill.
//!
//! Run: `cargo run --release --example energy_audit`

use flat::arch::Accelerator;
use flat::core::{BlockDataflow, CostModel, CostReport, Granularity};
use flat::workloads::{Model, Scope};

fn print_energy(name: &str, r: &CostReport) {
    let e = r.energy;
    println!(
        "{name:10} total {:>10.3e} pJ | MAC {:>9.2e}  SL {:>9.2e}  SG {:>9.2e}  DRAM {:>9.2e}  SFU {:>9.2e} | memory share {:>5.1}%",
        e.total_pj(),
        e.compute_pj,
        e.sl_pj,
        e.sg_pj,
        e.dram_pj,
        e.sfu_pj,
        e.memory_fraction() * 100.0
    );
}

fn main() {
    let accel = Accelerator::cloud();
    let block = Model::xlm().block(64, 16_384);
    let cm = CostModel::new(&accel);
    println!("# Energy audit — {block} on {accel}\n");

    let base = cm.scope_cost(&block, &BlockDataflow::base(), Scope::LogitAttend);
    let flat = cm.scope_cost(
        &block,
        &BlockDataflow::flat(Granularity::Row(256)),
        Scope::LogitAttend,
    );

    print_energy("Base", &base);
    print_energy("FLAT-R256", &flat);
    println!();
    println!(
        "same MACs?            {}",
        base.activity.macs == flat.activity.macs
    );
    println!(
        "DRAM accesses:        {:.3e} -> {:.3e}  ({:.1}% eliminated)",
        base.activity.dram_accesses as f64,
        flat.activity.dram_accesses as f64,
        (1.0 - flat.activity.dram_accesses as f64 / base.activity.dram_accesses as f64) * 100.0
    );
    println!(
        "energy ratio:         {:.2}",
        flat.energy.total_pj() / base.energy.total_pj()
    );
    println!();
    println!("Each DRAM access costs ~200x a MAC and ~33x an SG access (Accelergy-class");
    println!("ratios), so eliminating the intermediate tensor's round trips is worth more");
    println!("than any compute optimization could be.");
}
