//! Cloud design-space exploration: run the full FLAT DSE for XLM on the
//! cloud platform, compare objectives (§6.4), and print the Pareto
//! frontier of utilization vs live footprint (the Figure 10 view).
//!
//! Run: `cargo run --release --example cloud_dse`

use flat::arch::Accelerator;
use flat::core::LaExecution;
use flat::dse::{pareto_frontier, Dse, Objective, SpaceKind};
use flat::workloads::Model;

fn label(la: &LaExecution) -> String {
    match la {
        LaExecution::Fused(f) => format!("FLAT-{}", f.granularity),
        LaExecution::Sequential { logit, .. } => match logit.l3 {
            None => "Base".to_owned(),
            Some(l3) => format!("Base-{}", l3.granularity),
        },
    }
}

fn main() {
    let accel = Accelerator::cloud();
    let block = Model::xlm().block(64, 16_384);
    println!("# DSE for {block} on {accel}");
    let dse = Dse::new(&accel, &block);

    // One optimum per objective — the paper's point that the DSE target is
    // flexible (best-Util vs best-energy pick different corners).
    println!("\n## optimum per objective");
    for obj in Objective::all() {
        let best = dse.best_la(SpaceKind::Full, obj);
        println!(
            "  {:20} -> {:12}  util {:.3}  energy {:.3e} pJ  footprint {}",
            obj.to_string(),
            label(&best.la),
            best.report.util(),
            best.report.energy.total_pj(),
            best.report.footprint,
        );
    }

    // The Pareto frontier of the whole space: the top-left corner of
    // Figure 10.
    let points = dse.explore_la(SpaceKind::Full);
    let frontier = pareto_frontier(&points);
    println!(
        "\n## Pareto frontier (footprint vs util) over {} points",
        points.len()
    );
    for p in &frontier {
        println!(
            "  {:>12}  util {:.3}  ({})",
            p.report.footprint.to_string(),
            p.report.util(),
            label(&p.la),
        );
    }
    println!("\nEvery frontier step buys utilization with footprint; FLAT's R-granularity");
    println!("populates the region sequential dataflows cannot reach.");
}
