//! Edge deployment study: how far can a 512 KiB-scratchpad edge
//! accelerator push the sequence length, and which FLAT row granularity
//! should its compiler pick at each point?
//!
//! This is the paper's motivating scenario (§1: long-sequence tasks on
//! bandwidth-starved parts).
//!
//! Run: `cargo run --release --example edge_longseq`

use flat::arch::Accelerator;
use flat::core::{CostModel, FusedDataflow, Granularity, LaExecution};
use flat::dse::{Dse, Objective, SpaceKind};
use flat::workloads::Model;

fn main() {
    let accel = Accelerator::edge();
    let model = Model::bert();
    println!("# Best dataflow per sequence length — {model} on {accel}");
    println!(
        "{:>8}  {:>14}  {:>8}  {:>8}  {:>12}",
        "seq", "best dataflow", "LA util", "vs base", "footprint"
    );

    for seq in [512u64, 1024, 2048, 4096, 8192, 16_384, 32_768, 65_536] {
        let block = model.block(64, seq);
        let dse = Dse::new(&accel, &block);
        let best = dse.best_la(SpaceKind::Full, Objective::MaxUtil);
        let base = dse.best_la(SpaceKind::Sequential, Objective::MaxUtil);
        let label = match best.la {
            LaExecution::Fused(f) => format!("FLAT-{}", f.granularity),
            LaExecution::Sequential { .. } => "sequential".to_owned(),
        };
        println!(
            "{:>8}  {:>14}  {:>8.3}  {:>7.2}x  {:>12}",
            seq,
            label,
            best.report.util(),
            best.report.util() / base.report.util(),
            best.report.footprint.to_string(),
        );
    }

    println!();
    println!("# Fixed-R sensitivity at N = 8192 (the R hyper-parameter of §4.2.2):");
    let block = model.block(64, 8192);
    let cm = CostModel::new(&accel);
    for r in [4u64, 8, 16, 32, 64, 128, 256] {
        let report = cm.fused_la_cost(&block, &FusedDataflow::new(Granularity::Row(r)));
        println!(
            "  R={:<4}  util {:.3}  off-chip {:>12}  footprint {:>12}",
            r,
            report.util(),
            report.traffic.offchip.to_string(),
            report.footprint.to_string(),
        );
    }
    println!();
    println!("Small R wastes the array and refetches K; big R overflows the scratchpad.");
    println!("The DSE finds the knee automatically.");
}
