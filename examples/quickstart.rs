//! Quickstart: price one BERT attention block on the edge accelerator
//! under the sequential baseline and under FLAT, and see why fusion wins.
//!
//! Run: `cargo run --release --example quickstart`

use flat::arch::Accelerator;
use flat::core::{BlockDataflow, CostModel, Granularity};
use flat::workloads::{Model, Scope};

fn main() {
    // The paper's edge platform: 32x32 PEs, 512 KiB scratchpad, 1 TB/s
    // on-chip, 50 GB/s off-chip (Figure 7(a)).
    let accel = Accelerator::edge();
    println!("accelerator: {accel}");

    // BERT-base, batch 64, sequence length 4096.
    let block = Model::bert().block(64, 4096);
    println!("workload:    {block}");
    println!();

    let cm = CostModel::new(&accel);
    for df in [
        BlockDataflow::base(),
        BlockDataflow::base_staged(Granularity::BatchMultiHead),
        BlockDataflow::flat(Granularity::Head),
        BlockDataflow::flat(Granularity::Row(64)),
    ] {
        let la = cm.scope_cost(&block, &df, Scope::LogitAttend);
        let total = cm.scope_cost(&block, &df, Scope::Block);
        println!(
            "{:10}  L-A util {:.3}  block util {:.3}  off-chip {:>12}  live footprint {:>12}",
            df.label(),
            la.util(),
            total.util(),
            la.traffic.offchip.to_string(),
            la.footprint.to_string(),
        );
    }

    println!();
    println!("FLAT-R64 stages only an [R x N] logit slice on-chip: a ~1000x smaller live");
    println!("footprint than any coarse-grained staging, so the O(N^2) intermediate tensor");
    println!("never round-trips DRAM - that is the whole paper in one table.");
}
