//! FLAT — facade crate for the full reproduction stack.
//!
//! Re-exports every sub-crate under one roof so examples and downstream
//! users can depend on a single crate. See the individual crates for the
//! substance:
//!
//! * [`tensor`] — shapes, dtypes, GEMM descriptors, operational intensity.
//! * [`arch`] — the abstract accelerator (PE array, scratchpads, NoC, SFU,
//!   memory system, energy table) plus the paper's edge/cloud presets.
//! * [`workloads`] — the model zoo (BERT, FlauBERT, XLM, TransformerXL, T5)
//!   and the attention-block operator graph.
//! * [`core`] — the FLAT dataflow and its analytical cost model.
//! * [`kernels`] — numerical witness: fused row-tiled attention with
//!   streaming softmax, proven equivalent to the naive computation.
//! * [`dse`] — design-space exploration and the ATTACC accelerator configs.
//! * [`serve`] — the continuous-batching inference runtime: paged
//!   KV-cache, iteration-level scheduler, serving metrics, typed errors
//!   with deadline-aware shedding, and a seeded fault-injection harness.
//! * [`desim`] — the discrete-event simulation backend: virtual-time
//!   contexts over bounded backpressured channels, cross-validating the
//!   analytical cost model lane by lane.
//! * [`dist`] — multi-accelerator sharded execution: fabric topologies
//!   with analytical collective costs, head/sequence/KV partition
//!   strategies, and chip-count scaling sweeps.
//! * [`telemetry`] — the unified observability layer: trace spans and
//!   counters behind a `TraceSink`, Chrome/Perfetto trace export, and
//!   Prometheus-style text exposition.
//! * [`fleet`] — the sustained-load fleet harness: diurnal multi-tenant
//!   traffic with prefix-template libraries, driven through the serving
//!   runtime with windowed trajectories and elastic cluster resizes.
//! * [`insight`] — the analysis layer over the telemetry: per-request
//!   critical-path attribution of traces, differential run comparison,
//!   SLO burn-rate and anomaly findings over trajectories, and the
//!   bench-history regression observatory.

#![forbid(unsafe_code)]

pub use flat_arch as arch;
pub use flat_core as core;
pub use flat_desim as desim;
pub use flat_dist as dist;
pub use flat_dse as dse;
pub use flat_fleet as fleet;
pub use flat_gpu as gpu;
pub use flat_insight as insight;
pub use flat_kernels as kernels;
pub use flat_serve as serve;
pub use flat_sim as sim;
pub use flat_telemetry as telemetry;
pub use flat_tensor as tensor;
pub use flat_workloads as workloads;
