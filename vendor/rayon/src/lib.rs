//! Offline stand-in for `rayon`: indexed data parallelism over a single
//! **shared global thread pool**.
//!
//! Every `par_iter()` in the workspace — DSE search, the kernels' group
//! parallelism, the sweep grid — drains into the same lazily-spawned pool
//! (`available_parallelism` workers), so nothing in the stack spawns
//! per-call threads. With one core (or tiny inputs) execution degenerates
//! to an inline loop in the caller with zero synchronization overhead.
//!
//! Scope of the API subset: parallel iterators over slices (`par_iter`)
//! and `usize`/`u64` ranges (`into_par_iter`), the `map` adapter, and the
//! `collect`/`reduce`/`max_by`/`min_by`/`for_each`/`sum` consumers.
//! Semantics match upstream where it is observable: `collect` preserves
//! index order and `max_by` returns the **latest** maximum under the
//! iteration order, exactly like `Iterator::max_by`, so parallel searches
//! tie-break identically to their serial references.

mod pool;

pub use pool::current_num_threads;

use pool::run_chunked;

/// The upstream prelude: import `rayon::prelude::*` and use `par_iter`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice};
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Slice-likes with a by-reference parallel iterator.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> SliceIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
}

/// An indexed parallel iterator: a length plus a `Sync` element producer.
/// All consumers drive the index space through the shared pool.
pub trait ParallelIterator: Sized + Sync {
    /// The element type.
    type Item: Send;

    /// Number of elements.
    fn len(&self) -> usize;

    /// Whether the iterator is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the element at `index` (called concurrently from pool
    /// workers).
    fn produce(&self, index: usize) -> Self::Item;

    /// Maps every element through `f` in parallel.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> MapIter<Self, F> {
        MapIter { inner: self, f }
    }

    /// Collects into a container, preserving index order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Runs `f` on every element.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        run_chunked(self.len(), &|range| {
            for i in range {
                f(self.produce(i));
            }
        });
    }

    /// Folds all elements with `op`, seeding each chunk with
    /// `identity()` — upstream `reduce` semantics (requires `op`
    /// associative and `identity` neutral for a deterministic result).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let chunks = map_chunks(&self, &|acc: Option<Self::Item>, item| {
            Some(match acc {
                None => op(identity(), item),
                Some(acc) => op(acc, item),
            })
        });
        chunks
            .into_iter()
            .flatten()
            .fold(None, |acc, item| {
                Some(match acc {
                    None => item,
                    Some(acc) => op(acc, item),
                })
            })
            .unwrap_or_else(identity)
    }

    /// The maximum element under `cmp`; the **latest** of equal maxima,
    /// matching `Iterator::max_by`.
    fn max_by<F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering + Sync>(
        self,
        cmp: F,
    ) -> Option<Self::Item> {
        let chunks = map_chunks(&self, &|best: Option<Self::Item>, item| {
            Some(match best {
                None => item,
                // `>= ` in max terms: later item wins ties.
                Some(best) => {
                    if cmp(&item, &best) == std::cmp::Ordering::Less {
                        best
                    } else {
                        item
                    }
                }
            })
        });
        // Chunks are gathered in index order; the same later-wins rule
        // across chunks reproduces the serial tie-break exactly.
        chunks.into_iter().flatten().fold(None, |best, item| {
            Some(match best {
                None => item,
                Some(best) => {
                    if cmp(&item, &best) == std::cmp::Ordering::Less {
                        best
                    } else {
                        item
                    }
                }
            })
        })
    }

    /// The minimum element under `cmp`; the **first** of equal minima,
    /// matching `Iterator::min_by`.
    fn min_by<F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering + Sync>(
        self,
        cmp: F,
    ) -> Option<Self::Item> {
        let first_wins = |best: Option<Self::Item>, item: Self::Item| {
            Some(match best {
                None => item,
                Some(best) => {
                    if cmp(&item, &best) == std::cmp::Ordering::Less {
                        item
                    } else {
                        best
                    }
                }
            })
        };
        let chunks = map_chunks(&self, &first_wins);
        chunks.into_iter().flatten().fold(None, first_wins)
    }

    /// Sums all elements.
    fn sum<S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>>(self) -> S {
        let chunks = map_chunks(&self, &|acc: Option<Vec<Self::Item>>, item| {
            let mut v = acc.unwrap_or_default();
            v.push(item);
            Some(v)
        });
        chunks
            .into_iter()
            .flatten()
            .map(|v| v.into_iter().sum::<S>())
            .sum()
    }
}

/// Runs the iterator chunk-wise on the pool, folding each chunk with
/// `fold_item`, and returns per-chunk accumulators in index order.
fn map_chunks<P: ParallelIterator, A: Send>(
    iter: &P,
    fold_item: &(dyn Fn(Option<A>, P::Item) -> Option<A> + Sync),
) -> Vec<Option<A>> {
    let n = iter.len();
    let slots: Vec<std::sync::Mutex<(bool, Option<A>)>> = (0..pool::chunk_count(n))
        .map(|_| std::sync::Mutex::new((false, None)))
        .collect();
    pool::run_chunked_indexed(n, &|chunk_idx, range| {
        let mut acc = None;
        for i in range {
            acc = fold_item(acc, iter.produce(i));
        }
        *slots[chunk_idx].lock().expect("chunk slot poisoned") = (true, acc);
    });
    slots
        .into_iter()
        .map(|m| {
            let (done, acc) = m.into_inner().expect("chunk slot poisoned");
            debug_assert!(done, "chunk not executed");
            acc
        })
        .collect()
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn produce(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! range_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                self.len
            }

            fn produce(&self, index: usize) -> $t {
                self.start + index as $t
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }
    )*};
}
range_iter!(usize, u64, u32);

/// See [`ParallelIterator::map`].
pub struct MapIter<P, F> {
    inner: P,
    f: F,
}

impl<P: ParallelIterator, U: Send, F: Fn(P::Item) -> U + Sync> ParallelIterator for MapIter<P, F> {
    type Item = U;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn produce(&self, index: usize) -> U {
        (self.f)(self.inner.produce(index))
    }
}

/// Containers buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the container, preserving index order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        let chunks = map_chunks(&iter, &|acc: Option<Vec<T>>, item| {
            let mut v = acc.unwrap_or_default();
            v.push(item);
            Some(v)
        });
        let mut out = Vec::with_capacity(iter.len());
        for chunk in chunks.into_iter().flatten() {
            out.extend(chunk);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, s) in squares.iter().enumerate() {
            assert_eq!(*s, i * i);
        }
    }

    #[test]
    fn slice_par_iter_maps() {
        let v: Vec<u64> = (0..257).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[256], 512);
    }

    #[test]
    fn max_by_ties_break_like_serial() {
        // Values with duplicated maxima: serial max_by keeps the last.
        let v: Vec<(usize, i32)> = (0..100).map(|i| (i, (i % 7) as i32)).collect();
        let serial = v.iter().copied().max_by(|a, b| a.1.cmp(&b.1)).unwrap();
        let parallel = v
            .par_iter()
            .map(|&p| p)
            .max_by(|a, b| a.1.cmp(&b.1))
            .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn reduce_sums() {
        let total = (1..=100u64)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&x| x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn for_each_touches_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..10_000usize).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        assert_eq!(
            (0..0usize)
                .into_par_iter()
                .map(|i| i)
                .max_by(|a, b| a.cmp(b)),
            None
        );
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        // A par_iter inside a par_iter must complete even with one worker:
        // inner calls run inline when the pool is busy or single-threaded.
        let out: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                (0..8usize)
                    .into_par_iter()
                    .map(|j| i * j)
                    .collect::<Vec<_>>()
                    .len()
            })
            .collect();
        assert_eq!(out, vec![8; 8]);
    }
}
