//! The shared global thread pool.
//!
//! One pool per process, spawned lazily on first parallel call with
//! `available_parallelism() - 1` workers (the caller is the remaining
//! lane). Work arrives as *tasks*: an index space `0..n` pre-split into
//! chunks that workers and the caller claim from an atomic cursor. The
//! caller always participates in its own task, so nested parallel calls
//! make progress even when every worker is busy — and on a one-core host
//! the pool has zero workers and every call runs inline, costing nothing
//! over a plain loop.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Number of execution lanes (workers + the calling thread). Matches the
/// upstream function of the same name.
pub fn current_num_threads() -> usize {
    pool().lanes
}

/// Number of chunks `run_chunked_indexed(n, ..)` will execute. Consumers
/// that gather per-chunk results size their buffers with this.
pub fn chunk_count(n: usize) -> usize {
    if n <= 1 {
        return n;
    }
    // Over-split 4x relative to lanes so an unlucky expensive chunk can't
    // serialize the tail, but never below one element per chunk.
    n.min(pool().lanes * 4).max(1)
}

/// Splits `0..n` chunk-wise across the pool; `body` receives each index
/// range exactly once. Blocks until every chunk has completed; propagates
/// worker panics to the caller.
pub fn run_chunked(n: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
    run_chunked_indexed(n, &|_idx, range| body(range));
}

/// Like [`run_chunked`], also passing the chunk's ordinal (chunks cover
/// `0..n` in increasing index order: chunk `i` precedes chunk `i + 1`).
pub fn run_chunked_indexed(n: usize, body: &(dyn Fn(usize, Range<usize>) + Sync)) {
    let chunks = chunk_count(n);
    if chunks == 0 {
        return;
    }
    let p = pool();
    if chunks == 1 || p.workers == 0 {
        for (idx, range) in ChunkRanges::new(n, chunks).enumerate() {
            body(idx, range);
        }
        return;
    }

    let task = Arc::new(Task {
        n,
        chunks,
        cursor: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        // SAFETY: the borrow outlives the task because this function does
        // not return until `completed == chunks`, and no body invocation
        // can begin after that point (every claim precedes its completion
        // increment and claims beyond `chunks` never run the body).
        body: unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, Range<usize>) + Sync),
                &'static (dyn Fn(usize, Range<usize>) + Sync),
            >(body)
        },
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });

    {
        let mut q = p.queue.lock().expect("pool queue poisoned");
        q.push_back(Arc::clone(&task));
    }
    p.queue_cv.notify_all();

    // The caller is a full lane: drain chunks alongside the workers.
    task.drain();

    let mut done = task.done.lock().expect("task latch poisoned");
    while !*done {
        done = task.done_cv.wait(done).expect("task latch poisoned");
    }
    drop(done);
    if task.panicked.load(Ordering::Acquire) {
        panic!("a parallel task panicked in a pool worker");
    }
}

struct Task {
    n: usize,
    chunks: usize,
    cursor: AtomicUsize,
    completed: AtomicUsize,
    panicked: AtomicBool,
    body: &'static (dyn Fn(usize, Range<usize>) + Sync),
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: all shared state is atomics/locks and the body is Sync.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    /// Claims and runs chunks until the cursor is exhausted.
    fn drain(&self) {
        loop {
            let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
            if idx >= self.chunks {
                return;
            }
            let range = chunk_range(self.n, self.chunks, idx);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (self.body)(idx, range);
            }));
            if outcome.is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.chunks {
                *self.done.lock().expect("task latch poisoned") = true;
                self.done_cv.notify_all();
            }
        }
    }
}

struct Pool {
    lanes: usize,
    workers: usize,
    queue: Mutex<VecDeque<Arc<Task>>>,
    queue_cv: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let lanes = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pool = Pool {
            lanes,
            workers: lanes - 1,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
        };
        for i in 0..pool.workers {
            std::thread::Builder::new()
                .name(format!("flat-pool-{i}"))
                .spawn(worker_loop)
                .expect("failed to spawn pool worker");
        }
        pool
    })
}

fn worker_loop() {
    let p = pool();
    loop {
        let task = {
            let mut q = p.queue.lock().expect("pool queue poisoned");
            loop {
                // Drop tasks whose chunks are all claimed; stragglers are
                // finishing but there is nothing left to steal.
                while let Some(front) = q.front() {
                    if front.cursor.load(Ordering::Relaxed) >= front.chunks {
                        q.pop_front();
                    } else {
                        break;
                    }
                }
                if let Some(front) = q.front() {
                    break Arc::clone(front);
                }
                q = p.queue_cv.wait(q).expect("pool queue poisoned");
            }
        };
        task.drain();
    }
}

/// The byte range of chunk `idx` when `0..n` is split into `chunks`
/// near-equal pieces (the first `n % chunks` pieces get one extra).
fn chunk_range(n: usize, chunks: usize, idx: usize) -> Range<usize> {
    let base = n / chunks;
    let extra = n % chunks;
    let start = idx * base + idx.min(extra);
    let len = base + usize::from(idx < extra);
    start..start + len
}

struct ChunkRanges {
    n: usize,
    chunks: usize,
    next: usize,
}

impl ChunkRanges {
    fn new(n: usize, chunks: usize) -> Self {
        ChunkRanges { n, chunks, next: 0 }
    }
}

impl Iterator for ChunkRanges {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        if self.next >= self.chunks {
            return None;
        }
        let r = chunk_range(self.n, self.chunks, self.next);
        self.next += 1;
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 7, 64, 100, 1023] {
            for chunks in 1..=8usize.min(n.max(1)) {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for idx in 0..chunks {
                    let r = chunk_range(n, chunks, idx);
                    assert_eq!(r.start, prev_end, "gap at chunk {idx} of {n}/{chunks}");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, n, "coverage for {n}/{chunks}");
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn run_chunked_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        run_chunked(hits.len(), &|range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn panics_propagate_to_caller() {
        let outcome = std::panic::catch_unwind(|| {
            run_chunked(100, &|range| {
                if range.contains(&42) {
                    panic!("boom");
                }
            });
        });
        assert!(outcome.is_err());
    }
}
