//! Offline stand-in for `serde_json`: JSON text parsing and printing of
//! the vendored `serde` data model, plus the `json!` macro.

pub use serde::{Error, Map, Number, Value};

use std::fmt::Write as _;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.serialize_value()
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::deserialize_value(&v)
}

/// Builds a [`Value`] from a JSON-ish literal. Supports `null`, object
/// literals with string-literal keys and expression values, array
/// literals, and bare serializable expressions. Nested objects must be
/// written as nested `json!({...})` calls (which upstream also accepts).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::to_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$v)),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F(f) if f.is_finite() => {
            // Rust's shortest-roundtrip Display keeps parse(to_string(x)) == x.
            let _ = write!(out, "{f}");
        }
        // JSON has no NaN/Infinity; upstream emits null.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected , or ] at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected , or }} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_structures() {
        let v: Value = from_str(
            r#"{"a": 1, "b": -2.5, "c": [true, null, "x\ny"], "d": {"e": 18446744073709551615}}"#,
        )
        .unwrap();
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"].as_f64(), Some(-2.5));
        assert_eq!(v["c"].as_array().unwrap().len(), 3);
        assert_eq!(v["d"]["e"].as_u64(), Some(u64::MAX));
        let text = to_string(&v).unwrap();
        let again: Value = from_str(&text).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "k": 1.5e300, "nested": json!({ "deep": "value" }) });
        let text = to_string_pretty(&v).unwrap();
        let again: Value = from_str(&text).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 6.02e23, -1.2345678901234567e-300] {
            let text = to_string(&json!(f)).unwrap();
            let v: Value = from_str(&text).unwrap();
            assert_eq!(v.as_f64(), Some(f));
        }
    }

    #[test]
    fn index_mut_inserts() {
        let mut v = json!({});
        v["x"] = json!(3);
        assert_eq!(v["x"].as_u64(), Some(3));
        assert!(v["missing"].is_null());
    }
}
