//! Offline stand-in for `proptest`: the `proptest!` macro, strategy
//! combinators (`prop_map`, `prop_filter`, `prop_oneof!`, `Just`, ranges,
//! tuples, `collection::vec`, `any`), and `prop_assert*`.
//!
//! Differences from upstream: the case schedule is deterministic (seeded
//! by case index), there is no shrinking, and rejected cases
//! (`prop_assume!`/`prop_filter`) are simply skipped without a global
//! rejection budget.

pub mod strategy;
pub mod test_runner;

/// Everything a `proptest!` test module usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among an explicit list of values.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[(rng.next_u64() as usize) % self.items.len()].clone()
        }
    }
}

pub use crate::test_runner::Config as ProptestConfig;

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`](vec()).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    trait GenerateLen {
        fn generate_len(self, rng: &mut TestRng) -> usize;
    }

    impl GenerateLen for std::ops::Range<usize> {
        fn generate_len(self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property tests: each `fn name(binding in strategy, ...)` body
/// runs for `Config::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::Config::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut executed = 0u32;
                let mut attempts = 0u32;
                while executed < config.cases && attempts < config.cases * 16 {
                    attempts += 1;
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempts,
                    );
                    let result: $crate::test_runner::TestCaseResult = (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match result {
                        Ok(()) => executed += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}",
                                executed + 1,
                                stringify!($name),
                                msg
                            );
                        }
                    }
                }
                assert!(
                    executed >= config.cases / 2,
                    "too many rejected cases in {} ({} of {} attempts accepted)",
                    stringify!($name),
                    executed,
                    attempts
                );
            }
        )*
    };
}
