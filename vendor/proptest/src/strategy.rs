//! Strategy trait and combinators.

use crate::test_runner::TestRng;

/// A generator of values for property tests. Object-safe; combinators
/// require `Sized`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, regenerating otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive candidates",
            self.reason
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies — the engine of `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() as usize) % self.arms.len();
        self.arms[idx].generate(rng)
    }
}

/// The canonical strategy for a whole type: `any::<bool>()`,
/// `any::<u64>()`, ….
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical whole-type distribution.
pub trait Arbitrary {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty, $mantissa:expr);*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> (64 - $mantissa)) as $t
                    / (1u64 << $mantissa) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, 24; f64, 53);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}
