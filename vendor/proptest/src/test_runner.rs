//! Test configuration, RNG, and case results.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Failure modes of one generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — skip, don't fail.
    Reject,
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic per-case RNG: seeded from the test's path and the case
/// index, so every run of the suite explores the same schedule.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: rand::rngs::StdRng,
}

impl TestRng {
    /// RNG for one (test, case) pair.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        use rand::SeedableRng;
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            rng: rand::rngs::StdRng::seed_from_u64(h ^ (u64::from(case) << 32)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.rng.next_u64()
    }
}
