//! Offline stand-in for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! for the shapes this workspace uses — non-generic structs (named, tuple,
//! unit) and enums whose variants are unit, single-field tuple, multi-field
//! tuple, or struct-like. No `#[serde(...)]` attributes are supported (none
//! appear in the workspace).
//!
//! Implemented without `syn`/`quote`: the input `TokenStream` is walked
//! directly (the derive only needs names and arities, never types), and the
//! generated impl is assembled as a string and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at the
/// cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the `[...]` group
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a token slice on top-level commas (angle-bracket aware — the
/// only non-group nesting that appears in field positions).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a `{ name: Type, ... }` body.
fn named_field_names(body: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(body)
        .into_iter()
        .filter_map(|field| {
            let i = skip_attrs_and_vis(&field, 0);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_shape(input: &TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.clone().into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive stand-in does not support generic types (on `{name}`)");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                (name, Shape::NamedStruct(named_field_names(&body)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                (
                    name,
                    Shape::TupleStruct(split_top_level_commas(&body).len()),
                )
            }
            _ => (name, Shape::UnitStruct),
        },
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<_>>()
                }
                other => panic!("derive: expected enum body, found {other:?}"),
            };
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs_and_vis(&body, j);
                let Some(TokenTree::Ident(id)) = body.get(j) else {
                    break;
                };
                let vname = id.to_string();
                j += 1;
                let fields = match body.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        j += 1;
                        VariantFields::Tuple(split_top_level_commas(&inner).len())
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        j += 1;
                        VariantFields::Named(named_field_names(&inner))
                    }
                    _ => VariantFields::Unit,
                };
                // Skip an optional `= discriminant` and the trailing comma.
                while j < body.len() {
                    if let TokenTree::Punct(p) = &body[j] {
                        if p.as_char() == ',' {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            (name, Shape::Enum(variants))
        }
        other => panic!("derive: cannot derive for `{other}` items"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_shape(&input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::serialize_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vn}\".to_string(), {payload});\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(\"{f}\".to_string(), ::serde::Serialize::serialize_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {fields} }} => {{\n{inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vn}\".to_string(), ::serde::Value::Object(fm));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            fields = fields.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_shape(&input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 \"expected object\"))?;\n",
            );
            s.push_str(&format!("Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize_value(\
                     obj.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let mut s = String::from(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::custom(\
                 \"expected array\"))?;\n",
            );
            s.push_str(&format!("Ok({name}(\n"));
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::Deserialize::deserialize_value(a.get({i}).unwrap_or(\
                     &::serde::Value::Null))?,\n"
                ));
            }
            s.push_str("))");
            s
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantFields::Tuple(n) => {
                        let ctor = if *n == 1 {
                            format!(
                                "Ok({name}::{vn}(::serde::Deserialize::deserialize_value(payload)?))"
                            )
                        } else {
                            let mut s = String::from(
                                "let a = payload.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array\"))?;\n",
                            );
                            s.push_str(&format!("Ok({name}::{vn}(\n"));
                            for i in 0..*n {
                                s.push_str(&format!(
                                    "::serde::Deserialize::deserialize_value(a.get({i}).unwrap_or(\
                                     &::serde::Value::Null))?,\n"
                                ));
                            }
                            s.push_str("))");
                            s
                        };
                        keyed_arms.push_str(&format!("\"{vn}\" => {{ {ctor} }}\n"));
                    }
                    VariantFields::Named(fields) => {
                        let mut s = String::from(
                            "let fm = payload.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object\"))?;\n",
                        );
                        s.push_str(&format!("Ok({name}::{vn} {{\n"));
                        for f in fields {
                            s.push_str(&format!(
                                "{f}: ::serde::Deserialize::deserialize_value(\
                                 fm.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n"
                            ));
                        }
                        s.push_str("})");
                        keyed_arms.push_str(&format!("\"{vn}\" => {{ {s} }}\n"));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant {{other}} of {name}\"))),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (key, payload) = m.iter().next().expect(\"len checked\");\n\
                 match key.as_str() {{\n{keyed_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant {{other}} of {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::Error::custom(\"expected enum representation\")),\n}}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("generated Deserialize impl parses")
}
