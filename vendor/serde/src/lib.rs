//! Offline stand-in for `serde`: the `Serialize`/`Deserialize` traits over
//! a JSON-shaped [`Value`] data model.
//!
//! The real serde abstracts over serializer backends; this workspace only
//! ever serializes to JSON, so the data model *is* the interchange type.
//! `serde_json` (also vendored) handles text parsing/printing of [`Value`].

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// JSON object map. Keys are sorted, matching upstream serde_json's
/// default `BTreeMap`-backed map.
pub type Map = BTreeMap<String, Value>;

/// A JSON-shaped value: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

/// A JSON number, preserving integer precision like upstream serde_json.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Value {
    /// Member of an object by key, or element of an array by stringified
    /// index — `None` for anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer representable as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(u)) => Some(*u),
            Value::Number(Number::I(i)) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer representable as one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(i)) => Some(*i),
            Value::Number(Number::U(u)) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F(f)) => Some(*f),
            Value::Number(Number::U(u)) => Some(*u as f64),
            Value::Number(Number::I(i)) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Upstream semantics: indexing an object auto-inserts `Null` for a
    /// missing key so `v["k"] = ...` works.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => m.entry(key.to_string()).or_insert(Value::Null),
            _ => panic!("cannot index non-object value with {key:?}"),
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types serializable into the data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from the data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::Number(Number::U(i as u64)) } else { Value::Number(Number::I(i)) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        // Widening is exact; narrowing back on deserialize is exact too
        // for values that started as f32.
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::custom("expected number"))? as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for &str {
    fn serialize_value(&self) -> Value {
        Value::String((*self).to_owned())
    }
}

/// Deserializing `&'static str` leaks the string (one small allocation
/// per call). Upstream serde borrows from the input instead; this
/// value-tree model has no input to borrow from, and the workspace only
/// deserializes static strs for long-lived resource names.
impl Deserialize for &'static str {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                Ok(($($t::deserialize_value(
                    a.get($n).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}
ser_tuple!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}
