//! Offline stand-in for `criterion`: same macro/builder surface, minimal
//! wall-clock measurement underneath.
//!
//! Each benchmark warms up briefly, then runs `sample_size` timed samples
//! (auto-scaling iterations per sample so one sample is long enough to
//! time) and prints mean / min / max per-iteration latency plus
//! element throughput when a `Throughput` was set. No statistical
//! analysis, no HTML reports, no baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Groups related benchmarks under a common name prefix.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, None, |b| f(b));
        self
    }
}

/// Units for reporting throughput alongside latency.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing sample-size and throughput config.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the throughput used to derive rate numbers for subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.full);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (upstream emits summary reports here; this harness
    /// prints as it goes, so it is a no-op).
    pub fn finish(self) {}
}

/// A benchmark name of the form `function/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combines a function name with a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`, called `iters_per_sample` times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~20ms elapsed to settle caches/branch state,
        // and size the per-sample iteration count so each sample spans at
        // least ~1ms of wall clock.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= Duration::from_millis(20) || warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        self.iters_per_sample = ((0.001 / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples: closure never called iter)");
        return;
    }
    let per_sample: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    let mean = per_sample.iter().sum::<f64>() / per_sample.len() as f64;
    let min = per_sample.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>10}/s", si(n as f64 / mean)),
        Some(Throughput::Bytes(n)) => format!("  {:>10}B/s", si(n as f64 / mean)),
        None => String::new(),
    };
    println!(
        "{name:<40} time: [{} {} {}]{rate}",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Declares a benchmark group: a function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group. Accepts
/// and ignores harness CLI flags (`--bench`, filters) that `cargo bench`
/// forwards.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes flags like `--bench`; this harness runs
            // everything unconditionally.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("naive", 512).full, "naive/512");
    }

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion { sample_size: 3 };
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
