//! Offline stand-in for `rand`: `StdRng` + `SeedableRng` + `Rng::gen_range`
//! + `seq::SliceRandom`, backed by xoshiro256** seeded via splitmix64.
//!
//! The random stream differs from upstream `rand` for the same seed; every
//! in-repo consumer relies only on determinism of a seeded stream.

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform sample of a whole type (`f32`/`f64` in `[0, 1)`,
    /// integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256** (upstream uses ChaCha12; any
    /// deterministic generator satisfies the workspace's contract).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($($t:ty, $mantissa:expr);*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> (64 - $mantissa)) as $t
                    / (1u64 << $mantissa) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, 24; f64, 53);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for every in-repo span; acceptable
                // for a stand-in whose consumers never test distributions.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Distribution of a whole type, for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// `amount` distinct elements, uniformly without replacement.
        /// Like upstream, the order of the returned elements is not the
        /// order of the slice.
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots become a
            // uniform sample without replacement.
            for i in 0..amount {
                let j = i + (rng.next_u64() as usize) % (idx.len() - i);
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<u32> = (0..50).collect();
        let picked: Vec<&u32> = v.choose_multiple(&mut rng, 20).collect();
        assert_eq!(picked.len(), 20);
        let mut sorted: Vec<u32> = picked.iter().map(|&&x| x).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "all distinct");
        // Over-asking caps at the slice length.
        assert_eq!(v.choose_multiple(&mut rng, 99).count(), 50);
    }
}
