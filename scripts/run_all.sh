#!/usr/bin/env bash
# Regenerates every experiment output under results/ and the test/bench logs.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results

echo "== building =="
cargo build --workspace --release

echo "== tables =="
cargo run -q --release -p flat-bench --bin table1 > results/table1.txt
cargo run -q --release -p flat-bench --bin table2 > results/table2.txt

echo "== figures =="
cargo run -q --release -p flat-bench --bin fig2_roofline > results/fig2_edge.txt
cargo run -q --release -p flat-bench --bin fig2_roofline -- --platform cloud > results/fig2_cloud.txt
for p in edge cloud; do
    m=$([ "$p" = edge ] && echo bert || echo xlm)
    cargo run -q --release -p flat-bench --bin fig8  -- --platform "$p" > "results/fig8_${p}_${m}.txt"
    cargo run -q --release -p flat-bench --bin fig9  -- --platform "$p" > "results/fig9_${p}_${m}.txt"
    cargo run -q --release -p flat-bench --bin fig11 -- --platform "$p" > "results/fig11_${p}_${m}.txt"
done
cargo run -q --release -p flat-bench --bin fig10_space > results/fig10_space.txt
cargo run -q --release -p flat-bench --bin fig12a > results/fig12a.txt
cargo run -q --release -p flat-bench --bin fig12b > results/fig12b.txt

echo "== extensions =="
cargo run -q --release -p flat-bench --bin ablation > results/ablation_edge.txt
cargo run -q --release -p flat-bench --bin ablation -- --platform cloud --model xlm --seq 16384 > results/ablation_cloud.txt
cargo run -q --release -p flat-bench --bin quantization > results/quantization.txt
cargo run -q --release -p flat-bench --bin tasks > results/tasks_cloud_bert.txt
cargo run -q --release -p flat-bench --bin sim_vs_model > results/sim_vs_model.txt
cargo run -q --release -p flat-bench --bin area_provisioning > results/area_provisioning.txt
cargo run -q --release -p flat-bench --bin sensitivity > results/sensitivity.txt

cargo run -q --release -p flat-bench --bin hierarchy > results/hierarchy.txt
cargo run -q --release -p flat-bench --bin lra > results/lra_edge_bert.txt
cargo run -q --release -p flat-bench --bin gpu_flat > results/gpu_flat.txt

echo "== tests and criterion benches =="
cargo test --workspace 2>&1 | tee test_output.txt
cargo bench --workspace 2>&1 | tee bench_output.txt

echo "done — outputs in results/, test_output.txt, bench_output.txt"
