//! Golden-value regression tests: exact numbers the stack must keep
//! producing. Any intentional model change must update these consciously.

use flat::arch::Accelerator;
use flat::core::{BlockDataflow, CostModel, FusedDataflow, Granularity};
use flat::tensor::{Bytes, DataType, Gemm};
use flat::workloads::{AttentionConfig, Model};

/// Table 1 values, pinned to the byte.
#[test]
fn table1_golden() {
    let cfg = |h, n| AttentionConfig::self_attention(1, h, n, 1024, 4096);
    // K/Q/V/O: (D² + 2·N·D) · 2 bytes.
    assert_eq!(
        cfg(1, 512).qkvo_staging_size().as_u64(),
        (1024 * 1024 + 2 * 512 * 1024) * 2
    );
    assert_eq!(
        cfg(16, 512).qkvo_staging_size(),
        cfg(1, 512).qkvo_staging_size()
    );
    // L/A: (2·N·D + H·N²) · 2 bytes.
    assert_eq!(
        cfg(16, 2048).la_staging_size().as_u64(),
        (2 * 2048 * 1024 + 16 * 2048 * 2048) * 2
    );
    // The headline cell: H=16, N=14K -> 6.6 GB (decimal).
    let gb = cfg(16, 14 * 1024).la_staging_size().as_u64() as f64 / 1e9;
    assert!((gb - 6.64).abs() < 0.05, "{gb}");
}

/// Table 2 footprints at the paper's reference configuration, in elements.
#[test]
fn table2_golden() {
    let cfg = AttentionConfig::self_attention(64, 16, 512, 1024, 4096);
    let rows = flat::core::table2_row_elems(&cfg, 64);
    let (b, h, n, d, dk, r) = (64u64, 16u64, 512u64, 1024u64, 64u64, 64u64);
    assert_eq!(rows[0], 8 * b * d * n + b * h * n * n);
    assert_eq!(rows[1], 8 * d * n + h * n * n);
    assert_eq!(rows[2], 8 * n * dk + n * n);
    assert_eq!(rows[3], 4 * r * dk + 4 * n * dk + r * n);
}

/// Operational-intensity formulas of §2.2, pinned for one configuration.
#[test]
fn operational_intensity_golden() {
    // Multi-head L: 1/OI ≈ (2/N + H/D) · element_bytes.
    let (b, h, n, d) = (4u64, 16u64, 1024u64, 1024u64);
    let l = Gemm::new(b * h, n, d / h, n);
    let oi = l.operational_intensity(DataType::Fp16).flops_per_byte();
    let predicted = 1.0 / ((2.0 / n as f64 + h as f64 / d as f64) * 2.0 / 2.0);
    // flops/byte: 2 flops per MAC over 2-byte elements cancel.
    assert!(
        (oi - predicted).abs() / predicted < 0.01,
        "{oi} vs {predicted}"
    );
}

/// Cost-model pins at the paper's operating points. These encode the
/// calibration the EXPERIMENTS.md tables were written against.
#[test]
fn cost_model_golden_points() {
    let edge = Accelerator::edge();
    let block = Model::bert().block(64, 512);
    let cm = CostModel::new(&edge);

    let base = cm.la_cost(&block, &BlockDataflow::base().la);
    assert!(
        (base.util() - 0.649).abs() < 0.02,
        "edge base 512: {}",
        base.util()
    );

    let flat = cm.fused_la_cost(&block, &FusedDataflow::new(Granularity::Row(64)));
    assert!(
        (flat.util() - 0.969).abs() < 0.02,
        "edge FLAT-R64 512: {}",
        flat.util()
    );

    let cloud = Accelerator::cloud();
    let xlm = Model::xlm().block(64, 16_384);
    let cmc = CostModel::new(&cloud);
    let base_c = cmc.la_cost(&xlm, &BlockDataflow::base().la);
    assert!(
        (base_c.util() - 0.194).abs() < 0.02,
        "cloud base 16K: {}",
        base_c.util()
    );
    let flat_c = cmc.fused_la_cost(&xlm, &FusedDataflow::new(Granularity::Row(256)));
    assert!(
        (flat_c.util() - 0.941).abs() < 0.02,
        "cloud FLAT-R256 16K: {}",
        flat_c.util()
    );
}

/// Platform presets are Figure 7(a), immutably.
#[test]
fn platform_golden() {
    let e = Accelerator::edge();
    assert_eq!((e.pe.rows, e.pe.cols), (32, 32));
    assert_eq!(e.sg, Bytes::from_kib(512));
    assert_eq!(
        (e.mem.onchip_bytes_per_s, e.mem.offchip_bytes_per_s),
        (1.0e12, 50.0e9)
    );
    let c = Accelerator::cloud();
    assert_eq!((c.pe.rows, c.pe.cols), (256, 256));
    assert_eq!(c.sg, Bytes::from_mib(32));
    assert_eq!(
        (c.mem.onchip_bytes_per_s, c.mem.offchip_bytes_per_s),
        (8.0e12, 400.0e9)
    );
}
