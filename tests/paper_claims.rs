//! Cross-crate integration tests: the paper's headline claims, end to end.
//!
//! Each test names the paper section/figure it checks. These run the real
//! pipeline — workloads → dataflow → cost model → DSE — on the real
//! platform presets.

use flat::arch::Accelerator;
use flat::core::{BlockDataflow, CostModel, Granularity, LaExecution};
use flat::dse::{AccelClass, Dse, Objective, SpaceKind};
use flat::tensor::Bytes;
use flat::workloads::{Model, Scope};

/// §1: "a state-of-the-art datacenter-class accelerator with a BW of
/// 400 GB/s can run a max sequence length of 4K before failing to maintain
/// 80% compute utilization."
///
/// Our model charges all four DRAM passes of the *batched* logit tensor
/// (write, softmax read+write, read), so the sequential baseline's L-A
/// collapse arrives even earlier than the paper's 4K bound — see
/// EXPERIMENTS.md for the divergence discussion. The claim's direction
/// (long sequences break the baseline; FLAT does not) is what we assert.
#[test]
fn cloud_baseline_fails_80pct_beyond_4k() {
    let accel = Accelerator::cloud();
    let model = Model::bert();
    let util_at = |space: SpaceKind, seq: u64| {
        let block = model.block(64, seq);
        Dse::new(&accel, &block)
            .best_la(space, Objective::MaxUtil)
            .report
            .util()
    };
    assert!(
        util_at(SpaceKind::Sequential, 4096) < 0.8,
        "the baseline must fail 80% at 4K+"
    );
    // While FLAT sustains high utilization at the same point.
    assert!(
        util_at(SpaceKind::Full, 4096) > 0.8,
        "FLAT holds 80%+ at 4K: {}",
        util_at(SpaceKind::Full, 4096)
    );
}

/// §4.4 / Table 2: FLAT at R-Gran has O(N) live footprint; every
/// sequential-compatible granularity is Ω(N²).
#[test]
fn r_gran_footprint_linear_others_quadratic() {
    let fp = |seq: u64, g: Granularity| {
        let cfg = Model::bert().config(64, seq);
        flat::core::fused_footprint(&flat::core::FusedDataflow::new(g), &cfg).as_f64()
    };
    let ratio_r = fp(65_536, Granularity::Row(64)) / fp(4096, Granularity::Row(64));
    let ratio_h = fp(65_536, Granularity::Head) / fp(4096, Granularity::Head);
    assert!(
        ratio_r < 32.0,
        "R-gran should grow ~16x for 16x seq: {ratio_r}"
    );
    assert!(
        ratio_h > 128.0,
        "H-gran should grow ~256x for 16x seq: {ratio_h}"
    );
}

/// Figure 8: on the real edge part (512 KiB), FLAT-opt's L-A utilization
/// beats Base-opt's at every sequence length, and by a growing margin
/// once the logit tensor stops fitting anywhere.
#[test]
fn flat_opt_beats_base_opt_across_sequence_lengths() {
    let accel = Accelerator::edge();
    for seq in [512u64, 4096, 16_384] {
        let block = Model::bert().block(64, seq);
        let dse = Dse::new(&accel, &block);
        let base = dse
            .best_la(SpaceKind::Sequential, Objective::MaxUtil)
            .report
            .util();
        let flat = dse
            .best_la(SpaceKind::Full, Objective::MaxUtil)
            .report
            .util();
        assert!(flat >= base, "seq {seq}: flat {flat} < base {base}");
    }
    // At 512 the gap is decisive on the real buffer.
    let block = Model::bert().block(64, 512);
    let dse = Dse::new(&accel, &block);
    let base = dse
        .best_la(SpaceKind::Sequential, Objective::MaxUtil)
        .report
        .util();
    let flat = dse
        .best_la(SpaceKind::Full, Objective::MaxUtil)
        .report
        .util();
    assert!(flat > base + 0.2, "512: flat {flat} vs base {base}");
}

/// Figure 8: FLAT-R reaches its utilization cap with a much smaller
/// buffer than any Base-X dataflow needs.
#[test]
fn flat_r_needs_less_buffer_for_peak_util() {
    let model = Model::bert();
    let block = model.block(64, 512);
    let util = |df: &BlockDataflow, sg: Bytes| {
        let accel = Accelerator::edge().with_sg(sg);
        CostModel::new(&accel)
            .scope_cost(&block, df, Scope::LogitAttend)
            .util()
    };
    let flat_r = BlockDataflow::flat(Granularity::Row(32));
    let base_m = BlockDataflow::base_staged(Granularity::BatchMultiHead);
    // FLAT-R32 is near its cap at 1 MiB; Base-M needs ~1 GiB to match.
    let flat_small = util(&flat_r, Bytes::from_mib(1));
    let base_small = util(&base_m, Bytes::from_mib(1));
    let base_huge = util(&base_m, Bytes::from_gib(2));
    assert!(flat_small > 0.85, "FLAT-R32 at 1 MiB: {flat_small}");
    assert!(base_small < flat_small);
    assert!(
        base_huge > base_small + 0.2,
        "Base-M should recover with 2 GiB"
    );
}

/// Figure 4 / §5.3.2: FLAT's advantage is eliminated off-chip traffic for
/// the intermediate tensor — same MACs, far fewer DRAM accesses.
#[test]
fn fusion_removes_intermediate_dram_traffic() {
    let accel = Accelerator::cloud();
    let block = Model::xlm().block(64, 16_384);
    let cm = CostModel::new(&accel);
    let base = cm.la_cost(&block, &BlockDataflow::base().la);
    let flat = cm.la_cost(&block, &BlockDataflow::flat(Granularity::Row(256)).la);
    assert_eq!(base.activity.macs, flat.activity.macs, "same work");
    let logit_bytes = block.config().logit_size().as_f64();
    let saved = base.traffic.offchip.as_f64() - flat.traffic.offchip.as_f64();
    assert!(
        saved > 3.0 * logit_bytes,
        "should save >=3 logit passes: saved {saved:.3e}, logit {logit_bytes:.3e}"
    );
    assert!(flat.energy.total_pj() < base.energy.total_pj());
}

/// Figure 11/12: the accelerator-class ladder is monotone, and ATTACC's
/// model-level win over FlexAccel on the cloud platform at 16K is
/// decisive (paper: 1.46x; our baseline is overlap-friendlier, so we
/// accept anything clearly > 1).
#[test]
fn attacc_beats_flexaccel_on_cloud_16k() {
    let accel = Accelerator::cloud();
    let model = Model::xlm();
    let flex = AccelClass::FlexAccel.evaluate(&accel, &model, 64, 16_384, Objective::MaxUtil);
    let attacc = AccelClass::AttAcc.evaluate(&accel, &model, 64, 16_384, Objective::MaxUtil);
    let speedup = attacc.speedup_over(&flex);
    assert!(speedup > 1.5, "speedup {speedup}");
    assert!(attacc.energy_ratio_vs(&flex) < 0.9);
}

/// Figure 12(b): ATTACC needs far less off-chip bandwidth than the
/// sequential classes to sustain 0.95 utilization on L-A.
#[test]
fn attacc_reduces_bandwidth_requirement() {
    let accel = Accelerator::cloud();
    let block = Model::xlm().block(64, 8192);
    let need = |space: SpaceKind| -> Option<f64> {
        let (mut lo, mut hi) = (1.0e8f64, 1.0e14f64);
        let util_at = |bw: f64| {
            let a = accel.with_offchip_bw(bw);
            Dse::new(&a, &block)
                .best_la(space, Objective::MaxUtil)
                .report
                .util()
        };
        if util_at(hi) < 0.95 {
            return None;
        }
        while hi / lo > 1.1 {
            let mid = (lo * hi).sqrt();
            if util_at(mid) >= 0.95 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    };
    let attacc = need(SpaceKind::Full).expect("ATTACC reaches 0.95 at 8K");
    if let Some(flex) = need(SpaceKind::Sequential) {
        assert!(
            attacc < 0.5 * flex,
            "attacc {attacc:.3e} vs flex {flex:.3e}"
        );
    }
}

/// §4.5: expressing a non-fused operator through FLAT (sequential L-A in
/// the Full space) can never be worse than the dedicated sequential
/// search — the spaces nest.
#[test]
fn full_space_contains_sequential_results() {
    let accel = Accelerator::edge();
    for seq in [512u64, 4096] {
        let block = Model::t5_small().block(64, seq);
        let dse = Dse::new(&accel, &block);
        let seq_best = dse.best_la(SpaceKind::Sequential, Objective::MaxUtil);
        let full_best = dse.best_la(SpaceKind::Full, Objective::MaxUtil);
        assert!(full_best.report.util() >= seq_best.report.util() - 1e-12);
    }
}

/// §4.2.2's composite FLAT-tiles at work: when the scratchpad forces a
/// small row count, a single head's `R` rows underfill the wide cloud
/// array — packing several heads per tile restores the spatial
/// parallelism at the same per-head row count.
#[test]
fn composite_tiles_fill_wide_arrays_at_small_r() {
    let accel = Accelerator::cloud();
    let block = Model::xlm().block(64, 2048);
    let util_of = |g: Granularity| {
        CostModel::new(&accel)
            .fused_la_cost(&block, &flat::core::FusedDataflow::new(g))
            .util()
    };
    let thin = util_of(Granularity::Row(64)); // 64 of 256 array rows busy
    let packed = util_of(Granularity::Composite {
        batch_t: 1,
        head_t: 4,
        rows: 64,
    });
    assert!(packed > 1.5 * thin, "packed {packed} vs thin {thin}");
    assert!(packed > 0.6, "packed heads fill the array: {packed}");
}

/// The fused execution reported by the DSE is actually fused (sanity on
/// the winning dataflow's structure at a FLAT-friendly operating point).
#[test]
fn winning_dataflow_is_fused_when_it_matters() {
    let accel = Accelerator::cloud();
    let block = Model::bert().block(64, 16_384);
    let best = Dse::new(&accel, &block).best_la(SpaceKind::Full, Objective::MaxUtil);
    match best.la {
        LaExecution::Fused(f) => {
            assert!(
                f.enables.intermediate,
                "the winning FLAT point stages the intermediate"
            );
        }
        LaExecution::Sequential { .. } => {
            panic!(
                "at cloud/16K the fused dataflow must win (util {})",
                best.report.util()
            )
        }
    }
}
