//! The distributed scaling trajectory is pinned: serial ring-algorithm
//! pricing on the ring and fully-connected fabrics must reproduce the
//! modeled numbers committed in `BENCH_PR4.json` exactly, and the joint
//! (topology × collective-algorithm × overlap) search must improve on
//! that baseline at the 8-chip point. Together these guarantee the
//! collective-algorithm and overlap extensions are strictly additive:
//! old configurations price identically, new ones only win.

use flat::dist::{best_joint, series, CollectiveAlgo, Link, Partition, Sweep, Topology};
use flat::workloads::{Model, Task};

/// The preset `BENCH_PR4.json`'s `dist` group was recorded with: one
/// attention layer of cloud/bert at the summarization sequence length,
/// head-parallel, cloud links.
fn pr4_sweep() -> Sweep {
    Sweep::new(flat::arch::Accelerator::cloud(), Link::cloud())
}

fn pr4_config() -> flat::workloads::AttentionConfig {
    let model = Model::by_name("bert").expect("bert is in the zoo");
    model.config(1, Task::Summarization.sequence_length())
}

/// Reads the pinned `dist` entries out of the committed PR 4 snapshot:
/// `(name, mean_ms, speedup)` triples.
fn pr4_dist_entries() -> Vec<(String, f64, f64)> {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_PR4.json"))
        .expect("BENCH_PR4.json is committed at the repo root");
    let v: serde_json::Value = serde_json::from_str(&text).expect("snapshot parses");
    v["entries"]
        .as_array()
        .expect("snapshot has entries")
        .iter()
        .filter(|e| e["group"].as_str() == Some("dist"))
        .map(|e| {
            (
                e["name"].as_str().expect("entry name").to_owned(),
                e["mean_ms"].as_f64().expect("entry mean_ms"),
                e["speedup_vs_baseline"].as_f64().expect("entry speedup"),
            )
        })
        .collect()
}

/// Overlap-off serial pricing with the ring algorithm reproduces every
/// PR 4 dist entry bit-for-bit: the fabric rework (new topologies,
/// algorithms, overlap, open-chain fix) did not move the baseline.
#[test]
fn serial_ring_pricing_reproduces_the_pr4_snapshot_exactly() {
    let pinned = pr4_dist_entries();
    assert_eq!(
        pinned.len(),
        8,
        "PR 4 recorded 2 topologies × 4 chip counts"
    );
    let cfg = pr4_config();
    let points = pr4_sweep().run(
        &cfg,
        &[1, 2, 4, 8],
        &[Topology::Ring, Topology::FullyConnected],
        &[Partition::HeadParallel],
    );
    for topology in [Topology::Ring, Topology::FullyConnected] {
        for p in series(
            &points,
            topology,
            CollectiveAlgo::Ring,
            Partition::HeadParallel,
        ) {
            let name = format!("{topology}/head-parallel/{}chips", p.chips);
            let (_, pinned_ms, pinned_speedup) = pinned
                .iter()
                .find(|(n, _, _)| *n == name)
                .unwrap_or_else(|| panic!("{name} is pinned in BENCH_PR4.json"));
            assert_eq!(
                p.total_ms, *pinned_ms,
                "{name}: serial pricing must reproduce PR 4 exactly"
            );
            // The derived speedup passes through a decimal round-trip in
            // the snapshot, so allow the last ULP; the ms values above
            // stay bit-exact.
            assert!(
                (p.speedup - pinned_speedup).abs() <= 1e-15 * pinned_speedup,
                "{name}: speedup drifted: {} vs pinned {pinned_speedup}",
                p.speedup
            );
            assert_eq!(
                p.exposed_ms, p.collective_ms,
                "{name}: serial pricing exposes every collective millisecond"
            );
        }
    }
}

/// The acceptance criterion: the joint search (every topology ×
/// algorithm, overlapped ticks) beats the PR 4 ring baseline at 8 chips.
#[test]
fn joint_search_with_overlap_beats_the_ring_baseline_at_eight_chips() {
    let ring_8 = pr4_dist_entries()
        .iter()
        .find(|(n, _, _)| n == "ring/head-parallel/8chips")
        .map(|&(_, ms, speedup)| (ms, speedup))
        .expect("PR 4 pinned the 8-chip ring point");
    let cfg = pr4_config();
    let points = pr4_sweep()
        .with_algos(CollectiveAlgo::all().to_vec())
        .with_overlap(true)
        .run(&cfg, &[8], &Topology::all(), &[Partition::HeadParallel]);
    let best = best_joint(&points, 8).expect("the sweep priced 8-chip points");
    assert!(
        best.total_ms < ring_8.0,
        "joint winner {} [{}] at {:.3} ms must beat the serial ring's {:.3} ms",
        best.topology,
        best.algo,
        best.total_ms,
        ring_8.0
    );
    assert!(
        best.speedup > ring_8.1,
        "joint speedup {:.4}x must improve on the ring baseline's {:.4}x",
        best.speedup,
        ring_8.1
    );
    assert!(
        best.exposed_ms <= best.collective_ms,
        "overlap can only hide collective time"
    );
}
