//! End-to-end serving invariants, exercised through the facade crate: a
//! synthetic workload runs to completion with no request lost or
//! double-finished, metrics are populated, and a seeded run is
//! reproducible down to the metrics JSON.

use flat::arch::Accelerator;
use flat::serve::{serve, EngineConfig, WorkloadSpec};
use flat::tensor::Bytes;
use flat::workloads::{Model, Task};

fn workload(requests: usize, seed: u64) -> Vec<flat::serve::RequestSpec> {
    let mut spec = WorkloadSpec::from_task(Task::ShortNlp, requests, 500.0);
    spec.prompt_mean = 48; // scaled down so the suite stays fast
    spec.output_mean = 8;
    spec.generate(seed).expect("spec is valid")
}

#[test]
fn no_request_is_lost_or_double_finished() {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::cloud();
    let wl = workload(64, 11);
    let cfg = EngineConfig::for_platform(&accel, &model, 11);
    let m = serve(&accel, &model, &wl, &cfg).unwrap();
    assert_eq!(m.requests, 64);
    assert_eq!(
        m.finished, 64,
        "every offered request must finish exactly once"
    );
    // Token conservation: the engine generated exactly what was asked.
    assert_eq!(
        m.decode_tokens,
        wl.iter().map(|r| r.output_len as u64).sum::<u64>()
    );
    assert_eq!(
        m.prefill_tokens,
        wl.iter().map(|r| r.prompt_len as u64).sum::<u64>()
    );
}

#[test]
fn metrics_percentiles_and_occupancy_are_nonzero() {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let cfg = EngineConfig::for_platform(&accel, &model, 3);
    let m = serve(&accel, &model, &workload(32, 3), &cfg).unwrap();
    assert!(m.ttft.p50_ms > 0.0 && m.ttft.p99_ms >= m.ttft.p50_ms);
    assert!(m.tpot.p50_ms > 0.0);
    assert!(m.e2e.p50_ms >= m.ttft.p50_ms);
    assert!(m.decode_tokens_per_s > 0.0);
    assert!(m.kv.peak_occupancy > 0.0);
    assert!(m.kv.mean_occupancy > 0.0);
}

#[test]
fn same_seed_same_metrics_json() {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::cloud();
    let cfg = EngineConfig::for_platform(&accel, &model, 99);
    let a = serve(&accel, &model, &workload(24, 99), &cfg).unwrap();
    let b = serve(&accel, &model, &workload(24, 99), &cfg).unwrap();
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "a seeded serving run must be fully reproducible"
    );
}

#[test]
fn kv_pressure_preempts_without_losing_requests() {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let mut cfg = EngineConfig::for_platform(&accel, &model, 5);
    // ~36 KiB/token ⇒ 4 MiB holds ~7 blocks of 16 tokens: heavy pressure.
    cfg.kv_budget = Bytes::from_mib(4);
    cfg.max_batch = 6;
    let m = serve(&accel, &model, &workload(24, 5), &cfg).unwrap();
    assert_eq!(m.finished, 24);
    assert!(m.preemptions > 0, "a starved pool must evict and recompute");
    assert!(
        m.kv.peak_occupancy > 0.8,
        "pressure should drive the pool near full"
    );
}

#[test]
fn oversized_request_is_dropped_not_livelocked() {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let mut cfg = EngineConfig::for_platform(&accel, &model, 7);
    cfg.kv_budget = Bytes::from_mib(4);
    let mut wl = workload(8, 7);
    // A prompt no pool this size can ever hold: pre-fix this request
    // self-preempted forever; now it must drop Infeasible at admission.
    wl[3].prompt_len = 100_000;
    let m = serve(&accel, &model, &wl, &cfg).unwrap();
    assert_eq!(m.finished, 7);
    assert_eq!(m.dropped, 1);
    assert_eq!(m.drops.infeasible, 1);
}

#[test]
fn tight_slo_sheds_gracefully_and_reports_goodput() {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let mut spec = WorkloadSpec::from_task(Task::ShortNlp, 32, 500.0);
    spec.prompt_mean = 48;
    spec.output_mean = 8;
    spec.slo_ms = Some(1.5); // far tighter than the queue can honor
    let wl = spec.generate(21).unwrap();
    let mut cfg = EngineConfig::for_platform(&accel, &model, 21);
    cfg.max_batch = 2;
    let m = serve(&accel, &model, &wl, &cfg).unwrap();
    assert_eq!(m.finished + m.dropped, m.requests);
    assert!(
        m.drops.deadline > 0,
        "a 1.5 ms SLO must shed from the queue"
    );
    assert!(m.goodput_tokens_per_s <= m.decode_tokens_per_s + 1e-9);
}
