//! Integration tests tying the numerical kernels to the cost model: the
//! quantities the cost model *prices* (slice sizes, iteration counts,
//! arithmetic work) must match what the kernels *do*.

use flat::core::{FusedSlices, Granularity};
use flat::kernels::{flat_attention, naive_attention, Mask, MultiHeadInput};
use flat::workloads::{AttentionConfig, Model, OpKind};

/// The cost model's MAC count for L+A equals the actual multiply count of
/// the kernel computation.
#[test]
fn modeled_macs_match_kernel_arithmetic() {
    let cfg = AttentionConfig::self_attention(2, 4, 32, 512, 64);
    let block = flat::workloads::AttentionBlock::new(cfg);
    let l = block.operator(OpKind::Logit).gemm;
    let a = block.operator(OpKind::Attend).gemm;
    // L: (B·H) x [Nq, dk] x [dk, Nkv]; A: (B·H) x [Nq, Nkv] x [Nkv, dk].
    let expected_l = 2 * 4 * 32 * (512 / 4) * 32;
    let expected_a = 2 * 4 * 32 * 32 * (512 / 4);
    assert_eq!(l.macs(), expected_l);
    assert_eq!(a.macs(), expected_a);
}

/// The cost model's FLAT-tile iteration count matches the number of tile
/// passes the fused kernel makes.
#[test]
fn modeled_iterations_match_kernel_tiling() {
    let cfg = AttentionConfig::self_attention(2, 2, 37, 512, 64);
    for rows in [1u64, 5, 16, 37] {
        let s = FusedSlices::new(Granularity::Row(rows), &cfg);
        let tile_passes_per_group = 37u64.div_ceil(rows);
        assert_eq!(s.iterations, 2 * 2 * tile_passes_per_group, "R={rows}");
    }
}

/// The fused kernel at the exact granularities the model prices produces
/// the same values as the baseline — the correctness half of the paper's
/// performance claim, at model-zoo dimensions (scaled down in sequence
/// length so the test stays fast).
#[test]
fn fused_kernel_exact_at_model_zoo_heads() {
    for model in [Model::bert(), Model::t5_small()] {
        let dk = (model.hidden() / model.heads()) as usize;
        let input = MultiHeadInput::random(1, model.heads() as usize, 48, 48, dk, 99);
        let naive = naive_attention(&input, Mask::None);
        for rows in [4usize, 16, 48] {
            let fused = flat_attention(&input, rows, Mask::None);
            for (f, n) in fused.iter().zip(&naive) {
                assert!(f.max_abs_diff(n) < 1e-4, "{model} R={rows}");
            }
        }
    }
}

/// The instrumented kernel's *measured* memory behavior equals the cost
/// model's *predicted* accounting: iteration counts, peak live slice, and
/// compulsory backing-store traffic — the two halves of the repo agree on
/// the numbers, not just the trend.
#[test]
fn instrumented_execution_matches_model_accounting() {
    use flat::kernels::instrumented_flat_attention;

    let (b, h, n, dk, rows) = (2usize, 4usize, 48usize, 8usize, 16usize);
    let cfg = AttentionConfig::self_attention(
        b as u64,
        h as u64,
        n as u64,
        (h * dk) as u64,
        4 * (h * dk) as u64,
    );
    let input = MultiHeadInput::random(b, h, n, n, dk, 55);
    let (_, stats) = instrumented_flat_attention(&input, rows, Mask::None);
    let slices = FusedSlices::new(Granularity::Row(rows as u64), &cfg);

    // Iterations and peak live intermediate: model == measurement.
    assert_eq!(stats.iterations, slices.iterations);
    assert_eq!(stats.peak_live_logits, slices.intermediate);

    // Compulsory backing-store traffic: Q, K, V read once; O written once.
    let qo = (b * h * n * dk) as u64;
    let kv = (b * h * n * dk) as u64;
    assert_eq!(stats.backing_store_elements(), 2 * qo + 2 * kv);

    // The logit tensor is produced and consumed exactly twice each (L
    // write + softmax rewrite; softmax read + A read) — and never touches
    // the backing store, which is FLAT's entire point.
    let logits = cfg.logit_elements();
    assert_eq!(stats.logit_writes, 2 * logits);
    assert_eq!(stats.logit_reads, 2 * logits);
}

/// Cross-attention: the workloads crate, cost model, and kernels all agree
/// on the asymmetric shapes.
#[test]
fn cross_attention_consistency() {
    let cfg = AttentionConfig::cross_attention(1, 2, 16, 48, 32, 128);
    let block = flat::workloads::AttentionBlock::new(cfg);
    let l = block.operator(OpKind::Logit).gemm;
    assert_eq!((l.m, l.n), (16, 48));

    let input = MultiHeadInput::random(1, 2, 16, 48, 16, 7);
    let naive = naive_attention(&input, Mask::None);
    let fused = flat_attention(&input, 4, Mask::None);
    for (f, n) in fused.iter().zip(&naive) {
        assert!(f.max_abs_diff(n) < 1e-4);
    }
    assert_eq!(cfg.logit_elements(), 2 * 16 * 48);
}
