//! Cross-validation: the discrete-event simulator and the analytical cost
//! model must agree on runtimes across the operating range — the
//! repository's answer to "why trust the closed-form numbers?".

use flat::arch::Accelerator;
use flat::core::{
    CostModel, FusedDataflow, Granularity, ModelOptions, OperatorDataflow, Stationarity,
};
use flat::sim::{simulate_fused, simulate_sequential, SimOptions};
use flat::workloads::Model;

fn agreement(analytical: f64, simulated: f64) -> f64 {
    simulated / analytical
}

/// Fused execution, compute-bound regime: the two models agree within a
/// few percent.
#[test]
fn fused_agreement_compute_bound() {
    let cases = [
        (Accelerator::edge(), Model::bert(), 512u64, 64u64),
        (Accelerator::edge(), Model::bert(), 4096, 64),
        (Accelerator::cloud(), Model::xlm(), 4096, 1024),
    ];
    for (accel, model, seq, r) in cases {
        let block = model.block(64, seq);
        let df = FusedDataflow::new(Granularity::Row(r));
        let analytical = CostModel::new(&accel).fused_la_cost(&block, &df).cycles;
        let simulated = simulate_fused(&accel, &block, &df, SimOptions::default()).cycles;
        let ratio = agreement(analytical, simulated);
        assert!(
            (0.85..=1.15).contains(&ratio),
            "{} {} N={seq} R{r}: sim/analytical = {ratio:.3}",
            accel.name,
            model
        );
    }
}

/// Sequential baseline, memory-bound regime: agreement within ~30% (the
/// simulator resolves per-slice contention the closed form averages out).
#[test]
fn sequential_agreement_memory_bound() {
    for (accel, model, seq) in [
        (Accelerator::edge(), Model::bert(), 512u64),
        (Accelerator::cloud(), Model::xlm(), 4096),
        (Accelerator::cloud(), Model::xlm(), 16_384),
    ] {
        let block = model.block(64, seq);
        let df = OperatorDataflow::baseline(Stationarity::Weight);
        // Compare against the serial-softmax analytical baseline — the
        // simulator's strict three-phase structure.
        let cm = CostModel::with_options(
            &accel,
            ModelOptions {
                overlap_softmax: false,
                ..Default::default()
            },
        );
        let analytical = cm.sequential_la_cost(&block, &df, &df).cycles;
        let simulated = simulate_sequential(&accel, &block, SimOptions::default()).cycles;
        let ratio = agreement(analytical, simulated);
        assert!(
            (0.6..=1.6).contains(&ratio),
            "{} {} N={seq}: sim/analytical = {ratio:.3}",
            accel.name,
            model
        );
    }
}

/// Both models rank the dataflows identically: FLAT beats the baseline in
/// the simulator too, by a comparable factor.
#[test]
fn both_models_agree_on_the_winner() {
    let accel = Accelerator::cloud();
    let block = Model::xlm().block(64, 16_384);
    let df = FusedDataflow::new(Granularity::Row(256));

    let cm = CostModel::new(&accel);
    let base_df = OperatorDataflow::baseline(Stationarity::Weight);
    let speedup_analytical = cm.sequential_la_cost(&block, &base_df, &base_df).cycles
        / cm.fused_la_cost(&block, &df).cycles;

    let sim_base = simulate_sequential(&accel, &block, SimOptions::default()).cycles;
    let sim_fused = simulate_fused(&accel, &block, &df, SimOptions::default()).cycles;
    let speedup_simulated = sim_base / sim_fused;

    assert!(speedup_analytical > 2.0);
    assert!(speedup_simulated > 2.0);
    let ratio = speedup_simulated / speedup_analytical;
    assert!((0.5..=2.0).contains(&ratio), "speedups diverge: {ratio:.3}");
}
