//! Property-based cross-validation of the `flat-desim` event backend
//! against the analytical cost model, through the `flat-sim` agreement
//! harness — the whole-stack counterpart of the deterministic grid in
//! `crates/desim/tests/agreement.rs`.
//!
//! The property: on *uncontended* configurations (staging buffers ≥ 2,
//! the double buffering the closed form assumes) the two backends agree
//! within the 5 % tolerance `flat sim --engine both` defaults to, across
//! randomly drawn sequence lengths, tile sizes, and dataflows. The
//! pinned fixtures below assert the complement: contention and
//! single-tile passes *must* be detected as divergence.

use flat::arch::Accelerator;
use flat::core::{
    FusedDataflow, Granularity, LaExecution, ModelOptions, OperatorDataflow, Stationarity,
};
use flat::sim::{agreement, agreement_sweep, EventOptions};
use flat::workloads::Model;
use proptest::prelude::*;

const TOLERANCE: f64 = 0.05;

/// Event options for fast property runs: a tight iteration cap leans on
/// steady-state extrapolation, which the deterministic suite validates
/// separately.
fn quick(model: ModelOptions, buffers: u32) -> EventOptions {
    EventOptions {
        model,
        buffers,
        max_iterations: 512,
        ..Default::default()
    }
}

fn granularity_strategy() -> impl Strategy<Value = Granularity> {
    prop_oneof![
        prop::sample::select(vec![32u64, 64, 128, 256]).prop_map(Granularity::Row),
        Just(Granularity::Head),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Uncontended fused configs agree within tolerance for any drawn
    /// (seq_len, tile rows, granularity, buffering depth).
    #[test]
    fn uncontended_fused_configs_agree(
        seq_mult in 1u64..=32,
        g in granularity_strategy(),
        platform_edge in any::<bool>(),
        buffers in 2u32..=4,
    ) {
        let accel = if platform_edge { Accelerator::edge() } else { Accelerator::cloud() };
        let seq = seq_mult * 256;
        let block = Model::bert().block(64, seq);
        let la = LaExecution::Fused(FusedDataflow::new(g));
        let a = agreement(&accel, &block, &la, quick(ModelOptions::default(), buffers))
            .expect("wiring is sound");
        prop_assert!(
            a.within(TOLERANCE),
            "{} seq={seq} {g:?} buffers={buffers}: divergence {:.3}%",
            accel.name, a.divergence * 100.0
        );
    }

    /// Serialized (no-double-buffer) machines agree essentially exactly:
    /// both backends run the same serial schedule.
    #[test]
    fn serialized_configs_agree(
        seq_mult in 1u64..=16,
        g in granularity_strategy(),
    ) {
        let accel = Accelerator::edge();
        let seq = seq_mult * 256;
        let block = Model::bert().block(64, seq);
        let la = LaExecution::Fused(FusedDataflow::new(g));
        let model = ModelOptions { double_buffered: false, ..Default::default() };
        let a = agreement(&accel, &block, &la, quick(model, 2)).expect("wiring is sound");
        prop_assert!(
            a.divergence.abs() < 1e-3,
            "seq={seq} {g:?}: serial divergence {:.4}%",
            a.divergence * 100.0
        );
    }

    /// The sequential baseline agrees within tolerance too.
    #[test]
    fn sequential_baseline_agrees(seq_mult in 1u64..=16) {
        let accel = Accelerator::edge();
        let seq = seq_mult * 256;
        let block = Model::bert().block(64, seq);
        let op = OperatorDataflow::baseline(Stationarity::Weight);
        let la = LaExecution::Sequential { logit: op, attend: op };
        let a = agreement(&accel, &block, &la, quick(ModelOptions::default(), 2))
            .expect("wiring is sound");
        prop_assert!(
            a.within(TOLERANCE),
            "seq={seq}: divergence {:.3}%",
            a.divergence * 100.0
        );
    }
}

/// Pinned contended fixture: one staging buffer under double-buffered
/// pricing must be *detected* — reported as divergence well past any
/// reasonable tolerance, never silently absorbed.
#[test]
fn contended_fixture_is_detected_as_divergence() {
    let accel = Accelerator::edge();
    let block = Model::bert().block(64, 4096);
    let la = LaExecution::Fused(FusedDataflow::new(Granularity::Row(64)));
    let a =
        agreement(&accel, &block, &la, quick(ModelOptions::default(), 1)).expect("wiring is sound");
    assert!(
        !a.within(TOLERANCE) && a.divergence > 0.10,
        "contention must surface: divergence {:.3}%",
        a.divergence * 100.0
    );
    // The optimism is one-sided: the event backend is slower, never
    // faster, than the closed form's assumed overlap.
    assert!(a.event_cycles > a.analytical_cycles);
}

/// The validation sweep the CLI exposes (`flat sim --engine both
/// --sweep`) passes end to end at the default tolerance.
#[test]
fn cli_validation_sweep_is_green() {
    let accel = Accelerator::edge();
    let rows =
        agreement_sweep(&accel, &[512, 1024], EventOptions::default()).expect("wiring is sound");
    assert_eq!(rows.len(), 8);
    for row in &rows {
        assert!(
            row.agreement.within(TOLERANCE),
            "{} seq={}: divergence {:.3}%",
            row.dataflow,
            row.seq_len,
            row.agreement.divergence * 100.0
        );
    }
}
