//! Terminal plotting: Unicode sparklines and labeled curve bundles, so
//! the Figure 8/9 sweeps are readable without leaving the shell.

/// Renders values in `[0, 1]` as a Unicode block sparkline.
///
/// # Example
///
/// ```
/// use flat_bench::plot::sparkline;
///
/// let s = sparkline(&[0.0, 0.25, 0.5, 0.75, 1.0]);
/// assert_eq!(s.chars().count(), 5);
/// assert!(s.ends_with('█'));
/// ```
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            let idx = (v.clamp(0.0, 1.0) * 8.0).round() as usize;
            BLOCKS[idx.min(8)]
        })
        .collect()
}

/// One labeled curve for [`render_curves`].
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label.
    pub label: String,
    /// Y values in `[0, 1]` (utilization or normalized energy).
    pub values: Vec<f64>,
}

/// Renders a bundle of curves as aligned sparklines with labels and the
/// final value — a terminal stand-in for one Figure 8 subplot.
///
/// # Example
///
/// ```
/// use flat_bench::plot::{render_curves, Curve};
///
/// let text = render_curves(
///     "util vs buffer",
///     &[Curve { label: "Base".into(), values: vec![0.2, 0.4, 0.6] }],
/// );
/// assert!(text.contains("Base"));
/// assert!(text.contains("0.600"));
/// ```
#[must_use]
pub fn render_curves(title: &str, curves: &[Curve]) -> String {
    let width = curves
        .iter()
        .map(|c| c.label.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = format!("## {title}\n");
    for c in curves {
        out.push_str(&format!(
            "{:width$}  {}  {:.3}\n",
            c.label,
            sparkline(&c.values),
            c.values.last().copied().unwrap_or(0.0),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_maps_extremes() {
        let s: Vec<char> = sparkline(&[0.0, 1.0]).chars().collect();
        assert_eq!(s[0], ' ');
        assert_eq!(s[1], '█');
    }

    #[test]
    fn sparkline_clamps_out_of_range() {
        let s: Vec<char> = sparkline(&[-3.0, 7.0]).chars().collect();
        assert_eq!(s[0], ' ');
        assert_eq!(s[1], '█');
    }

    #[test]
    fn sparkline_is_monotone_in_value() {
        const ORDER: &str = " ▁▂▃▄▅▆▇█";
        let chars: Vec<char> = sparkline(&[0.1, 0.2, 0.5, 0.9]).chars().collect();
        let pos = |c: char| ORDER.chars().position(|x| x == c).unwrap();
        for w in chars.windows(2) {
            assert!(pos(w[0]) <= pos(w[1]));
        }
    }

    #[test]
    fn curves_align_labels() {
        let text = render_curves(
            "t",
            &[
                Curve {
                    label: "a".into(),
                    values: vec![0.5],
                },
                Curve {
                    label: "longer".into(),
                    values: vec![0.9],
                },
            ],
        );
        let lines: Vec<&str> = text.lines().skip(1).collect();
        let col = |l: &str| l.chars().position(|c| "▁▂▃▄▅▆▇█".contains(c)).unwrap();
        assert_eq!(
            col(lines[0]),
            col(lines[1]),
            "sparklines start in the same column"
        );
    }

    #[test]
    fn empty_curves_render_header_only() {
        assert_eq!(render_curves("x", &[]), "## x\n");
    }
}
