//! Experiment harness shared by the per-figure binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §4 for the index). This library holds
//! what they share: platform lookup, the buffer/sequence sweep grids,
//! the Figure 8/9 sweep engine, and plain-TSV output helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod plot;
pub mod sweep;

use flat_arch::Accelerator;
use flat_tensor::Bytes;
use flat_workloads::Model;

/// Looks up one of the Figure 7(a) platform presets by name.
///
/// # Panics
///
/// Panics on an unknown platform name.
#[must_use]
pub fn platform(name: &str) -> Accelerator {
    match name {
        "edge" => Accelerator::edge(),
        "cloud" => Accelerator::cloud(),
        other => panic!("unknown platform {other:?} (expected edge|cloud)"),
    }
}

/// Looks up a model by short name.
///
/// # Panics
///
/// Panics on an unknown model name.
#[must_use]
pub fn model(name: &str) -> Model {
    Model::by_name(name).unwrap_or_else(|| panic!("unknown model {name:?}"))
}

/// The on-chip buffer sweep of Figures 8/9: 20 KiB to 2 GiB,
/// doubling. `quick` keeps every fourth point.
#[must_use]
pub fn sg_sweep(quick: bool) -> Vec<Bytes> {
    let mut out = Vec::new();
    let mut kb = 20u64;
    let mut idx = 0;
    while kb <= 2 * 1024 * 1024 {
        if !quick || idx % 4 == 0 || kb > 1024 * 1024 {
            out.push(Bytes::from_kib(kb));
        }
        kb *= 2;
        idx += 1;
    }
    out
}

/// The sequence lengths of the Figure 8(a) edge rows.
#[must_use]
pub fn edge_seqs(quick: bool) -> Vec<u64> {
    if quick {
        vec![512, 65_536]
    } else {
        vec![512, 4096, 65_536, 262_144]
    }
}

/// The sequence lengths of the Figure 8(b) cloud rows.
#[must_use]
pub fn cloud_seqs(quick: bool) -> Vec<u64> {
    if quick {
        vec![4096, 65_536]
    } else {
        vec![4096, 16_384, 65_536, 262_144]
    }
}

/// The model-comparison sequence lengths of Figure 12(a).
#[must_use]
pub fn fig12_seqs(quick: bool) -> Vec<u64> {
    if quick {
        vec![512, 16_384, 262_144]
    } else {
        vec![512, 4096, 16_384, 65_536, 262_144]
    }
}

/// The evaluation's batch size (§6.1: "batch size of 64").
pub const BATCH: u64 = 64;

/// Prints a TSV row.
pub fn row<I: IntoIterator<Item = String>>(cells: I) {
    let cells: Vec<String> = cells.into_iter().collect();
    println!("{}", cells.join("\t"));
}

/// Formats a sequence length the way the paper labels it (`512`, `4K`,
/// `64K`, `256K`).
#[must_use]
pub fn seq_label(seq: u64) -> String {
    if seq >= 1024 && seq.is_multiple_of(1024) {
        format!("{}K", seq / 1024)
    } else {
        seq.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_spans_20kb_to_2gb() {
        let s = sg_sweep(false);
        assert_eq!(*s.first().unwrap(), Bytes::from_kib(20));
        assert!(*s.last().unwrap() >= Bytes::from_gib(1));
        assert!(s.len() > 12);
        let q = sg_sweep(true);
        assert!(q.len() < s.len());
    }

    #[test]
    fn seq_labels_match_paper_style() {
        assert_eq!(seq_label(512), "512");
        assert_eq!(seq_label(4096), "4K");
        assert_eq!(seq_label(262_144), "256K");
    }

    #[test]
    fn platforms_resolve() {
        assert_eq!(platform("edge").pe.count(), 1024);
        assert_eq!(platform("cloud").pe.count(), 65536);
    }

    #[test]
    #[should_panic(expected = "unknown platform")]
    fn bad_platform_panics() {
        let _ = platform("tpu");
    }
}
