//! Multi-level on-chip hierarchy study (§3.1: "our ideas are applicable
//! to a multi-level on-chip memory hierarchy as well").
//!
//! Compares, at growing sequence lengths:
//!   1. the stock single-level edge part (512 KiB SG),
//!   2. the same part plus an 8 MiB second-level buffer at 200 GB/s
//!      (cheap, slower SRAM/eDRAM),
//!   3. a hypothetical part with the full 8.5 MiB as first-level SG at
//!      the full 1 TB/s (the expensive alternative).
//!
//! The claim to check: the cheap L2 recovers most of the big-SG benefit
//! for FLAT, because the overflow tensors (K/V slices, large logit
//! slices) tolerate the lower bandwidth.
//!
//! Run: `cargo run --release -p flat-bench --bin hierarchy -- [--model bert]`

use flat_arch::{Accelerator, L2Sram};
use flat_bench::{args::Args, model, row, seq_label, BATCH};
use flat_core::{CostModel, FusedDataflow, Granularity};
use flat_tensor::Bytes;

fn main() {
    let args = Args::parse();
    let m = model(&args.get("model", "bert"));

    let stock = Accelerator::edge();
    let mut two_level = Accelerator::edge();
    two_level.name = "edge+L2".to_owned();
    two_level.l2_sram = Some(L2Sram::new(Bytes::from_mib(8), 200.0e9));
    let big_sg = {
        let mut a = Accelerator::edge().with_sg(Bytes::from_kib(512 + 8 * 1024));
        a.name = "edge-bigSG".to_owned();
        a
    };

    println!("# Two-level on-chip hierarchy — {m}, FLAT fused L-A utilization");
    row([
        "seq",
        "R",
        "512KiB SG",
        "+8MiB L2 (200GB/s)",
        "8.5MiB SG (1TB/s)",
    ]
    .map(String::from));
    for (seq, r) in [(4096u64, 64u64), (8192, 64), (16_384, 64), (32_768, 32)] {
        let block = m.block(BATCH, seq);
        let df = FusedDataflow::new(Granularity::Row(r));
        let util = |a: &Accelerator| CostModel::new(a).fused_la_cost(&block, &df).util();
        row([
            seq_label(seq),
            r.to_string(),
            format!("{:.3}", util(&stock)),
            format!("{:.3}", util(&two_level)),
            format!("{:.3}", util(&big_sg)),
        ]);
    }
    println!();
    println!("# A cheap second level recovers most of what an 8.5 MiB first-level buffer");
    println!("# would buy: the overflow tensors tolerate its lower bandwidth, which is");
    println!("# why the paper's ideas 'apply to multi-level hierarchies as well' (3.1).");
}
