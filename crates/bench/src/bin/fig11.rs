//! Figure 11: end-to-end model latency breakdown (L-A / Projection / FC)
//! across the accelerator classes, plus the non-stall (ideal) reference.
//!
//! Run: `cargo run --release -p flat-bench --bin fig11 --
//!       [--platform edge|cloud] [--model bert|xlm] [--quick]`

use flat_bench::{args::Args, fig12_seqs, model, platform, row, seq_label, BATCH};
use flat_dse::{AccelClass, Objective};
use flat_workloads::OpCategory;

fn main() {
    let args = Args::parse();
    let platform_name = args.get("platform", "edge");
    let accel = platform(&platform_name);
    let default_model = if platform_name == "edge" {
        "bert"
    } else {
        "xlm"
    };
    let model = model(&args.get("model", default_model));
    let seqs = fig12_seqs(args.flag("quick"));

    println!(
        "# Figure 11({}) — latency breakdown, {} on {} (cycles at model level, B={})",
        if platform_name == "edge" { "a" } else { "b" },
        model,
        accel,
        BATCH
    );
    row([
        "seq",
        "accelerator",
        "L-A",
        "Projection",
        "FC",
        "total",
        "non-stall",
    ]
    .map(String::from));
    for seq in seqs {
        for class in AccelClass::comparison_set() {
            let eval = class.evaluate(&accel, &model, BATCH, seq, Objective::MaxUtil);
            let cat = |c: OpCategory| eval.cost.category(c).cycles;
            let total = eval.cost.total();
            row([
                seq_label(seq),
                class.to_string(),
                format!("{:.3e}", cat(OpCategory::LogitAttend)),
                format!("{:.3e}", cat(OpCategory::Projection)),
                format!("{:.3e}", cat(OpCategory::FeedForward)),
                format!("{:.3e}", total.cycles),
                format!("{:.3e}", total.ideal_cycles),
            ]);
        }
    }
    println!();
    println!("# Paper shape: at 512 every class is near the non-stall line; as N grows the");
    println!("# L-A share dominates and only ATTACC stays close to it.");
}
