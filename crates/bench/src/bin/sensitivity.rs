//! Sensitivity analysis: how FLAT's advantage over the sequential
//! baseline responds to each architectural and workload knob — heads,
//! per-head dimension, batch, off-chip bandwidth, and NoC — holding
//! everything else at the paper's defaults.
//!
//! Run: `cargo run --release -p flat-bench --bin sensitivity -- [--platform cloud] [--seq 16384]`

use flat_arch::Noc;
use flat_bench::{args::Args, platform, row};
use flat_dse::{Dse, Objective, SpaceKind};
use flat_workloads::Model;

fn speedup(accel: &flat_arch::Accelerator, model: &Model, batch: u64, seq: u64) -> (f64, f64, f64) {
    let block = model.block(batch, seq);
    let dse = Dse::new(accel, &block);
    let base = dse.best_la(SpaceKind::Sequential, Objective::MaxUtil);
    let flat = dse.best_la(SpaceKind::Full, Objective::MaxUtil);
    (
        base.report.util(),
        flat.report.util(),
        base.report.cycles / flat.report.cycles,
    )
}

fn main() {
    let args = Args::parse();
    let accel = platform(&args.get("platform", "cloud"));
    let seq = args.get_u64("seq", 16_384);
    println!("# Sensitivity of FLAT-opt vs Base-opt (L-A scope) on {accel}, N={seq}\n");

    println!("## heads (D=2048 fixed, dk = D/H)");
    row(["H", "dk", "base util", "flat util", "speedup"].map(String::from));
    for h in [4u64, 8, 16, 32, 64] {
        let m = Model::custom(12, h, 2048, 8192);
        let (b, f, s) = speedup(&accel, &m, 64, seq);
        row([
            h.to_string(),
            (2048 / h).to_string(),
            format!("{b:.3}"),
            format!("{f:.3}"),
            format!("{s:.2}x"),
        ]);
    }

    println!("\n## batch size (XLM)");
    row(["B", "base util", "flat util", "speedup"].map(String::from));
    for b in [1u64, 8, 32, 64, 128] {
        let (bu, fu, s) = speedup(&accel, &Model::xlm(), b, seq);
        row([
            b.to_string(),
            format!("{bu:.3}"),
            format!("{fu:.3}"),
            format!("{s:.2}x"),
        ]);
    }

    println!("\n## off-chip bandwidth (XLM, B=64)");
    row(["GB/s", "base util", "flat util", "speedup"].map(String::from));
    for gbps in [100.0f64, 200.0, 400.0, 800.0, 1600.0] {
        let a = accel.with_offchip_bw(gbps * 1e9);
        let (b, f, s) = speedup(&a, &Model::xlm(), 64, seq);
        row([
            format!("{gbps:.0}"),
            format!("{b:.3}"),
            format!("{f:.3}"),
            format!("{s:.2}x"),
        ]);
    }

    println!("\n## NoC fabric (XLM, B=64)");
    row(["noc", "base util", "flat util", "speedup"].map(String::from));
    for noc in Noc::all() {
        let mut a = accel.clone();
        a.noc = noc;
        let (b, f, s) = speedup(&a, &Model::xlm(), 64, seq);
        row([
            noc.to_string(),
            format!("{b:.3}"),
            format!("{f:.3}"),
            format!("{s:.2}x"),
        ]);
    }

    println!();
    println!("# Expected shapes: more heads -> lower baseline OI (2.2's H/D term) -> bigger");
    println!("# FLAT win; batch barely matters (activation-activation!); more bandwidth");
    println!("# narrows the gap; the NoC mostly moves the fused curve.");
}
