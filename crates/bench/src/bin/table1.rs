//! Table 1: on-chip buffer requirement to stage weights and activations
//! fully on-chip — K/Q/V/O vs L/A, across heads and sequence lengths.
//!
//! Run: `cargo run -p flat-bench --bin table1`

use flat_bench::row;
use flat_workloads::AttentionConfig;

fn main() {
    println!(
        "# Table 1 — staging buffer requirement (16-bit, D=1024), decimal MB/GB as in the paper"
    );
    row(["H", "N", "K/Q/V/O buf", "L/A buf"].map(String::from));
    for (h, n) in [
        (1, 512),
        (16, 512),
        (1, 2048),
        (16, 2048),
        (1, 14 * 1024),
        (16, 14 * 1024),
    ] {
        let cfg = AttentionConfig::self_attention(1, h, n, 1024, 4096);
        row([
            h.to_string(),
            flat_bench::seq_label(n),
            fmt_decimal(cfg.qkvo_staging_size().as_u64()),
            fmt_decimal(cfg.la_staging_size().as_u64()),
        ]);
    }
    println!();
    println!("paper row K/Q/V/O: 4MB 4MB 10MB 19MB 62MB 62MB");
    println!("paper row L/A    : 2.5MB 10MB 16MB 142MB 474MB 6.6GB");
}

/// Formats bytes in decimal MB/GB, which is what the paper's Table 1 uses.
fn fmt_decimal(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.1}GB", b / 1e9)
    } else {
        format!("{:.1}MB", b / 1e6)
    }
}
