//! Figure 10: the FLAT design space — utilization vs live memory
//! footprint for every point the DSE enumerates, plus the Pareto
//! frontier (the "top-left corner" the paper's objectives chase).
//!
//! Run: `cargo run --release -p flat-bench --bin fig10_space --
//!       [--platform edge] [--model bert] [--seq 512]`

use flat_bench::{args::Args, model, platform, row, BATCH};
use flat_dse::{pareto_frontier, Dse, SpaceKind};

fn main() {
    let args = Args::parse();
    let accel = platform(&args.get("platform", "edge"));
    let model = model(&args.get("model", "bert"));
    let seq = args.get_u64("seq", 512);
    let block = model.block(BATCH, seq);
    let dse = Dse::new(&accel, &block);

    let points = dse.explore_la(SpaceKind::Full);
    let frontier = pareto_frontier(&points);

    println!("# Figure 10 — FLAT design space: {model} N={seq} on {accel}");
    println!(
        "# {} design points, {} on the Pareto frontier",
        points.len(),
        frontier.len()
    );
    row(["kind", "dataflow", "footprint_bytes", "util", "pareto"].map(String::from));
    for p in &points {
        let on_frontier = frontier.iter().any(|f| {
            f.report.footprint == p.report.footprint
                && (f.report.util() - p.report.util()).abs() < 1e-12
        });
        let (kind, label) = match p.la {
            flat_core::LaExecution::Fused(f) => ("fused", format!("FLAT-{}", f.granularity)),
            flat_core::LaExecution::Sequential { logit, .. } => (
                "sequential",
                match logit.l3 {
                    None => "Base".to_owned(),
                    Some(l3) => format!("Base-{}", l3.granularity),
                },
            ),
        };
        row([
            kind.to_owned(),
            label,
            p.report.footprint.as_u64().to_string(),
            format!("{:.4}", p.report.util()),
            if on_frontier {
                "*".into()
            } else {
                String::new()
            },
        ]);
    }
}
