//! FLAT on a GPU (paper footnote 5): fused vs unfused attention on
//! A100-/V100-class devices across sequence lengths — the bridge from
//! FLAT's scratchpad argument to FlashAttention's shared-memory one.
//!
//! Run: `cargo run --release -p flat-bench --bin gpu_flat -- [--model bert] [--batch 64]`

use flat_bench::{args::Args, model, row, seq_label};
use flat_gpu::{Gpu, GpuAttention};

fn main() {
    let args = Args::parse();
    let m = model(&args.get("model", "bert"));
    let batch = args.get_u64("batch", 64);

    for gpu in [Gpu::a100_like(), Gpu::v100_like()] {
        println!("# {gpu}");
        row([
            "seq",
            "unfused (ms)",
            "fused (ms)",
            "speedup",
            "unfused HBM",
            "fused HBM",
            "unfused %peak",
            "fused %peak",
        ]
        .map(String::from));
        for seq in [512u64, 1024, 2048, 4096, 8192, 16_384, 32_768] {
            let cfg = m.config(batch, seq);
            let unfused = GpuAttention::unfused(&gpu, &cfg);
            let fused = GpuAttention::fused_best(&gpu, &cfg);
            row([
                seq_label(seq),
                format!("{:.3}", unfused.seconds * 1e3),
                format!("{:.3}", fused.seconds * 1e3),
                format!("{:.2}x", unfused.seconds / fused.seconds),
                unfused.hbm_bytes.to_string(),
                fused.hbm_bytes.to_string(),
                format!("{:.0}%", unfused.efficiency * 100.0),
                format!("{:.0}%", fused.efficiency * 100.0),
            ]);
        }
        println!();
    }
    println!("# The same physics as the accelerator study: the unfused path's O(N^2)");
    println!("# intermediate round-trips HBM four times; the fused kernel keeps it in");
    println!("# shared memory and approaches peak - which is FlashAttention's result,");
    println!("# published a year after FLAT made the argument for accelerators.");
    println!();

    // Decode contrast: fusion cannot help the KV-cache-bound phase.
    let gpu = Gpu::a100_like();
    println!(
        "# Decode steps (KV cache, {m}, B={batch}) on {}: irreducibly HBM-bound",
        gpu.name
    );
    row(["context", "ms/step", "%peak", "HBM/step"].map(String::from));
    for ctx in [4096u64, 16_384, 65_536] {
        let block = m.decode_step(batch, ctx);
        let r = GpuAttention::decode_step(&gpu, block.config());
        row([
            seq_label(ctx),
            format!("{:.3}", r.seconds * 1e3),
            format!("{:.1}%", r.efficiency * 100.0),
            r.hbm_bytes.to_string(),
        ]);
    }
}
