//! Orthogonality to quantization (§1, §7): FLAT is a dataflow technique —
//! it composes with model-level precision reduction rather than competing
//! with it. This bench prices the same workload at int8 / fp16 / fp32 and
//! shows the two savings multiply.
//!
//! Run: `cargo run --release -p flat-bench --bin quantization -- [--platform cloud] [--seq 16384]`

use flat_bench::{args::Args, model, platform, row, BATCH};
use flat_core::{BlockDataflow, CostModel, Granularity};
use flat_tensor::DataType;
use flat_workloads::Scope;

fn main() {
    let args = Args::parse();
    let accel = platform(&args.get("platform", "cloud"));
    let m = model(&args.get("model", "xlm"));
    let seq = args.get_u64("seq", 16_384);
    let r = if accel.pe.count() >= 65536 { 256 } else { 64 };

    println!("# Quantization x dataflow — {m} N={seq} on {accel}");
    row(["dtype", "dataflow", "L-A util", "off-chip", "energy (pJ)"].map(String::from));
    let mut base_fp16 = None;
    let mut flat_int8 = None;
    for dtype in [DataType::Fp32, DataType::Fp16, DataType::Int8] {
        let cfg = m.config(BATCH, seq).with_dtype(dtype);
        let block = flat_workloads::AttentionBlock::new(cfg);
        let cm = CostModel::new(&accel);
        for df in [
            BlockDataflow::base(),
            BlockDataflow::flat(Granularity::Row(r)),
        ] {
            let rep = cm.scope_cost(&block, &df, Scope::LogitAttend);
            if dtype == DataType::Fp16 && df.label() == "Base" {
                base_fp16 = Some(rep.cycles);
            }
            if dtype == DataType::Int8 && df.label() != "Base" {
                flat_int8 = Some(rep.cycles);
            }
            row([
                dtype.to_string(),
                df.label(),
                format!("{:.3}", rep.util()),
                rep.traffic.offchip.to_string(),
                format!("{:.3e}", rep.energy.total_pj()),
            ]);
        }
    }
    if let (Some(base), Some(flat)) = (base_fp16, flat_int8) {
        println!();
        println!(
            "# int8 + FLAT vs fp16 + Base: {:.2}x faster — the techniques compose (§7).",
            base / flat
        );
    }
}
