//! Figure 9: energy consumption of every Figure 8 data point, normalized
//! by the largest energy in each (scope, sequence) subplot — exactly the
//! paper's normalization.
//!
//! Run: `cargo run --release -p flat-bench --bin fig9 -- [--platform edge|cloud]
//!       [--model bert|xlm|...] [--quick]`

use flat_bench::{
    args::Args, cloud_seqs, edge_seqs, model, platform, row, seq_label, sg_sweep, sweep,
};
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let platform_name = args.get("platform", "edge");
    let accel = platform(&platform_name);
    let default_model = if platform_name == "edge" {
        "bert"
    } else {
        "xlm"
    };
    let model = model(&args.get("model", default_model));
    let quick = args.flag("quick");
    let seqs = if platform_name == "edge" {
        edge_seqs(quick)
    } else {
        cloud_seqs(quick)
    };
    let sgs = sg_sweep(quick);

    let records = sweep::buffer_sweep(&accel, &model, &seqs, &sgs);

    // Per-subplot max for normalization.
    let mut max_by_subplot: HashMap<(String, u64), f64> = HashMap::new();
    for r in &records {
        let key = (r.scope.clone(), r.seq);
        let e = max_by_subplot.entry(key).or_insert(0.0);
        *e = e.max(r.energy_pj);
    }

    println!(
        "# Figure 9({}) — normalized energy, {} on {}",
        if platform_name == "edge" { "a" } else { "b" },
        model,
        accel
    );
    row(["scope", "seq", "sg", "dataflow", "energy_norm", "energy_pj"].map(String::from));
    for r in &records {
        let max = max_by_subplot[&(r.scope.clone(), r.seq)];
        row([
            r.scope.clone(),
            seq_label(r.seq),
            r.sg.to_string(),
            r.dataflow.clone(),
            format!("{:.4}", r.energy_pj / max.max(1.0)),
            format!("{:.3e}", r.energy_pj),
        ]);
    }
}
