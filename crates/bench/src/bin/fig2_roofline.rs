//! Figure 2: rooflines — (a) operator intensities, (b) the batch-size
//! effect, (c) the on-chip staging effect.
//!
//! Run: `cargo run -p flat-bench --bin fig2_roofline [--platform edge|cloud] [--seq N]`

use flat_bench::{args::Args, platform, row, BATCH};
use flat_core::roofline::{block_roofline, Roofline};
use flat_workloads::Model;

fn main() {
    let args = Args::parse();
    let accel = platform(&args.get("platform", "edge"));
    let seq = args.get_u64("seq", 4096);
    let model = Model::bert();

    let off = Roofline::offchip(&accel);
    let on = Roofline::onchip(&accel);
    println!(
        "# Figure 2 — rooflines on {} (peak {:.2} TFLOP/s)",
        accel,
        off.peak_flops / 1e12
    );
    println!(
        "# ridge: off-chip {:.1} FLOP/B, on-chip {:.1} FLOP/B",
        off.ridge_intensity(),
        on.ridge_intensity()
    );
    println!();

    println!("## (a,c) operator intensity and attainable fraction of peak (N={seq}, B={BATCH})");
    row([
        "op",
        "OI (FLOP/B)",
        "frac@off-chip",
        "frac@on-chip (staged)",
    ]
    .map(String::from));
    for p in block_roofline(&model.block(BATCH, seq), &accel) {
        row([
            p.kind.to_string(),
            format!("{:.2}", p.intensity),
            format!("{:.3}", p.offchip_fraction),
            format!("{:.3}", p.onchip_fraction),
        ]);
    }
    println!();

    println!("## (b) batch-size effect on attainable fraction (off-chip roofline)");
    row(["batch", "FC1 frac", "Logit frac"].map(String::from));
    for batch in [1u64, 4, 16, 64, 256] {
        let pts = block_roofline(&model.block(batch, seq), &accel);
        let frac = |k: flat_workloads::OpKind| {
            pts.iter()
                .find(|p| p.kind == k)
                .map(|p| p.offchip_fraction)
                .unwrap()
        };
        row([
            batch.to_string(),
            format!("{:.3}", frac(flat_workloads::OpKind::FeedForward1)),
            format!("{:.3}", frac(flat_workloads::OpKind::Logit)),
        ]);
    }
    println!();
    println!("# Paper shape: batching lifts FC toward the ceiling; Logit/Attend stay pinned");
    println!("# left of the ridge — only on-chip staging (FLAT) raises their attainable rate.");
}
