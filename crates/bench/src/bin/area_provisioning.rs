//! The §8 claim, quantified: under a **fixed silicon budget**, how should
//! an attention accelerator split its area between PEs and scratchpad?
//!
//! For a sequential-only accelerator the answer is "buy buffer" (it needs
//! the intermediate tensor resident to perform); for a FLAT-capable one
//! the answer shifts toward "buy compute", because R-granularity makes a
//! small buffer sufficient — *"designers can now budget a much smaller
//! on-chip buffer"*.
//!
//! Run: `cargo run --release -p flat-bench --bin area_provisioning --
//!       [--budget-milli-mm2 4000] [--model bert] [--seq 4096]`

use flat_bench::{args::Args, model, row, BATCH};
use flat_dse::{best_hardware, Dse, HwSearchSpec, Objective, SpaceKind};

fn main() {
    let args = Args::parse();
    let budget = args.get_u64("budget-milli-mm2", 4000) as f64 / 1000.0;
    let m = model(&args.get("model", "bert"));
    let seq = args.get_u64("seq", 4096);
    let block = m.block(BATCH, seq);
    let spec = HwSearchSpec::edge_class(budget);

    println!("# Area provisioning under a fixed {budget:.1} mm² budget — {m} N={seq}");
    println!("# (edge-class memory system: 1 TB/s on-chip, 50 GB/s off-chip, 1 GHz)");
    row([
        "SG (KiB)",
        "PE array",
        "area mm2",
        "Base-opt util",
        "FLAT-opt util",
        "Base tput",
        "FLAT tput",
    ]
    .map(String::from));

    for cand in spec.candidates() {
        let dse = Dse::new(&cand.accel, &block);
        let base = dse.best_la(SpaceKind::Sequential, Objective::MaxUtil);
        let flat = dse.best_la(SpaceKind::Full, Objective::MaxUtil);
        let peak = cand.accel.peak_macs_per_cycle() as f64;
        row([
            format!("{:.0}", cand.accel.sg.as_kib()),
            cand.accel.pe.to_string(),
            format!("{:.2}", cand.area_mm2),
            format!("{:.3}", base.report.util()),
            format!("{:.3}", flat.report.util()),
            format!("{:.0}", peak * base.report.util()),
            format!("{:.0}", peak * flat.report.util()),
        ]);
    }

    let base = best_hardware(&spec, &block, SpaceKind::Sequential, Objective::MaxUtil)
        .expect("budget affords candidates");
    let flat = best_hardware(&spec, &block, SpaceKind::Full, Objective::MaxUtil)
        .expect("budget affords candidates");
    println!();
    println!(
        "# Best sequential provisioning: {} ({:.0} useful MACs/cycle)",
        base.hw.accel, base.useful_macs_per_cycle
    );
    println!(
        "# Best FLAT provisioning:       {} ({:.0} useful MACs/cycle, {:.2}x)",
        flat.hw.accel,
        flat.useful_macs_per_cycle,
        flat.useful_macs_per_cycle / base.useful_macs_per_cycle
    );
    println!("# FLAT shifts the optimum toward more PEs and less SRAM — the §8 conclusion.");
}
