//! Figure 8: compute utilization vs on-chip buffer size, across sequence
//! lengths, dataflows, and analysis scopes.
//!
//! Run: `cargo run --release -p flat-bench --bin fig8 -- [--platform edge|cloud]
//!       [--model bert|xlm|...] [--quick]`
//!
//! Defaults match the paper's subplots: `--platform edge --model bert`
//! (Figure 8(a)) or `--platform cloud --model xlm` (Figure 8(b)).

use flat_bench::{
    args::Args, cloud_seqs, edge_seqs, model, platform, row, seq_label, sg_sweep, sweep,
};

fn main() {
    let args = Args::parse();
    let platform_name = args.get("platform", "edge");
    let accel = platform(&platform_name);
    let default_model = if platform_name == "edge" {
        "bert"
    } else {
        "xlm"
    };
    let model = model(&args.get("model", default_model));
    let quick = args.flag("quick");
    let seqs = if platform_name == "edge" {
        edge_seqs(quick)
    } else {
        cloud_seqs(quick)
    };
    let sgs = sg_sweep(quick);

    let records = sweep::buffer_sweep(&accel, &model, &seqs, &sgs);
    println!(
        "# Figure 8({}) — Util vs buffer, {} on {}",
        if platform_name == "edge" { "a" } else { "b" },
        model,
        accel
    );

    if args.flag("plot") {
        // Terminal view: one sparkline bundle per (scope, seq) subplot,
        // x-axis = buffer size ascending.
        use flat_bench::plot::{render_curves, Curve};
        for &seq in &seqs {
            for scope in ["L-A", "Block"] {
                let mut curves: Vec<Curve> = Vec::new();
                for df in records
                    .iter()
                    .map(|r| r.dataflow.clone())
                    .collect::<std::collections::BTreeSet<_>>()
                {
                    let values: Vec<f64> = records
                        .iter()
                        .filter(|r| r.scope == scope && r.seq == seq && r.dataflow == df)
                        .map(|r| r.util)
                        .collect();
                    curves.push(Curve { label: df, values });
                }
                println!(
                    "{}",
                    render_curves(
                        &format!(
                            "{scope} @ N={} (x: {} -> {})",
                            seq_label(seq),
                            sgs.first().unwrap(),
                            sgs.last().unwrap()
                        ),
                        &curves
                    )
                );
            }
        }
        return;
    }

    row(["scope", "seq", "sg", "dataflow", "util"].map(String::from));
    for r in &records {
        row([
            r.scope.clone(),
            seq_label(r.seq),
            r.sg.to_string(),
            r.dataflow.clone(),
            format!("{:.4}", r.util),
        ]);
    }
}
