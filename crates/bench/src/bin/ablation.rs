//! Ablation studies over the cost model's design choices (§5.1's
//! implementation arguments, quantified):
//!
//! 1. double buffering on/off,
//! 2. baseline softmax pipelining on/off (off reproduces the paper's
//!    stricter baseline and widens FLAT's advantage),
//! 3. NoC fabric (systolic / tree / crossbar),
//! 4. selective FLAT-tile enables.
//!
//! Run: `cargo run --release -p flat-bench --bin ablation -- [--platform edge|cloud] [--seq N]`

use flat_arch::Noc;
use flat_bench::{args::Args, model, platform, row, BATCH};
use flat_core::{BlockDataflow, CostModel, FusedDataflow, FusedEnables, Granularity, ModelOptions};
use flat_workloads::Scope;

fn main() {
    let args = Args::parse();
    let accel = platform(&args.get("platform", "edge"));
    let m = model(&args.get("model", "bert"));
    let seq = args.get_u64("seq", 4096);
    let block = m.block(BATCH, seq);
    let r = if accel.pe.count() >= 65536 { 1024 } else { 64 };
    let flat = BlockDataflow::flat(Granularity::Row(r));
    let base = BlockDataflow::base();

    println!("# Ablations — {m} N={seq} on {accel}\n");

    println!("## 1+2: execution options (L-A utilization)");
    row(["options", "Base util", "FLAT-R util", "FLAT speedup"].map(String::from));
    for (name, opts) in [
        (
            "double-buffered + pipelined softmax",
            ModelOptions::default(),
        ),
        (
            "double-buffered, serial softmax (paper's baseline)",
            ModelOptions {
                overlap_softmax: false,
                ..Default::default()
            },
        ),
        (
            "no double buffering",
            ModelOptions {
                double_buffered: false,
                overlap_softmax: false,
                ..Default::default()
            },
        ),
    ] {
        let cm = CostModel::with_options(&accel, opts);
        let b = cm.scope_cost(&block, &base, Scope::LogitAttend);
        let f = cm.scope_cost(&block, &flat, Scope::LogitAttend);
        row([
            name.to_owned(),
            format!("{:.3}", b.util()),
            format!("{:.3}", f.util()),
            format!("{:.2}x", b.cycles / f.cycles),
        ]);
    }

    println!("\n## 3: NoC fabric (FLAT-R{r} L-A utilization)");
    row(["noc", "util", "tile-switch overhead (cycles)"].map(String::from));
    for noc in Noc::all() {
        let mut a = accel.clone();
        a.noc = noc;
        let cm = CostModel::new(&a);
        let f = cm.scope_cost(&block, &flat, Scope::LogitAttend);
        row([
            noc.to_string(),
            format!("{:.3}", f.util()),
            noc.tile_switch_overhead(a.pe).to_string(),
        ]);
    }

    println!("\n## 5: interleaved vs spatially pipelined fusion (§5.1, FLAT-R{r})");
    row(["execution", "util", "cycles"].map(String::from));
    {
        let cm = CostModel::new(&accel);
        for (name, df) in [
            (
                "interleaved (paper's choice)",
                FusedDataflow::new(Granularity::Row(r)),
            ),
            (
                "pipelined (split array)",
                FusedDataflow::pipelined(Granularity::Row(r)),
            ),
        ] {
            let report = cm.fused_la_cost(&block, &df);
            row([
                name.to_owned(),
                format!("{:.3}", report.util()),
                format!("{:.3e}", report.cycles),
            ]);
        }
    }

    println!("\n## 4: selective FLAT-tile enables (FLAT-R{r})");
    row(["enables", "util", "off-chip", "footprint"].map(String::from));
    let cm = CostModel::new(&accel);
    for (name, enables) in [
        ("all", FusedEnables::all()),
        ("intermediate only", FusedEnables::intermediate_only()),
        (
            "K/V + intermediate",
            FusedEnables {
                query: false,
                key: true,
                value: true,
                output: false,
                intermediate: true,
            },
        ),
        (
            "all but intermediate",
            FusedEnables {
                query: true,
                key: true,
                value: true,
                output: true,
                intermediate: false,
            },
        ),
    ] {
        let mut df = FusedDataflow::new(Granularity::Row(r));
        df.enables = enables;
        let report = cm.fused_la_cost(&block, &df);
        row([
            name.to_owned(),
            format!("{:.3}", report.util()),
            report.traffic.offchip.to_string(),
            report.footprint.to_string(),
        ]);
    }
}
