//! Cross-validation table: discrete-event simulation vs the analytical
//! cost model, across platforms, sequence lengths, and dataflows.
//!
//! Run: `cargo run --release -p flat-bench --bin sim_vs_model -- [--quick]`

use flat_arch::Accelerator;
use flat_bench::{args::Args, row, seq_label, BATCH};
use flat_core::{
    CostModel, FusedDataflow, Granularity, ModelOptions, OperatorDataflow, Stationarity,
};
use flat_sim::{simulate_fused, simulate_sequential, SimOptions};
use flat_workloads::Model;

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    println!("# Event simulation vs analytical model (L-A pair, B={BATCH})");
    row([
        "platform",
        "model",
        "seq",
        "dataflow",
        "analytical",
        "simulated",
        "sim/analytical",
    ]
    .map(String::from));

    let mut cases: Vec<(Accelerator, Model, u64, u64)> = vec![
        (Accelerator::edge(), Model::bert(), 512, 64),
        (Accelerator::edge(), Model::bert(), 4096, 64),
        (Accelerator::cloud(), Model::xlm(), 4096, 1024),
        (Accelerator::cloud(), Model::xlm(), 16_384, 256),
    ];
    if !quick {
        cases.push((Accelerator::edge(), Model::t5_small(), 2048, 64));
        cases.push((Accelerator::cloud(), Model::bert(), 16_384, 256));
        cases.push((Accelerator::cloud(), Model::xlm(), 65_536, 256));
    }

    for (accel, model, seq, r) in cases {
        let block = model.block(BATCH, seq);
        let fused = FusedDataflow::new(Granularity::Row(r));
        let a_fused = CostModel::new(&accel).fused_la_cost(&block, &fused).cycles;
        let s_fused = simulate_fused(&accel, &block, &fused, SimOptions::default()).cycles;
        row([
            accel.name.clone(),
            model.to_string(),
            seq_label(seq),
            format!("FLAT-R{r}"),
            format!("{a_fused:.3e}"),
            format!("{s_fused:.3e}"),
            format!("{:.3}", s_fused / a_fused),
        ]);

        let base = OperatorDataflow::baseline(Stationarity::Weight);
        let a_base = CostModel::with_options(
            &accel,
            ModelOptions {
                overlap_softmax: false,
                ..Default::default()
            },
        )
        .sequential_la_cost(&block, &base, &base)
        .cycles;
        let s_base = simulate_sequential(&accel, &block, SimOptions::default()).cycles;
        row([
            accel.name.clone(),
            model.to_string(),
            seq_label(seq),
            "Base".to_owned(),
            format!("{a_base:.3e}"),
            format!("{s_base:.3e}"),
            format!("{:.3}", s_base / a_base),
        ]);
    }
    println!();
    println!("# Agreement within a few percent in compute-bound regimes and within tens of");
    println!("# percent in memory-bound ones validates the closed-form model the figures use.");
}
