//! Figure 12(b): the off-chip bandwidth each accelerator class needs to
//! reach 0.95 utilization on the most bandwidth-intensive L-A operator
//! (XLM on the cloud platform), across sequence lengths.
//!
//! Run: `cargo run --release -p flat-bench --bin fig12b -- [--quick]
//!       [--target-milli 950]`

use flat_arch::Accelerator;
use flat_bench::{args::Args, model, platform, row, seq_label, BATCH};
use flat_dse::{AccelClass, Dse, Objective};
use flat_workloads::Model;

/// Best achievable L-A utilization of a class at a given off-chip
/// bandwidth (the class re-optimizes its dataflow for every bandwidth).
fn best_util_at_bw(base: &Accelerator, model: &Model, seq: u64, class: AccelClass, bw: f64) -> f64 {
    let accel = base.with_offchip_bw(bw);
    let block = model.block(BATCH, seq);
    Dse::new(&accel, &block)
        .best_la(class.space(), Objective::MaxUtil)
        .report
        .util()
}

/// Minimum bandwidth reaching `target` utilization, by bisection over
/// 100 MB/s – 100 TB/s. `None` when unreachable.
fn required_bw(
    base: &Accelerator,
    model: &Model,
    seq: u64,
    class: AccelClass,
    target: f64,
) -> Option<f64> {
    let (mut lo, mut hi) = (1.0e8f64, 1.0e14f64);
    if best_util_at_bw(base, model, seq, class, hi) < target {
        return None;
    }
    while hi / lo > 1.05 {
        let mid = (lo * hi).sqrt();
        if best_util_at_bw(base, model, seq, class, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

fn main() {
    let args = Args::parse();
    let target = args.get_u64("target-milli", 950) as f64 / 1000.0;
    let accel = platform("cloud");
    let model = model("xlm");
    let seqs: Vec<u64> = if args.flag("quick") {
        vec![2048, 16_384, 131_072]
    } else {
        vec![
            2048, 4096, 8192, 16_384, 32_768, 65_536, 131_072, 262_144, 524_288,
        ]
    };
    let classes = [
        AccelClass::FlexAccelM,
        AccelClass::FlexAccel,
        AccelClass::AttAcc,
    ];

    println!(
        "# Figure 12(b) — off-chip BW (GB/s) for L-A Util >= {target} (XLM, cloud, 32 MiB SG)"
    );
    row([
        "seq",
        "FlexAccel-M",
        "FlexAccel",
        "ATTACC",
        "reduction_vs_FlexM",
        "reduction_vs_Flex",
    ]
    .map(String::from));
    let mut reductions = (Vec::new(), Vec::new());
    for seq in seqs {
        let bws: Vec<Option<f64>> = classes
            .iter()
            .map(|&c| required_bw(&accel, &model, seq, c, target))
            .collect();
        let fmt =
            |b: &Option<f64>| b.map_or("unreachable".to_owned(), |v| format!("{:.1}", v / 1e9));
        let red = |a: &Option<f64>, b: &Option<f64>| match (a, b) {
            (Some(x), Some(y)) => Some(1.0 - y / x),
            _ => None,
        };
        let r_m = red(&bws[0], &bws[2]);
        let r_f = red(&bws[1], &bws[2]);
        if let Some(r) = r_m {
            reductions.0.push(r);
        }
        if let Some(r) = r_f {
            reductions.1.push(r);
        }
        row([
            seq_label(seq),
            fmt(&bws[0]),
            fmt(&bws[1]),
            fmt(&bws[2]),
            r_m.map_or("-".into(), |r| format!("{:.0}%", r * 100.0)),
            r_f.map_or("-".into(), |r| format!("{:.0}%", r * 100.0)),
        ]);
    }
    let avg = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "# average reduction: {:.0}% vs FlexAccel-M, {:.0}% vs FlexAccel (paper: 88%, 82%)",
        avg(&reductions.0) * 100.0,
        avg(&reductions.1) * 100.0
    );
}
