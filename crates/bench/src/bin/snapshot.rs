//! `snapshot` — the benchmark-trajectory harness.
//!
//! Times the two hot paths this repo optimizes — the blocked attention
//! kernels and the incremental parallel sweep engine — against their
//! naive baselines, and writes the results to a `BENCH_<tag>.json` file
//! at the repo root. One snapshot is committed per performance PR, so
//! the series of files records the performance trajectory of the
//! codebase over time.
//!
//! ```text
//! cargo run --release -p flat-bench --bin snapshot -- [--tag PR1] [--quick] [--out path]
//! ```
//!
//! Schema (`flat-bench-snapshot/v1`): a top-level object with the grid
//! configuration and an `entries` array; each entry carries `group`
//! (`kernel` or `sweep`), `name`, `config`, rep counts, `mean_ms` /
//! `min_ms` wall times, and `speedup_vs_baseline` (the baseline entry of
//! each group has speedup 1.0, computed min-over-min).

use flat_bench::args::Args;
use flat_bench::sweep::{buffer_sweep, buffer_sweep_serial};
use flat_kernels::{flat_attention, naive_attention, parallel_flat_attention, Mask, MultiHeadInput};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Snapshot {
    schema: String,
    tag: String,
    pool_threads: usize,
    entries: Vec<Entry>,
}

#[derive(Debug, Clone, Serialize)]
struct Entry {
    group: String,
    name: String,
    config: String,
    reps: u64,
    mean_ms: f64,
    min_ms: f64,
    speedup_vs_baseline: f64,
}

/// Times `f` over `reps` repetitions (after one untimed warm-up run),
/// keeping a result alive so the work is not optimized out.
fn time<T>(group: &str, name: &str, config: &str, reps: u64, mut f: impl FnMut() -> T) -> Entry {
    let warmup = f();
    drop(warmup);
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        drop(out);
        total += ms;
        min = min.min(ms);
    }
    let entry = Entry {
        group: group.to_owned(),
        name: name.to_owned(),
        config: config.to_owned(),
        reps,
        mean_ms: total / reps as f64,
        min_ms: min,
        speedup_vs_baseline: 1.0,
    };
    println!(
        "{:<8} {:<28} mean {:>9.3} ms   min {:>9.3} ms   ({} reps)",
        entry.group, entry.name, entry.mean_ms, entry.min_ms, reps
    );
    entry
}

/// Fills in `speedup_vs_baseline` for a group: baseline min over each
/// entry's min.
fn with_speedups(mut group: Vec<Entry>) -> Vec<Entry> {
    let base = group[0].min_ms;
    for e in &mut group {
        e.speedup_vs_baseline = base / e.min_ms;
    }
    group
}

fn kernel_entries(args: &Args, quick: bool) -> Vec<Entry> {
    // At 4K the baseline's full logit matrix (seq² × 4 B = 64 MiB) falls
    // out of the cache hierarchy, while FLAT's row tile stays resident —
    // the memory-traffic gap the paper targets, visible on one core.
    let (default_seq, reps) = if quick { (256, 2) } else { (4096, 3) };
    let seq = args.get_u64("seq", default_seq) as usize;
    let tile = args.get_u64("tile", 64) as usize;
    let (batch, heads, dk) = (1, 4, 64);
    let config = format!("batch={batch} heads={heads} seq={seq} dk={dk} f32");
    let input = MultiHeadInput::random(batch, heads, seq, seq, dk, 0xF1A7);
    let entries = vec![
        time("kernel", "naive_attention", &config, reps, || {
            naive_attention(&input, Mask::None)
        }),
        time("kernel", "flat_attention", &format!("{config} rows_per_tile={tile}"), reps, || {
            flat_attention(&input, tile, Mask::None)
        }),
        time(
            "kernel",
            "parallel_flat_attention",
            &format!("{config} rows_per_tile={tile}"),
            reps,
            || parallel_flat_attention(&input, tile, Mask::None, rayon::current_num_threads()),
        ),
    ];
    with_speedups(entries)
}

fn sweep_entries(quick: bool) -> Vec<Entry> {
    let reps = if quick { 1 } else { 2 };
    let platform = flat_bench::platform("edge");
    let model = flat_bench::model("bert");
    let seqs: Vec<u64> = if quick { vec![256] } else { vec![256, 512] };
    let sgs = flat_bench::sg_sweep(true);
    let config = format!("edge/bert seqs={:?} sg_points={}", seqs, sgs.len());
    let entries = vec![
        time("sweep", "buffer_sweep_serial", &config, reps, || {
            buffer_sweep_serial(&platform, &model, &seqs, &sgs)
        }),
        time("sweep", "buffer_sweep", &config, reps, || {
            buffer_sweep(&platform, &model, &seqs, &sgs)
        }),
    ];
    with_speedups(entries)
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let tag = args.get("tag", "PR1");
    let out_path = args.get("out", &format!("BENCH_{tag}.json"));

    let mut entries = kernel_entries(&args, quick);
    entries.extend(sweep_entries(quick));

    let snapshot = Snapshot {
        schema: "flat-bench-snapshot/v1".to_owned(),
        tag,
        pool_threads: rayon::current_num_threads(),
        entries,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    std::fs::write(&out_path, json + "\n").expect("write snapshot file");
    println!("wrote {out_path}");
}
