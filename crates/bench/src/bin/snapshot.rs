//! `snapshot` — the benchmark-trajectory harness.
//!
//! Times the hot paths this repo optimizes — the blocked attention
//! kernels, the incremental parallel sweep engine, and the serving decode
//! path — against their naive baselines, and writes the results to a
//! `BENCH_<tag>.json` file at the repo root. One snapshot is committed
//! per performance PR, so the series of files records the performance
//! trajectory of the codebase over time.
//!
//! ```text
//! cargo run --release -p flat-bench --bin snapshot -- [--tag PR2] [--quick] [--out path]
//! ```
//!
//! Schema (`flat-bench-snapshot/v1`): a top-level object with the grid
//! configuration and an `entries` array; each entry carries `group`
//! (`kernel`, `sweep`, `serve`, or `engine`), `name`, `config`, rep
//! counts, `mean_ms` / `min_ms` wall times, and `speedup_vs_baseline`
//! (the baseline entry of each group has speedup 1.0, computed
//! min-over-min).

use flat_bench::args::Args;
use flat_bench::sweep::{buffer_sweep, buffer_sweep_serial};
use flat_dist::{CollectiveAlgo, Link, Partition, Sweep, Topology};
use flat_kernels::{
    decode_attention, flat_attention, flat_attention_with, naive_attention,
    parallel_flat_attention, ComputePrecision, Mask, Mat, MultiHeadInput,
};
use flat_serve::{BlockTable, EngineConfig, KvPool, WorkloadSpec};
use flat_tensor::SoftmaxKind;
use flat_workloads::Task;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Snapshot {
    schema: String,
    tag: String,
    pool_threads: usize,
    cpu_model: String,
    entries: Vec<Entry>,
}

#[derive(Debug, Clone, Serialize)]
struct Entry {
    group: String,
    name: String,
    config: String,
    reps: u64,
    mean_ms: f64,
    min_ms: f64,
    speedup_vs_baseline: f64,
    /// Numeric deviation from the group's f32 reference output
    /// (max |diff| / max |reference|); `null` outside the precision group.
    max_rel_error: Option<f64>,
}

/// The CPU the wall times were measured on (`/proc/cpuinfo` model name;
/// `"unknown"` where that interface is absent).
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|s| s.trim().to_owned())
        })
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Normalized max-abs deviation of `test` from `reference`:
/// `max |t - r| / max |r|` over every element of every head.
fn max_rel_error(test: &[Mat], reference: &[Mat]) -> f64 {
    let mut max_diff = 0f64;
    let mut max_ref = 0f64;
    for (t, r) in test.iter().zip(reference) {
        for i in 0..r.rows() {
            for (tv, rv) in t.row(i).iter().zip(r.row(i)) {
                max_diff = max_diff.max(f64::from(tv - rv).abs());
                max_ref = max_ref.max(f64::from(*rv).abs());
            }
        }
    }
    if max_ref == 0.0 {
        0.0
    } else {
        max_diff / max_ref
    }
}

/// Times `f` over `reps` repetitions (after one untimed warm-up run),
/// keeping a result alive so the work is not optimized out.
fn time<T>(group: &str, name: &str, config: &str, reps: u64, mut f: impl FnMut() -> T) -> Entry {
    let warmup = f();
    drop(warmup);
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        drop(out);
        total += ms;
        min = min.min(ms);
    }
    let entry = Entry {
        group: group.to_owned(),
        name: name.to_owned(),
        config: config.to_owned(),
        reps,
        mean_ms: total / reps as f64,
        min_ms: min,
        speedup_vs_baseline: 1.0,
        max_rel_error: None,
    };
    println!(
        "{:<8} {:<28} mean {:>9.3} ms   min {:>9.3} ms   ({} reps)",
        entry.group, entry.name, entry.mean_ms, entry.min_ms, reps
    );
    entry
}

/// Fills in `speedup_vs_baseline` for a group: baseline min over each
/// entry's min.
fn with_speedups(mut group: Vec<Entry>) -> Vec<Entry> {
    let base = group[0].min_ms;
    for e in &mut group {
        e.speedup_vs_baseline = base / e.min_ms;
    }
    group
}

fn kernel_entries(args: &Args, quick: bool) -> Vec<Entry> {
    // At 4K the baseline's full logit matrix (seq² × 4 B = 64 MiB) falls
    // out of the cache hierarchy, while FLAT's row tile stays resident —
    // the memory-traffic gap the paper targets, visible on one core.
    let (default_seq, reps) = if quick { (256, 2) } else { (4096, 3) };
    let seq = args.get_u64("seq", default_seq) as usize;
    let tile = args.get_u64("tile", 64) as usize;
    let (batch, heads, dk) = (1, 4, 64);
    let config = format!("batch={batch} heads={heads} seq={seq} dk={dk} f32");
    let input = MultiHeadInput::random(batch, heads, seq, seq, dk, 0xF1A7);
    let entries = vec![
        time("kernel", "naive_attention", &config, reps, || {
            naive_attention(&input, Mask::None)
        }),
        time(
            "kernel",
            "flat_attention",
            &format!("{config} rows_per_tile={tile}"),
            reps,
            || flat_attention(&input, tile, Mask::None),
        ),
        time(
            "kernel",
            "parallel_flat_attention",
            &format!("{config} rows_per_tile={tile}"),
            reps,
            || parallel_flat_attention(&input, tile, Mask::None, rayon::current_num_threads()),
        ),
    ];
    with_speedups(entries)
}

/// The mixed-precision kernel family at the paper's 4K evaluation point:
/// packed bf16/f16 storage with widening loads and the exp/div-free
/// softmax variants, against the naive f32 baseline. Each reduced
/// precision entry also records its numeric deviation from that baseline
/// (`max_rel_error`), so the speedup and the accuracy cost are one
/// record.
fn precision_entries(args: &Args, quick: bool) -> Vec<Entry> {
    let (default_seq, reps) = if quick { (256, 2) } else { (4096, 3) };
    let seq = args.get_u64("seq", default_seq) as usize;
    let tile = args.get_u64("tile", 64) as usize;
    let (batch, heads, dk) = (1, 4, 64);
    let config = format!("batch={batch} heads={heads} seq={seq} dk={dk} rows_per_tile={tile}");
    let input = MultiHeadInput::random(batch, heads, seq, seq, dk, 0xF1A7);
    let reference = naive_attention(&input, Mask::None);
    let mut entries = vec![time("precision", "naive_f32", &config, reps, || {
        naive_attention(&input, Mask::None)
    })];
    for (name, precision, kind) in [
        ("flat_f32_exact", ComputePrecision::F32, SoftmaxKind::Exact),
        (
            "flat_bf16_flash_d",
            ComputePrecision::Bf16,
            SoftmaxKind::FlashD,
        ),
        (
            "flat_bf16_log_lut",
            ComputePrecision::Bf16,
            SoftmaxKind::LogLut,
        ),
        (
            "flat_f16_flash_d",
            ComputePrecision::F16,
            SoftmaxKind::FlashD,
        ),
        (
            "flat_int8_flash_d",
            ComputePrecision::Int8,
            SoftmaxKind::FlashD,
        ),
    ] {
        let mut e = time("precision", name, &config, reps, || {
            flat_attention_with(&input, tile, Mask::None, precision, kind)
        });
        let out = flat_attention_with(&input, tile, Mask::None, precision, kind);
        e.max_rel_error = Some(max_rel_error(&out, &reference));
        entries.push(e);
    }
    with_speedups(entries)
}

fn sweep_entries(quick: bool) -> Vec<Entry> {
    let reps = if quick { 1 } else { 2 };
    let platform = flat_bench::platform("edge");
    let model = flat_bench::model("bert");
    let seqs: Vec<u64> = if quick { vec![256] } else { vec![256, 512] };
    let sgs = flat_bench::sg_sweep(true);
    let config = format!("edge/bert seqs={:?} sg_points={}", seqs, sgs.len());
    let entries = vec![
        time("sweep", "buffer_sweep_serial", &config, reps, || {
            buffer_sweep_serial(&platform, &model, &seqs, &sgs)
        }),
        time("sweep", "buffer_sweep", &config, reps, || {
            buffer_sweep(&platform, &model, &seqs, &sgs)
        }),
    ];
    with_speedups(entries)
}

/// The serving decode path: generating `steps` tokens on top of a cached
/// prefix. The baseline recomputes the whole prefix's attention from
/// scratch every step (`O(L²)` per token — what a runtime without a KV
/// cache pays); the paged path appends one K/V row and folds it online
/// (`O(L)` per token), exactly what the `flat-serve` engine executes.
fn serve_entries(quick: bool) -> Vec<Entry> {
    let (ctx0, steps, dk, reps) = if quick {
        (64, 16, 64, 2)
    } else {
        (256, 64, 64, 3)
    };
    let total = ctx0 + steps;
    let input = MultiHeadInput::random(1, 1, total, total, dk, 0x5E17E);
    let scale = input.scale();
    let config = format!("context={ctx0} steps={steps} dk={dk} f32");
    let entries = vec![
        time("serve", "decode_recompute_naive", &config, reps, || {
            // No KV cache: every generated token re-runs full-prefix
            // causal attention and keeps only the last row.
            let mut last = Vec::new();
            for step in 0..steps {
                let len = ctx0 + step + 1;
                let mut prefix = MultiHeadInput::random(1, 1, 1, 1, dk, 0);
                prefix.seq_q = len;
                prefix.seq_kv = len;
                prefix.q[0] = input.q[0].row_slice(0, len);
                prefix.k[0] = input.k[0].row_slice(0, len);
                prefix.v[0] = input.v[0].row_slice(0, len);
                let out = naive_attention(&prefix, Mask::Causal);
                last = out[0].row(len - 1).to_vec();
            }
            last
        }),
        time("serve", "decode_attention_paged", &config, reps, || {
            // Paged KV cache: append one row per step, one online pass.
            let mut pool = KvPool::new(total.div_ceil(16), 16, dk);
            let mut table = BlockTable::new();
            for j in 0..ctx0 {
                assert!(pool.try_append(&mut table, input.k[0].row(j), input.v[0].row(j)));
            }
            let mut last = Vec::new();
            for step in 0..steps {
                let j = ctx0 + step;
                assert!(pool.try_append(&mut table, input.k[0].row(j), input.v[0].row(j)));
                last = decode_attention(input.q[0].row(j), pool.rows(&table), scale);
            }
            last
        }),
    ];
    with_speedups(entries)
}

/// End-to-end engine throughput: a full continuous-batching run (paged
/// cache, admission, mixed prefill/decode ticks). No baseline — the entry
/// tracks absolute wall time across PRs.
fn engine_entries(quick: bool) -> Vec<Entry> {
    let (requests, reps) = if quick { (16, 1) } else { (64, 2) };
    let accel = flat_bench::platform("cloud");
    let model = flat_bench::model("bert");
    let spec = WorkloadSpec {
        requests,
        arrival_rate_per_s: 256.0,
        prompt_mean: 128,
        output_mean: 16,
        slo_ms: None,
        ..WorkloadSpec::default()
    };
    let workload = spec.generate(0xF1A7).expect("benchmark workload is valid");
    let cfg = EngineConfig::for_platform(&accel, &model, 0xF1A7);
    let config = format!("cloud/bert requests={requests} prompt≈128 output≈16");
    with_speedups(vec![time("engine", "serve_engine", &config, reps, || {
        flat_serve::serve(&accel, &model, &workload, &cfg)
            .expect("benchmark workload must serve cleanly")
    })])
}

/// The distributed scaling trajectory: one attention layer of the
/// paper's 64K-token summarization preset, sharded head-parallel across
/// a chip sweep. Unlike the other groups these entries record *modeled*
/// layer latency (the `flat-dist` analytical cost, per-shard dataflow
/// re-searched at every cluster size), not wall time —
/// `speedup_vs_baseline` is therefore the modeled chip-scaling speedup
/// over the 1-chip point.
///
/// Two families: the PR 4 serial ring-algorithm entries on ring /
/// fully-connected fabrics (the pinned baseline), and per-chip
/// `joint-best` entries from the full topology × collective-algorithm
/// search under serial and overlapped tick pricing.
fn dist_entries(quick: bool) -> Vec<Entry> {
    let task = Task::Summarization;
    let seq = task.sequence_length();
    let accel = flat_bench::platform("cloud");
    let model = flat_bench::model("bert");
    let cfg = model.config(1, seq);
    let chips: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let topologies = [Topology::Ring, Topology::FullyConnected];
    let points = Sweep::new(accel.clone(), Link::cloud()).run(
        &cfg,
        chips,
        &topologies,
        &[Partition::HeadParallel],
    );
    // Baseline first: the ring series' 1-chip point (identical to the
    // fully-connected one — no fabric at one chip).
    let mut entries = Vec::new();
    let mut push = |name: String, config: String, total_ms: f64| {
        let entry = Entry {
            group: "dist".to_owned(),
            name,
            config,
            reps: 1,
            mean_ms: total_ms,
            min_ms: total_ms,
            speedup_vs_baseline: 1.0,
            max_rel_error: None,
        };
        println!(
            "{:<8} {:<28} mean {:>9.3} ms   min {:>9.3} ms   (modeled)",
            entry.group, entry.name, entry.mean_ms, entry.min_ms
        );
        entries.push(entry);
    };
    for topology in topologies {
        for p in flat_dist::series(
            &points,
            topology,
            CollectiveAlgo::Ring,
            Partition::HeadParallel,
        ) {
            push(
                format!("{topology}/head-parallel/{}chips", p.chips),
                format!(
                    "modeled cloud/bert task=summarization seq={seq} batch=1 dataflow={} fabric={:.0}%",
                    p.dataflow,
                    p.fabric_fraction * 100.0
                ),
                p.total_ms,
            );
        }
    }
    // The joint search: every topology × algorithm, overlap off and on.
    let joint = Sweep::new(accel, Link::cloud()).with_algos(CollectiveAlgo::all().to_vec());
    for (label, overlap) in [("serial", false), ("overlap", true)] {
        let pts = joint.clone().with_overlap(overlap).run(
            &cfg,
            chips,
            &Topology::all(),
            &[Partition::HeadParallel],
        );
        for &p in chips {
            let Some(w) = flat_dist::best_joint(&pts, p) else {
                continue;
            };
            push(
                format!("joint-best-{label}/head-parallel/{p}chips"),
                format!(
                    "modeled cloud/bert task=summarization seq={seq} batch=1 dataflow={} topology={} algo={} fabric={:.0}%",
                    w.dataflow,
                    w.topology,
                    w.algo,
                    w.fabric_fraction * 100.0
                ),
                w.total_ms,
            );
        }
    }
    with_speedups(entries)
}

/// The fleet-serving trajectory. Two claims, both *modeled* quantities
/// (like the `dist` group) rather than wall times:
///
/// * **Prefix-dedup capacity** — a shared-prefix workload (32
///   concurrent requests, 96 of 112 prompt tokens shared) served with
///   the copy-on-write pool off and on. The entries record *peak
///   physical KV blocks*, so `speedup_vs_baseline` on the dedup-on
///   entry is the per-request KV-occupancy reduction (≥ 2x when ≥ half
///   the resident tokens are shared).
/// * **Elastic goodput** — a sustained multi-tenant diurnal run with a
///   mid-run scale-up/scale-down; the entry records the modeled
///   makespan and carries the windowed goodput trajectory (with the
///   chip count per window) in its config string.
fn fleet_entries(quick: bool) -> Vec<Entry> {
    let accel = flat_bench::platform("cloud");
    let model = flat_bench::model("bert");
    // Prefix-dedup capacity pair.
    let mut spec = WorkloadSpec::from_task(Task::ShortNlp, 32, 4000.0);
    spec.prompt_mean = 112;
    spec.output_mean = 8;
    spec.prefix_template = Some(0xF1EE7);
    spec.prefix_tokens = 96;
    let workload = spec.generate(0xF1A7).expect("benchmark workload is valid");
    let mut entries = Vec::new();
    let mut push = |name: String, config: String, value: f64| {
        let entry = Entry {
            group: "fleet".to_owned(),
            name,
            config,
            reps: 1,
            mean_ms: value,
            min_ms: value,
            speedup_vs_baseline: 1.0,
            max_rel_error: None,
        };
        println!(
            "{:<8} {:<28} mean {:>9.3}      min {:>9.3}      (modeled)",
            entry.group, entry.name, entry.mean_ms, entry.min_ms
        );
        entries.push(entry);
    };
    for (name, dedup) in [
        ("kv_peak_blocks_dedup_off", false),
        ("kv_peak_blocks_dedup_on", true),
    ] {
        let mut cfg = EngineConfig::for_platform(&accel, &model, 0xF1A7);
        cfg.dedup = dedup;
        let m = flat_serve::serve(&accel, &model, &workload, &cfg)
            .expect("benchmark workload must serve cleanly");
        push(
            name.to_owned(),
            format!(
                "modeled peak physical KV blocks (not ms); cloud/bert 32 requests prompt≈112 \
                 prefix=96 output≈8 dedup_hits={} peak_logical={}",
                m.kv.dedup_hits, m.kv.peak_logical_blocks
            ),
            m.kv.peak_occupancy * m.kv.total_blocks as f64,
        );
    }
    // Elastic goodput trajectory.
    let requests = if quick { 96 } else { 512 };
    let mut fspec = flat_fleet::FleetSpec::sustained(requests);
    fspec.curve.base_rate_per_s = 800.0;
    fspec.curve.period_ms = 200.0;
    let fcfg = flat_fleet::FleetConfig {
        chips: 2,
        window_ms: 10.0,
        scale: vec![(20.0, 4), (120.0, 2)],
        ..flat_fleet::FleetConfig::default()
    };
    let m = flat_fleet::run_fleet(&accel, &model, &fspec, &fcfg, 0xF1A7)
        .expect("fleet benchmark must serve cleanly");
    let trajectory: Vec<String> = m
        .dist
        .serve
        .windows
        .iter()
        .map(|w| {
            format!(
                "({:.0}ms,{:.0}tok/s,{}ch)",
                w.end_ms, w.goodput_tokens_per_s, w.chips
            )
        })
        .collect();
    push(
        "elastic_goodput_makespan".to_owned(),
        format!(
            "modeled makespan ms; cloud/bert {} requests 3 tenants diurnal scale=2->4->2 \
             migrated_bytes={:.0} goodput_windows=[{}]",
            requests,
            m.dist.kv_migrated_bytes,
            trajectory.join(",")
        ),
        m.dist.serve.makespan_ms,
    );
    // Speedups only make sense within the dedup pair: the baseline is
    // the dedup-off peak, so the dedup-on entry's speedup is the
    // per-request KV-occupancy reduction. The makespan entry tracks an
    // absolute trajectory and keeps speedup 1.0.
    let trajectory_entry = entries.pop().expect("entry pushed above");
    let mut out = with_speedups(entries);
    out.push(trajectory_entry);
    out
}

/// The model-validation trajectory: the `flat-desim` event backend
/// cross-checking the closed-form cost model. Wall time records what the
/// cross-check itself costs next to the analytical pricing it validates;
/// `max_rel_error` reuses the deviation column for each configuration's
/// relative divergence — near zero on the uncontended config, large by
/// design on the contended one (one staging buffer; see EXPERIMENTS.md,
/// "Model validation").
fn validation_entries(quick: bool) -> Vec<Entry> {
    use flat_core::{CostModel, FusedDataflow, Granularity, LaExecution};
    use flat_sim::{agreement, simulate_la_event, EventOptions};
    let (seq, reps) = if quick { (512, 1) } else { (4096, 3) };
    let accel = flat_bench::platform("edge");
    let model = flat_bench::model("bert");
    let block = model.block(64, seq);
    let la = LaExecution::Fused(FusedDataflow::new(Granularity::Row(64)));
    let cm = CostModel::new(&accel);
    let config = format!("edge/bert seq={seq} dataflow=flat-r64");
    let mut entries = vec![time(
        "validation",
        "analytical_pricing",
        &config,
        reps,
        || cm.la_cost(&block, &la),
    )];
    for (name, buffers) in [("event_backend", 2u32), ("event_backend_contended", 1)] {
        let opts = EventOptions {
            buffers,
            ..Default::default()
        };
        let mut e = time(
            "validation",
            name,
            &format!("{config} buffers={buffers}"),
            reps,
            || simulate_la_event(&accel, &block, &la, opts).expect("wiring is sound"),
        );
        let a = agreement(&accel, &block, &la, opts).expect("wiring is sound");
        e.max_rel_error = Some(a.divergence.abs());
        entries.push(e);
    }
    with_speedups(entries)
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let tag = args.get("tag", "PR9");
    let out_path = args.get("out", &format!("BENCH_{tag}.json"));

    let mut entries = kernel_entries(&args, quick);
    entries.extend(precision_entries(&args, quick));
    entries.extend(sweep_entries(quick));
    entries.extend(serve_entries(quick));
    entries.extend(engine_entries(quick));
    entries.extend(dist_entries(quick));
    entries.extend(fleet_entries(quick));
    entries.extend(validation_entries(quick));

    let snapshot = Snapshot {
        schema: "flat-bench-snapshot/v1".to_owned(),
        tag,
        pool_threads: rayon::current_num_threads(),
        cpu_model: cpu_model(),
        entries,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    std::fs::write(&out_path, json + "\n").expect("write snapshot file");
    println!("wrote {out_path}");
}
