//! The §1 motivation, priced: for each long-sequence task the paper
//! names, what does the best sequential accelerator achieve, what does
//! ATTACC achieve, and how much buffer does FLAT's O(N) working set need?
//!
//! Run: `cargo run --release -p flat-bench --bin tasks -- [--platform cloud] [--model bert]`

use flat_bench::{args::Args, model, platform, row, seq_label, BATCH};
use flat_core::LaExecution;
use flat_dse::{Dse, Objective, SpaceKind};
use flat_workloads::Task;

fn main() {
    let args = Args::parse();
    let accel = platform(&args.get("platform", "cloud"));
    let m = model(&args.get("model", "bert"));

    println!("# Long-sequence tasks (§1) — {m} on {accel}, B={BATCH}");
    row([
        "task",
        "N",
        "Base-opt util",
        "FLAT-opt util",
        "speedup",
        "FLAT dataflow",
        "footprint",
    ]
    .map(String::from));
    for task in Task::all() {
        let seq = task.sequence_length();
        // Music processing at 1M tokens x batch 64 is astronomically large
        // but the analytical model prices it fine.
        let block = m.block(BATCH, seq);
        let dse = Dse::new(&accel, &block);
        let base = dse.best_la(SpaceKind::Sequential, Objective::MaxUtil);
        let flat = dse.best_la(SpaceKind::Full, Objective::MaxUtil);
        let label = match flat.la {
            LaExecution::Fused(f) => format!("FLAT-{}", f.granularity),
            LaExecution::Sequential { .. } => "sequential".to_owned(),
        };
        row([
            task.to_string(),
            seq_label(seq),
            format!("{:.3}", base.report.util()),
            format!("{:.3}", flat.report.util()),
            format!("{:.2}x", base.report.cycles / flat.report.cycles),
            label,
            flat.report.footprint.to_string(),
        ]);
    }
}
