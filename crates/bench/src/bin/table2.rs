//! Table 2: live-memory footprint per cross-operator granularity, both as
//! the symbolic Table 2 formulas (verified by flat-core's tests) and as
//! concrete numbers for the evaluation workloads.
//!
//! Run: `cargo run -p flat-bench --bin table2 [--seq N] [--rows R]`

use flat_bench::{args::Args, row, seq_label};
use flat_core::table2_row_elems;
use flat_tensor::Bytes;
use flat_workloads::AttentionConfig;

fn main() {
    let args = Args::parse();
    let rows = args.get_u64("rows", 64);
    println!("# Table 2 — live memory footprint by granularity (B=64, H=16, D=1024, 16-bit)");
    println!("# symbolic: M: 8BDN+BHN^2   B: 8DN+HN^2   H: 8Ndk+N^2   R: 4Rdk+4Ndk+RN");
    row([
        "N",
        "M-Gran",
        "B-Gran",
        "H-Gran",
        &format!("R-Gran (R={rows})"),
    ]
    .map(String::from));
    for seq in [512u64, 2048, 16_384, 65_536, 262_144] {
        let cfg = AttentionConfig::self_attention(64, 16, seq, 1024, 4096);
        let elems = table2_row_elems(&cfg, rows);
        let cells: Vec<String> = std::iter::once(seq_label(seq))
            .chain(elems.iter().map(|&e| Bytes::new(e * 2).to_string()))
            .collect();
        row(cells);
    }
    println!();
    println!("# R-Gran grows O(N) while every other granularity grows O(N^2).");
}
