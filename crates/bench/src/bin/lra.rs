//! Long Range Arena (cited by the paper as *the* long-sequence benchmark
//! [71]): for each LRA task's sequence length, the best sequential and
//! FLAT dataflows on the edge part — which tasks a small accelerator can
//! actually serve.
//!
//! Run: `cargo run --release -p flat-bench --bin lra -- [--platform edge] [--model bert]`

use flat_bench::{args::Args, model, platform, row, seq_label, BATCH};
use flat_dse::{Dse, Objective, SpaceKind};
use flat_workloads::LraTask;

fn main() {
    let args = Args::parse();
    let accel = platform(&args.get("platform", "edge"));
    let m = model(&args.get("model", "bert"));

    println!("# Long Range Arena task lengths — {m} on {accel}, B={BATCH}");
    row([
        "task",
        "N",
        "Base-opt util",
        "FLAT-opt util",
        "speedup",
        "ms/batch (FLAT)",
    ]
    .map(String::from));
    for task in LraTask::all() {
        let seq = task.sequence_length();
        let block = m.block(BATCH, seq);
        let dse = Dse::new(&accel, &block);
        let base = dse.best_la(SpaceKind::Sequential, Objective::MaxUtil);
        let flat = dse.best_la(SpaceKind::Full, Objective::MaxUtil);
        row([
            task.to_string(),
            seq_label(seq),
            format!("{:.3}", base.report.util()),
            format!("{:.3}", flat.report.util()),
            format!("{:.2}x", base.report.cycles / flat.report.cycles),
            format!("{:.2}", accel.cycles_to_seconds(flat.report.cycles) * 1e3),
        ]);
    }
    println!();
    println!("# Path-X (16K) is the task most efficient-transformer entrants cannot run;");
    println!("# with FLAT, exact attention at 16K stays viable on a 512 KiB-buffer part.");
}
