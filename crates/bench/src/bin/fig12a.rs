//! Figure 12(a): model-level speedup and energy-consumption ratio of
//! ATTACC over FlexAccel-M and FlexAccel, for all five models, five
//! sequence lengths, and both platforms.
//!
//! Run: `cargo run --release -p flat-bench --bin fig12a -- [--quick]
//!       [--platform edge|cloud|both]`

use flat_bench::{args::Args, fig12_seqs, platform, row, seq_label, BATCH};
use flat_dse::{AccelClass, Objective};
use flat_workloads::Model;

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let which = args.get("platform", "both");
    let platforms: Vec<&str> = match which.as_str() {
        "both" => vec!["edge", "cloud"],
        p => vec![match p {
            "edge" => "edge",
            "cloud" => "cloud",
            other => panic!("unknown platform {other}"),
        }],
    };
    let seqs = fig12_seqs(quick);

    for pname in platforms {
        let accel = platform(pname);
        println!("# Figure 12(a) — {pname}: ATTACC vs FlexAccel-M / FlexAccel (B={BATCH})");
        row([
            "model",
            "seq",
            "speedup_vs_FlexM",
            "speedup_vs_Flex",
            "energy_vs_FlexM",
            "energy_vs_Flex",
        ]
        .map(String::from));
        let mut speedups = (Vec::new(), Vec::new());
        let mut energies = (Vec::new(), Vec::new());
        for model in Model::suite() {
            for &seq in &seqs {
                let flexm =
                    AccelClass::FlexAccelM.evaluate(&accel, &model, BATCH, seq, Objective::MaxUtil);
                let flex =
                    AccelClass::FlexAccel.evaluate(&accel, &model, BATCH, seq, Objective::MaxUtil);
                let attacc =
                    AccelClass::AttAcc.evaluate(&accel, &model, BATCH, seq, Objective::MaxUtil);
                let s_m = attacc.speedup_over(&flexm);
                let s_f = attacc.speedup_over(&flex);
                let e_m = attacc.energy_ratio_vs(&flexm);
                let e_f = attacc.energy_ratio_vs(&flex);
                speedups.0.push(s_m);
                speedups.1.push(s_f);
                energies.0.push(e_m);
                energies.1.push(e_f);
                row([
                    model.to_string(),
                    seq_label(seq),
                    format!("{s_m:.2}"),
                    format!("{s_f:.2}"),
                    format!("{e_m:.2}"),
                    format!("{e_f:.2}"),
                ]);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "# {pname} averages: speedup {:.2} / {:.2}, energy ratio {:.2} / {:.2}",
            avg(&speedups.0),
            avg(&speedups.1),
            avg(&energies.0),
            avg(&energies.1)
        );
        println!(
            "# paper ({pname}): speedup {} , energy ratio {}",
            if pname == "edge" {
                "2.48 / 1.94 (avg 2.40/1.75)"
            } else {
                "2.57 / 1.65"
            },
            if pname == "edge" {
                "0.40 / 0.51"
            } else {
                "0.31 / 0.58"
            }
        );
        println!();
    }
}
