//! Tiny `--key value` / `--flag` argument parser for the experiment
//! binaries (kept dependency-free on purpose).

use std::collections::HashMap;

/// Parsed command-line arguments.
///
/// # Example
///
/// ```
/// use flat_bench::args::Args;
///
/// let args = Args::parse_from(["--platform", "cloud", "--quick"].iter().map(|s| s.to_string()));
/// assert_eq!(args.get("platform", "edge"), "cloud");
/// assert!(args.flag("quick"));
/// assert_eq!(args.get("model", "bert"), "bert");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments (skipping `argv[0]`).
    #[must_use]
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of arguments.
    #[must_use]
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                continue;
            };
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = iter.next().expect("peeked");
                    out.values.insert(key.to_owned(), v);
                }
                _ => out.flags.push(key.to_owned()),
            }
        }
        out
    }

    /// Value of `--key`, or `default`.
    #[must_use]
    pub fn get(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }

    /// Integer value of `--key`, or `default`.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but not an integer.
    #[must_use]
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v}"))
            })
            .unwrap_or(default)
    }

    /// Whether `--key` was given as a bare flag.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse_from(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn values_and_flags_mix() {
        let a = parse(&["--seq", "4096", "--quick", "--model", "xlm"]);
        assert_eq!(a.get_u64("seq", 512), 4096);
        assert!(a.flag("quick"));
        assert_eq!(a.get("model", "bert"), "xlm");
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = parse(&[]);
        assert_eq!(a.get("platform", "edge"), "edge");
        assert_eq!(a.get_u64("seq", 512), 512);
    }

    #[test]
    fn trailing_flag_is_a_flag() {
        let a = parse(&["--quick"]);
        assert!(a.flag("quick"));
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn non_integer_value_panics() {
        let a = parse(&["--seq", "lots"]);
        let _ = a.get_u64("seq", 1);
    }
}
