//! The Figure 8/9 sweep engine: utilization and energy of every dataflow
//! in the comparison menu, across on-chip buffer sizes and sequence
//! lengths, at all three analysis scopes.

use flat_arch::Accelerator;
use flat_core::{BlockDataflow, CostModel, Granularity};
use flat_dse::{Dse, Objective, SpaceKind};
use flat_tensor::Bytes;
use flat_workloads::{Model, Scope};
use serde::{Deserialize, Serialize};

/// One point of a Figure 8/9 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRecord {
    /// Analysis level (L-A / Block / Model).
    pub scope: String,
    /// Sequence length.
    pub seq: u64,
    /// On-chip buffer capacity swept to.
    pub sg: Bytes,
    /// Dataflow label (`Base`, `Base-M`, `FLAT-R64`, `FLAT-opt`, …).
    pub dataflow: String,
    /// Compute-resource utilization (§6.1).
    pub util: f64,
    /// Energy in picojoules at this scope.
    pub energy_pj: f64,
    /// Live memory footprint the dataflow wanted.
    pub footprint: Bytes,
}

/// A menu entry: either a fixed dataflow or a DSE-optimized one.
#[derive(Debug, Clone)]
enum Entry {
    Fixed(BlockDataflow),
    Opt(SpaceKind),
}

/// The comparison menu of Figure 8: Base, Base-X, Base-opt, FLAT-X,
/// FLAT-Rx, FLAT-opt. Row counts follow the paper's note that the cloud
/// platform uses larger Rx (its array is 64× bigger).
fn menu(platform: &Accelerator) -> Vec<(String, Entry)> {
    let rxs: [u64; 2] = if platform.pe.count() >= 65536 { [256, 1024] } else { [32, 128] };
    let mut m: Vec<(String, Entry)> = vec![
        ("Base".into(), Entry::Fixed(BlockDataflow::base())),
        (
            "Base-M".into(),
            Entry::Fixed(BlockDataflow::base_staged(Granularity::BatchMultiHead)),
        ),
        ("Base-B".into(), Entry::Fixed(BlockDataflow::base_staged(Granularity::Batch))),
        ("Base-H".into(), Entry::Fixed(BlockDataflow::base_staged(Granularity::Head))),
        ("Base-opt".into(), Entry::Opt(SpaceKind::Sequential)),
        ("FLAT-M".into(), Entry::Fixed(BlockDataflow::flat(Granularity::BatchMultiHead))),
        ("FLAT-B".into(), Entry::Fixed(BlockDataflow::flat(Granularity::Batch))),
        ("FLAT-H".into(), Entry::Fixed(BlockDataflow::flat(Granularity::Head))),
    ];
    for r in rxs {
        m.push((format!("FLAT-R{r}"), Entry::Fixed(BlockDataflow::flat(Granularity::Row(r)))));
    }
    m.push(("FLAT-opt".into(), Entry::Opt(SpaceKind::Full)));
    m
}

/// Runs the full sweep for one platform and model.
///
/// For every `(sequence, buffer)` grid point and menu entry, the engine
/// prices the L-A pair and the whole block, then emits one record per
/// analysis scope (Model scope scales energy by the block count;
/// utilization is invariant under block repetition).
#[must_use]
pub fn buffer_sweep(
    platform: &Accelerator,
    model: &Model,
    seqs: &[u64],
    sgs: &[Bytes],
) -> Vec<SweepRecord> {
    let mut records = Vec::new();
    for &seq in seqs {
        let block = model.block(crate::BATCH, seq);
        for &sg in sgs {
            let accel = platform.with_sg(sg);
            let cm = CostModel::new(&accel);
            let dse = Dse::new(&accel, &block);
            for (label, entry) in menu(platform) {
                let df = match entry {
                    Entry::Fixed(df) => df,
                    Entry::Opt(space) => {
                        let la = dse.best_la(space, Objective::MaxUtil);
                        let (others, _) = dse.best_others(Objective::MaxUtil);
                        BlockDataflow { la: la.la, others }
                    }
                };
                let la = cm.la_cost(&block, &df.la);
                let blk = cm.block_cost(&block, &df).total();
                let blocks = model.blocks() as f64;
                for (scope, report, energy_scale) in [
                    (Scope::LogitAttend, la, 1.0),
                    (Scope::Block, blk, 1.0),
                    (Scope::Model, blk, blocks),
                ] {
                    records.push(SweepRecord {
                        scope: scope.to_string(),
                        seq,
                        sg,
                        dataflow: label.clone(),
                        util: report.util(),
                        energy_pj: report.energy.total_pj() * energy_scale,
                        footprint: report.footprint,
                    });
                }
            }
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_emits_all_scopes_and_entries() {
        let accel = Accelerator::edge();
        let recs = buffer_sweep(
            &accel,
            &Model::bert(),
            &[512],
            &[Bytes::from_kib(512), Bytes::from_mib(64)],
        );
        // 11 menu entries x 2 buffers x 3 scopes.
        assert_eq!(recs.len(), 11 * 2 * 3);
        assert!(recs.iter().any(|r| r.dataflow == "FLAT-opt"));
        assert!(recs.iter().all(|r| r.util > 0.0 && r.util <= 1.0));
    }

    /// The Figure 8 headline at one grid point: with the real edge buffer,
    /// FLAT-opt's L-A utilization beats Base-opt's.
    #[test]
    fn flat_opt_beats_base_opt_at_edge_512() {
        let accel = Accelerator::edge();
        let recs =
            buffer_sweep(&accel, &Model::bert(), &[512], &[Bytes::from_kib(512)]);
        let get = |name: &str| {
            recs.iter()
                .find(|r| r.dataflow == name && r.scope == "L-A")
                .map(|r| r.util)
                .unwrap()
        };
        assert!(get("FLAT-opt") > get("Base-opt"));
        assert!(get("FLAT-opt") > 0.7, "FLAT-opt = {}", get("FLAT-opt"));
    }
}
