//! The Figure 8/9 sweep engine: utilization and energy of every dataflow
//! in the comparison menu, across on-chip buffer sizes and sequence
//! lengths, at all three analysis scopes.

use flat_arch::Accelerator;
use flat_core::{BlockDataflow, CostModel, CostReport, Granularity, LaExecution};
use flat_dse::{la_points, Dse, Objective, SpaceKind};
use flat_tensor::Bytes;
use flat_workloads::{AttentionBlock, Model, Scope};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One point of a Figure 8/9 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRecord {
    /// Analysis level (L-A / Block / Model).
    pub scope: String,
    /// Sequence length.
    pub seq: u64,
    /// On-chip buffer capacity swept to.
    pub sg: Bytes,
    /// Dataflow label (`Base`, `Base-M`, `FLAT-R64`, `FLAT-opt`, …).
    pub dataflow: String,
    /// Compute-resource utilization (§6.1).
    pub util: f64,
    /// Energy in picojoules at this scope.
    pub energy_pj: f64,
    /// Live memory footprint the dataflow wanted.
    pub footprint: Bytes,
}

/// A menu entry: either a fixed dataflow or a DSE-optimized one.
#[derive(Debug, Clone, Copy)]
enum Entry {
    Fixed(BlockDataflow),
    Opt(SpaceKind),
}

/// The comparison menu of Figure 8: Base, Base-X, Base-opt, FLAT-X,
/// FLAT-Rx, FLAT-opt. Row counts follow the paper's note that the cloud
/// platform uses larger Rx (its array is 64× bigger).
fn menu(platform: &Accelerator) -> Vec<(String, Entry)> {
    let rxs: [u64; 2] = if platform.pe.count() >= 65536 {
        [256, 1024]
    } else {
        [32, 128]
    };
    let mut m: Vec<(String, Entry)> = vec![
        ("Base".into(), Entry::Fixed(BlockDataflow::base())),
        (
            "Base-M".into(),
            Entry::Fixed(BlockDataflow::base_staged(Granularity::BatchMultiHead)),
        ),
        (
            "Base-B".into(),
            Entry::Fixed(BlockDataflow::base_staged(Granularity::Batch)),
        ),
        (
            "Base-H".into(),
            Entry::Fixed(BlockDataflow::base_staged(Granularity::Head)),
        ),
        ("Base-opt".into(), Entry::Opt(SpaceKind::Sequential)),
        (
            "FLAT-M".into(),
            Entry::Fixed(BlockDataflow::flat(Granularity::BatchMultiHead)),
        ),
        (
            "FLAT-B".into(),
            Entry::Fixed(BlockDataflow::flat(Granularity::Batch)),
        ),
        (
            "FLAT-H".into(),
            Entry::Fixed(BlockDataflow::flat(Granularity::Head)),
        ),
    ];
    for r in rxs {
        m.push((
            format!("FLAT-R{r}"),
            Entry::Fixed(BlockDataflow::flat(Granularity::Row(r))),
        ));
    }
    m.push(("FLAT-opt".into(), Entry::Opt(SpaceKind::Full)));
    m
}

/// The DSE candidate lists one sequence length needs, enumerated once
/// and reused at every buffer size: `la_points(space, seq)` depends on
/// the sequence, not on `sg`, so re-enumerating per grid point (as the
/// naive nesting does) is pure duplicated work.
struct SeqCandidates {
    block: AttentionBlock,
    sequential: Vec<LaExecution>,
    full: Vec<LaExecution>,
}

/// Runs the full sweep for one platform and model, with the
/// `(sequence, buffer)` grid points priced in parallel on the shared
/// pool.
///
/// For every grid point and menu entry, the engine prices the L-A pair
/// and the whole block, then emits one record per analysis scope (Model
/// scope scales energy by the block count; utilization is invariant
/// under block repetition).
///
/// Incremental structure, relative to the naive triple loop that
/// [`buffer_sweep_serial`] keeps as the reference:
///
/// * the menu is built once, not per grid point;
/// * DSE candidate lists are enumerated once per sequence length and
///   shared across buffer sizes (`SeqCandidates`);
/// * `-opt` entries reuse the [`CostReport`] the search already computed
///   for the winner instead of re-pricing it;
/// * the non-fused-operator search, identical for both `-opt` entries at
///   a grid point, runs once and is shared.
///
/// The emitted records are element-for-element identical to the serial
/// reference — same values, same order (pinned by a test).
#[must_use]
pub fn buffer_sweep(
    platform: &Accelerator,
    model: &Model,
    seqs: &[u64],
    sgs: &[Bytes],
) -> Vec<SweepRecord> {
    let menu = menu(platform);
    let candidates: Vec<SeqCandidates> = seqs
        .iter()
        .map(|&seq| {
            let block = model.block(crate::BATCH, seq);
            let seq_q = block.config().seq_q;
            SeqCandidates {
                block,
                sequential: la_points(SpaceKind::Sequential, seq_q),
                full: la_points(SpaceKind::Full, seq_q),
            }
        })
        .collect();
    let grid: Vec<(usize, Bytes)> = (0..seqs.len())
        .flat_map(|si| sgs.iter().map(move |&sg| (si, sg)))
        .collect();
    grid.par_iter()
        .map(|&(si, sg)| sweep_point(platform, model, seqs[si], &candidates[si], sg, &menu))
        .collect::<Vec<Vec<SweepRecord>>>()
        .into_iter()
        .flatten()
        .collect()
}

/// Prices every menu entry at one `(sequence, buffer)` grid point.
fn sweep_point(
    platform: &Accelerator,
    model: &Model,
    seq: u64,
    cand: &SeqCandidates,
    sg: Bytes,
    menu: &[(String, Entry)],
) -> Vec<SweepRecord> {
    let accel = platform.with_sg(sg);
    let cm = CostModel::new(&accel);
    let block = &cand.block;
    let dse = Dse::new(&accel, block);
    // The non-fused-operator search does not depend on the L-A space, so
    // the first -opt entry computes it and the second reuses it.
    let mut shared_others = None;
    let blocks = model.blocks() as f64;
    let mut records = Vec::with_capacity(menu.len() * 3);
    for (label, entry) in menu {
        let (df, la_report): (BlockDataflow, CostReport) = match *entry {
            Entry::Fixed(df) => (df, cm.la_cost(block, &df.la)),
            Entry::Opt(space) => {
                let fresh;
                let points: &[LaExecution] = match space {
                    SpaceKind::Sequential => &cand.sequential,
                    SpaceKind::Full => &cand.full,
                    other => {
                        fresh = la_points(other, block.config().seq_q);
                        &fresh
                    }
                };
                let best = dse.best_la_among(points, Objective::MaxUtil);
                let others =
                    *shared_others.get_or_insert_with(|| dse.best_others(Objective::MaxUtil).0);
                // The search already priced the winner: reuse its report.
                (
                    BlockDataflow {
                        la: best.la,
                        others,
                    },
                    best.report,
                )
            }
        };
        let blk = cm.block_cost(block, &df).total();
        for (scope, report, energy_scale) in [
            (Scope::LogitAttend, la_report, 1.0),
            (Scope::Block, blk, 1.0),
            (Scope::Model, blk, blocks),
        ] {
            records.push(SweepRecord {
                scope: scope.to_string(),
                seq,
                sg,
                dataflow: label.clone(),
                util: report.util(),
                energy_pj: report.energy.total_pj() * energy_scale,
                footprint: report.footprint,
            });
        }
    }
    records
}

/// The straightforward serial sweep: naive triple loop, menu rebuilt per
/// grid point, every `-opt` winner re-priced from scratch. Kept as the
/// reference implementation that [`buffer_sweep`] must reproduce
/// record-for-record (and as the baseline the benchmark snapshot times
/// the incremental engine against).
#[must_use]
pub fn buffer_sweep_serial(
    platform: &Accelerator,
    model: &Model,
    seqs: &[u64],
    sgs: &[Bytes],
) -> Vec<SweepRecord> {
    let mut records = Vec::new();
    for &seq in seqs {
        let block = model.block(crate::BATCH, seq);
        for &sg in sgs {
            let accel = platform.with_sg(sg);
            let cm = CostModel::new(&accel);
            let dse = Dse::new(&accel, &block);
            for (label, entry) in menu(platform) {
                let df = match entry {
                    Entry::Fixed(df) => df,
                    Entry::Opt(space) => {
                        let la = dse.best_la(space, Objective::MaxUtil);
                        let (others, _) = dse.best_others(Objective::MaxUtil);
                        BlockDataflow { la: la.la, others }
                    }
                };
                let la = cm.la_cost(&block, &df.la);
                let blk = cm.block_cost(&block, &df).total();
                let blocks = model.blocks() as f64;
                for (scope, report, energy_scale) in [
                    (Scope::LogitAttend, la, 1.0),
                    (Scope::Block, blk, 1.0),
                    (Scope::Model, blk, blocks),
                ] {
                    records.push(SweepRecord {
                        scope: scope.to_string(),
                        seq,
                        sg,
                        dataflow: label.clone(),
                        util: report.util(),
                        energy_pj: report.energy.total_pj() * energy_scale,
                        footprint: report.footprint,
                    });
                }
            }
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_emits_all_scopes_and_entries() {
        let accel = Accelerator::edge();
        let recs = buffer_sweep(
            &accel,
            &Model::bert(),
            &[512],
            &[Bytes::from_kib(512), Bytes::from_mib(64)],
        );
        // 11 menu entries x 2 buffers x 3 scopes.
        assert_eq!(recs.len(), 11 * 2 * 3);
        assert!(recs.iter().any(|r| r.dataflow == "FLAT-opt"));
        assert!(recs.iter().all(|r| r.util > 0.0 && r.util <= 1.0));
    }

    /// The incremental parallel engine must be observationally identical
    /// to the naive serial reference: same records, same values (bit-for-
    /// bit — every reused result is the same deterministic computation
    /// the reference redoes), same order.
    #[test]
    fn parallel_sweep_identical_to_serial_reference() {
        let accel = Accelerator::edge();
        let model = Model::bert();
        let seqs = [256u64, 512];
        let sgs = [
            Bytes::from_kib(256),
            Bytes::from_kib(512),
            Bytes::from_mib(64),
        ];
        let fast = buffer_sweep(&accel, &model, &seqs, &sgs);
        let reference = buffer_sweep_serial(&accel, &model, &seqs, &sgs);
        assert_eq!(fast.len(), reference.len());
        for (i, (f, r)) in fast.iter().zip(&reference).enumerate() {
            assert_eq!(f, r, "record {i} diverged");
        }
    }

    /// The Figure 8 headline at one grid point: with the real edge buffer,
    /// FLAT-opt's L-A utilization beats Base-opt's.
    #[test]
    fn flat_opt_beats_base_opt_at_edge_512() {
        let accel = Accelerator::edge();
        let recs = buffer_sweep(&accel, &Model::bert(), &[512], &[Bytes::from_kib(512)]);
        let get = |name: &str| {
            recs.iter()
                .find(|r| r.dataflow == name && r.scope == "L-A")
                .map(|r| r.util)
                .unwrap()
        };
        assert!(get("FLAT-opt") > get("Base-opt"));
        assert!(get("FLAT-opt") > 0.7, "FLAT-opt = {}", get("FLAT-opt"));
    }
}
