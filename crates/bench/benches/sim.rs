//! Criterion benchmarks of the discrete-event simulator: cost per
//! simulated workload, fused vs sequential, and block-level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flat_arch::Accelerator;
use flat_core::{BlockDataflow, FusedDataflow, Granularity};
use flat_sim::{simulate_block, simulate_fused, simulate_sequential, SimOptions};
use flat_workloads::Model;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let accel = Accelerator::edge();
    let mut group = c.benchmark_group("sim");
    group.sample_size(20);
    for seq in [512u64, 4096] {
        let block = Model::bert().block(64, seq);
        let df = FusedDataflow::new(Granularity::Row(64));
        group.bench_with_input(BenchmarkId::new("fused", seq), &block, |b, blk| {
            b.iter(|| black_box(simulate_fused(&accel, blk, &df, SimOptions::default())));
        });
        group.bench_with_input(BenchmarkId::new("sequential", seq), &block, |b, blk| {
            b.iter(|| black_box(simulate_sequential(&accel, blk, SimOptions::default())));
        });
    }
    let block = Model::bert().block(64, 512);
    let df = BlockDataflow::flat(Granularity::Row(64));
    group.bench_function("block/edge-bert-512", |b| {
        b.iter(|| black_box(simulate_block(&accel, &block, &df, SimOptions::default())));
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
