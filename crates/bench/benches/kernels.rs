//! Criterion benchmarks of the numerical kernels: naive vs FLAT-fused vs
//! streaming attention. The fused kernel's win on a CPU is cache locality
//! (the [R, N] slice stays hot), mirroring the scratchpad story.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flat_kernels::{
    flat_attention, flat_attention_with, naive_attention, parallel_flat_attention,
    streaming_attention, ComputePrecision, Mask, MultiHeadInput,
};
use flat_tensor::SoftmaxKind;
use std::hint::black_box;

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention");
    for seq in [128usize, 512] {
        let input = MultiHeadInput::random(1, 4, seq, seq, 64, 42);
        let flops = (2 * 2 * 4 * seq * seq * 64) as u64;
        group.throughput(Throughput::Elements(flops));
        group.bench_with_input(BenchmarkId::new("naive", seq), &input, |b, inp| {
            b.iter(|| black_box(naive_attention(inp, Mask::None)));
        });
        group.bench_with_input(BenchmarkId::new("flat-R16", seq), &input, |b, inp| {
            b.iter(|| black_box(flat_attention(inp, 16, Mask::None)));
        });
        group.bench_with_input(
            BenchmarkId::new("streaming-16x64", seq),
            &input,
            |b, inp| {
                b.iter(|| black_box(streaming_attention(inp, 16, 64, Mask::None)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("flat-R16-4threads", seq),
            &input,
            |b, inp| {
                b.iter(|| black_box(parallel_flat_attention(inp, 16, Mask::None, 4)));
            },
        );
    }
    group.finish();
}

/// The mixed-precision kernel family: packed 16-bit / int8 storage with
/// the exp/div-free softmax variants, against the f32 exact reference.
fn bench_precision(c: &mut Criterion) {
    let mut group = c.benchmark_group("precision");
    for seq in [128usize, 512] {
        let input = MultiHeadInput::random(1, 4, seq, seq, 64, 42);
        let flops = (2 * 2 * 4 * seq * seq * 64) as u64;
        group.throughput(Throughput::Elements(flops));
        for (label, precision, kind) in [
            ("f32-exact", ComputePrecision::F32, SoftmaxKind::Exact),
            ("bf16-flash-d", ComputePrecision::Bf16, SoftmaxKind::FlashD),
            ("bf16-log-lut", ComputePrecision::Bf16, SoftmaxKind::LogLut),
            ("f16-flash-d", ComputePrecision::F16, SoftmaxKind::FlashD),
            ("int8-flash-d", ComputePrecision::Int8, SoftmaxKind::FlashD),
        ] {
            group.bench_with_input(BenchmarkId::new(label, seq), &input, |b, inp| {
                b.iter(|| black_box(flat_attention_with(inp, 16, Mask::None, precision, kind)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_attention, bench_precision);
criterion_main!(benches);
