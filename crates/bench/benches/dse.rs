//! Criterion benchmark of the full design-space exploration — the paper's
//! "exhaustive search" (§5.3.3) priced end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use flat_arch::Accelerator;
use flat_dse::{Dse, Objective, SpaceKind};
use flat_workloads::Model;
use std::hint::black_box;

fn bench_dse(c: &mut Criterion) {
    let accel = Accelerator::edge();
    let block = Model::bert().block(64, 512);
    let mut group = c.benchmark_group("dse");
    group.sample_size(10);
    group.bench_function("base-opt/edge-bert-512", |b| {
        let dse = Dse::new(&accel, &block);
        b.iter(|| black_box(dse.best_la(SpaceKind::Sequential, Objective::MaxUtil)));
    });
    group.bench_function("flat-opt/edge-bert-512", |b| {
        let dse = Dse::new(&accel, &block);
        b.iter(|| black_box(dse.best_la(SpaceKind::Full, Objective::MaxUtil)));
    });
    group.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
