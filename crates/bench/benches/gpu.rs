//! Criterion benchmarks of the GPU mapping evaluators (they are
//! closed-form, so this guards against accidental slowdowns in sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use flat_gpu::{Gpu, GpuAttention};
use flat_workloads::Model;
use std::hint::black_box;

fn bench_gpu(c: &mut Criterion) {
    let gpu = Gpu::a100_like();
    let cfg = Model::bert().config(64, 16_384);
    c.bench_function("gpu/fused_best", |b| {
        b.iter(|| black_box(GpuAttention::fused_best(&gpu, &cfg)));
    });
    c.bench_function("gpu/unfused", |b| {
        b.iter(|| black_box(GpuAttention::unfused(&gpu, &cfg)));
    });
}

criterion_group!(benches, bench_gpu);
criterion_main!(benches);
