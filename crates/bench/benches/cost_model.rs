//! Criterion benchmarks of the analytical cost model itself: how fast one
//! dataflow evaluation is, since the DSE (and every figure sweep) is built
//! from thousands of them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flat_arch::Accelerator;
use flat_core::{BlockDataflow, CostModel, Granularity};
use flat_workloads::Model;
use std::hint::black_box;

fn bench_la_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("la_cost");
    for (name, accel, seq) in [
        ("edge-512", Accelerator::edge(), 512u64),
        ("cloud-64K", Accelerator::cloud(), 65_536),
    ] {
        let block = Model::bert().block(64, seq);
        let cm = CostModel::new(&accel);
        let base = BlockDataflow::base();
        let flat = BlockDataflow::flat(Granularity::Row(64));
        group.bench_with_input(BenchmarkId::new("sequential", name), &block, |b, blk| {
            b.iter(|| black_box(cm.la_cost(blk, &base.la)));
        });
        group.bench_with_input(BenchmarkId::new("fused", name), &block, |b, blk| {
            b.iter(|| black_box(cm.la_cost(blk, &flat.la)));
        });
    }
    group.finish();
}

fn bench_block_cost(c: &mut Criterion) {
    let accel = Accelerator::edge();
    let block = Model::bert().block(64, 4096);
    let cm = CostModel::new(&accel);
    let df = BlockDataflow::flat(Granularity::Row(64));
    c.bench_function("block_cost/edge-bert-4K", |b| {
        b.iter(|| black_box(cm.block_cost(&block, &df)));
    });
}

criterion_group!(benches, bench_la_cost, bench_block_cost);
criterion_main!(benches);
