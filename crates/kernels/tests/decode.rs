//! Property tests for the decode-step kernel: a serving decode step must
//! be numerically the same attention the batched kernels compute.
//!
//! The prefix lengths deliberately straddle the paged-cache block sizes
//! `flat-serve` uses (rows are yielded in chunks of `block` tokens), so
//! the equivalence holds regardless of how the KV rows are grouped in
//! memory — the property the paged cache relies on.

use flat_kernels::{decode_attention, naive_attention, streaming_attention, Mask, MultiHeadInput};
use proptest::prelude::*;

/// Yields the first `len` K/V rows of group 0 in `block`-sized chunks,
/// mimicking a paged KV-cache walk.
fn paged_rows(
    input: &MultiHeadInput,
    len: usize,
    block: usize,
) -> impl Iterator<Item = (&[f32], &[f32])> {
    (0..len).step_by(block).flat_map(move |lo| {
        (lo..(lo + block).min(len)).map(|j| (input.k[0].row(j), input.v[0].row(j)))
    })
}

fn dims() -> impl Strategy<Value = (usize, usize, u64)> {
    // (seq, dk, seed): sequence lengths past one and two 16-token blocks.
    (1usize..40, 1usize..16, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every causal decode step equals the matching row of the exact
    /// batched computation, for any prefix length and block grouping.
    #[test]
    fn decode_equals_naive_causal_rows((seq, dk, seed) in dims(), block in 1usize..20) {
        let input = MultiHeadInput::random(1, 1, seq, seq, dk, seed);
        let exact = naive_attention(&input, Mask::Causal);
        for i in 0..seq {
            let out = decode_attention(
                input.q[0].row(i),
                paged_rows(&input, i + 1, block),
                input.scale(),
            );
            for (j, &o) in out.iter().enumerate() {
                prop_assert!(
                    (o - exact[0].at(i, j)).abs() < 1e-4,
                    "seq {seq} step {i} col {j} block {block}"
                );
            }
        }
    }

    /// Decode agrees with the streaming (online-softmax) kernel run on a
    /// one-row query against the same prefix — the two entry points share
    /// the fold, so they must land on the same values.
    #[test]
    fn decode_equals_streaming_single_row((seq, dk, seed) in dims(), kv_tile in 1usize..24) {
        let input = MultiHeadInput::random(1, 1, seq, seq, dk, seed);
        for prefix in [1, seq / 2 + 1, seq] {
            let mut one = MultiHeadInput::random(1, 1, 1, 1, dk, 1);
            one.seq_kv = prefix;
            one.q[0] = input.q[0].row_slice(prefix - 1, prefix);
            one.k[0] = input.k[0].row_slice(0, prefix);
            one.v[0] = input.v[0].row_slice(0, prefix);
            let streamed = streaming_attention(&one, 1, kv_tile, Mask::None);
            let decoded = decode_attention(
                input.q[0].row(prefix - 1),
                paged_rows(&input, prefix, 16),
                input.scale(),
            );
            for (j, &o) in decoded.iter().enumerate() {
                prop_assert!(
                    (o - streamed[0].at(0, j)).abs() < 1e-4,
                    "prefix {prefix} col {j} kv_tile {kv_tile}"
                );
            }
        }
    }

    /// The causal-mask edge at step 1: a single cached row means a one
    /// element softmax, so the output is that value row bit-for-bit.
    #[test]
    fn step_one_is_the_value_row((_seq, dk, seed) in dims()) {
        let input = MultiHeadInput::random(1, 1, 1, 1, dk, seed);
        let out = decode_attention(
            input.q[0].row(0),
            [(input.k[0].row(0), input.v[0].row(0))],
            input.scale(),
        );
        for (o, v) in out.iter().zip(input.v[0].row(0)) {
            prop_assert_eq!(*o, *v);
        }
    }
}

/// Prefix lengths exactly at, one below, and one above the serve engine's
/// 16-token block boundary (and the two-block boundary) all agree with the
/// batched reference — the paged append path has no edge at the seam.
#[test]
fn block_boundary_prefixes_match_naive() {
    let dk = 8;
    for seq in [15, 16, 17, 31, 32, 33] {
        let input = MultiHeadInput::random(1, 1, seq, seq, dk, 0xB10C + seq as u64);
        let exact = naive_attention(&input, Mask::Causal);
        let i = seq - 1;
        let out = decode_attention(
            input.q[0].row(i),
            paged_rows(&input, seq, 16),
            input.scale(),
        );
        for (j, &o) in out.iter().enumerate() {
            assert!((o - exact[0].at(i, j)).abs() < 1e-4, "seq {seq} col {j}");
        }
    }
}
