//! Property tests: the correctness theorem behind FLAT.
//!
//! For every shape, tile size, and mask, the fused row-tiled execution and
//! the streaming (online-softmax) execution agree with the naive baseline
//! that materializes the full logit tensor.

use flat_kernels::{
    flat_attention, naive_attention, softmax_row, streaming_attention, Mask, MultiHeadInput,
};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize, usize, usize, u64)> {
    // (batch, heads, seq_q, seq_kv, dk, seed)
    (
        1usize..3,
        1usize..4,
        1usize..24,
        1usize..24,
        1usize..12,
        any::<u64>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FLAT's fused row-tiled execution ≡ naive attention, ∀ shapes and R.
    #[test]
    fn fused_equals_naive((b, h, nq, nkv, dk, seed) in dims(), rows in 1usize..32) {
        let input = MultiHeadInput::random(b, h, nq, nkv, dk, seed);
        let naive = naive_attention(&input, Mask::None);
        let fused = flat_attention(&input, rows, Mask::None);
        for (f, n) in fused.iter().zip(&naive) {
            prop_assert!(f.max_abs_diff(n) < 1e-4);
        }
    }

    /// Same theorem under a causal mask (decoder workloads).
    #[test]
    fn fused_equals_naive_causal((b, h, n, _unused, dk, seed) in dims(), rows in 1usize..32) {
        let input = MultiHeadInput::random(b, h, n, n, dk, seed);
        let naive = naive_attention(&input, Mask::Causal);
        let fused = flat_attention(&input, rows, Mask::Causal);
        for (f, n) in fused.iter().zip(&naive) {
            prop_assert!(f.max_abs_diff(n) < 1e-4);
        }
    }

    /// Streaming (online softmax, key-dimension tiling) ≡ naive attention.
    #[test]
    fn streaming_equals_naive(
        (b, h, nq, nkv, dk, seed) in dims(),
        rows in 1usize..16,
        cols in 1usize..16,
    ) {
        let input = MultiHeadInput::random(b, h, nq, nkv, dk, seed);
        let naive = naive_attention(&input, Mask::None);
        let streamed = streaming_attention(&input, rows, cols, Mask::None);
        for (s, n) in streamed.iter().zip(&naive) {
            prop_assert!(s.max_abs_diff(n) < 1e-3);
        }
    }

    /// Softmax outputs are a probability distribution for any finite input.
    #[test]
    fn softmax_is_a_distribution(row in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
        let mut r = row;
        softmax_row(&mut r);
        let sum: f32 = r.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(r.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
    }

    /// Softmax is invariant under a constant shift of the logits.
    #[test]
    fn softmax_shift_invariant(
        row in proptest::collection::vec(-20.0f32..20.0, 1..32),
        shift in -100.0f32..100.0,
    ) {
        let mut a = row.clone();
        let mut b: Vec<f32> = row.iter().map(|v| v + shift).collect();
        softmax_row(&mut a);
        softmax_row(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Attention outputs lie in the convex hull of the value rows: their
    /// per-column extrema are bounded by the values' extrema.
    #[test]
    fn outputs_in_value_hull((b, h, nq, nkv, dk, seed) in dims()) {
        let input = MultiHeadInput::random(b, h, nq, nkv, dk, seed);
        let out = naive_attention(&input, Mask::None);
        for (g, o) in out.iter().enumerate() {
            for d in 0..dk {
                let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                for j in 0..nkv {
                    lo = lo.min(input.v[g].at(j, d));
                    hi = hi.max(input.v[g].at(j, d));
                }
                for i in 0..nq {
                    let v = o.at(i, d);
                    prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
                }
            }
        }
    }
}
