//! Property tests: the blocked, register-tiled microkernels compute the
//! same function as the textbook triple loop.
//!
//! The matrix core blocks over three extents — MR = 4 register row
//! panels, KC = 256 contraction cache blocks, and 8-lane split dot
//! products — so the shapes here deliberately straddle every boundary:
//! dimensions below, at, and just past each block size, plus awkward
//! primes that leave remainder tails on all three levels at once.

use flat_kernels::Mat;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random matrix with entries in `[-0.25, 0.25]`: small enough that a
/// 512-term dot product keeps its float error well under the 1e-5
/// tolerance, whatever the summation order.
fn random_mat(rows: usize, cols: usize, rng: &mut StdRng) -> Mat {
    Mat::from_fn(rows, cols, |_, _| rng.gen_range(-0.25f32..0.25))
}

/// The textbook definition: `C[i][j] = Σ_l A[i][l] · B[l][j]`, one
/// multiply and one add at a time, no blocking.
fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
    Mat::from_fn(a.rows(), b.cols(), |i, j| {
        (0..a.cols()).map(|l| a.at(i, l) * b.at(l, j)).sum()
    })
}

/// The textbook `A · Bᵀ` for row-major `B`.
fn naive_matmul_transposed(a: &Mat, b: &Mat) -> Mat {
    Mat::from_fn(a.rows(), b.rows(), |i, j| {
        (0..a.cols()).map(|l| a.at(i, l) * b.at(j, l)).sum()
    })
}

/// Contraction extents straddling the 8-lane and KC = 256 boundaries.
fn contraction() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..24,
        Just(255usize),
        Just(256usize),
        Just(257usize),
        Just(307usize),
        Just(512usize),
    ]
}

/// Row/column extents straddling the MR = 4 panel boundary.
fn extent() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..10, Just(13usize), Just(16usize)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked `matmul` ≡ the naive triple loop, ∀ shapes.
    #[test]
    fn blocked_matmul_equals_naive(
        m in extent(),
        k in contraction(),
        n in extent(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        let blocked = a.matmul(&b);
        let naive = naive_matmul(&a, &b);
        prop_assert!(blocked.max_abs_diff(&naive) < 1e-5);
    }

    /// Blocked `matmul_transposed` ≡ the naive triple loop, ∀ shapes.
    #[test]
    fn blocked_matmul_transposed_equals_naive(
        m in extent(),
        k in contraction(),
        n in extent(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(n, k, &mut rng);
        let blocked = a.matmul_transposed(&b);
        let naive = naive_matmul_transposed(&a, &b);
        prop_assert!(blocked.max_abs_diff(&naive) < 1e-5);
    }

    /// The row-range entry point used by the tiled attention paths agrees
    /// with slicing the full blocked product, for every sub-range.
    #[test]
    fn transposed_row_ranges_match_full_product(
        m in 1usize..14,
        k in 1usize..40,
        n in extent(),
        lo in 0usize..14,
        len in 1usize..6,
        seed in any::<u64>(),
    ) {
        let lo = lo.min(m - 1);
        let hi = (lo + len).min(m);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(n, k, &mut rng);
        let full = a.matmul_transposed(&b);
        let part = a.matmul_transposed_rows(lo, hi, &b);
        for i in lo..hi {
            for j in 0..n {
                prop_assert_eq!(part.at(i - lo, j), full.at(i, j));
            }
        }
    }
}
