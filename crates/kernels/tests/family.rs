//! Property tests over the mixed-precision kernel family: every
//! (storage precision × softmax kind) combination must track the f32
//! naive reference within a bound that decomposes into independent
//! storage and algorithm contributions.
//!
//! The grid covers the fused walk, the streaming walk at arbitrary
//! (row, kv) tile splits — the shard-boundary shape the distributed
//! runtime produces — and the single-row decode recurrence down to its
//! step-1 causal edge, where exactly one KV row exists and every family
//! member must hand back the value row with weight one.

use flat_kernels::{
    decode_attention, decode_attention_with, flat_attention_with, naive_attention,
    streaming_attention_with, ComputePrecision, Mask, Mat, MultiHeadInput,
};
use flat_tensor::SoftmaxKind;
use proptest::prelude::*;

/// Storage (precision) error and softmax-kind (algorithm) error are
/// independent contributions; the budget for a combination is their sum.
fn bound(p: ComputePrecision, kind: SoftmaxKind) -> f32 {
    let precision_bound = match p {
        ComputePrecision::F32 => 1e-4,
        ComputePrecision::Bf16 => 2e-2,
        ComputePrecision::F16 => 5e-3,
        ComputePrecision::Int8 => 0.12,
    };
    let kind_bound = match kind {
        SoftmaxKind::LogLut => 5e-3,
        _ => 2e-4,
    };
    precision_bound + kind_bound
}

/// The full 12-combination grid.
fn grid() -> impl Iterator<Item = (ComputePrecision, SoftmaxKind)> {
    ComputePrecision::all()
        .iter()
        .flat_map(|&p| SoftmaxKind::all().iter().map(move |&k| (p, k)))
}

fn dims() -> impl Strategy<Value = (usize, usize, usize, usize, usize, u64)> {
    // (batch, heads, seq_q, seq_kv, dk, seed)
    (
        1usize..3,
        1usize..3,
        1usize..20,
        1usize..20,
        1usize..12,
        any::<u64>(),
    )
}

fn check_against(
    out: &[Mat],
    reference: &[Mat],
    p: ComputePrecision,
    kind: SoftmaxKind,
    what: &str,
) -> Result<(), TestCaseError> {
    let b = bound(p, kind);
    for (g, (o, e)) in out.iter().zip(reference).enumerate() {
        let d = o.max_abs_diff(e);
        prop_assert!(d < b, "{what} {p}/{kind} group {g}: diff {d} >= {b}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused walk: every grid member tracks naive f32 within its budget.
    #[test]
    fn fused_family_tracks_naive((b, h, nq, nkv, dk, seed) in dims(), rows in 1usize..24) {
        let input = MultiHeadInput::random(b, h, nq, nkv, dk, seed);
        let reference = naive_attention(&input, Mask::None);
        for (p, kind) in grid() {
            let out = flat_attention_with(&input, rows, Mask::None, p, kind);
            check_against(&out, &reference, p, kind, "fused")?;
        }
    }

    /// Same theorem under a causal mask — the masked −∞ columns must get
    /// exactly zero weight in every member, including across row tiles
    /// where early chunks are fully masked.
    #[test]
    fn fused_family_tracks_naive_causal((b, h, n, _unused, dk, seed) in dims(), rows in 1usize..24) {
        let input = MultiHeadInput::random(b, h, n, n, dk, seed);
        let reference = naive_attention(&input, Mask::Causal);
        for (p, kind) in grid() {
            let out = flat_attention_with(&input, rows, Mask::Causal, p, kind);
            check_against(&out, &reference, p, kind, "fused-causal")?;
        }
    }

    /// Streaming walk at arbitrary KV splits: the carry must telescope
    /// across every shard boundary, wherever the tile edge lands.
    #[test]
    fn streaming_family_carries_across_shard_boundaries(
        (b, h, nq, nkv, dk, seed) in dims(),
        rows in 1usize..12,
        kv_tile in 1usize..12,
    ) {
        let input = MultiHeadInput::random(b, h, nq, nkv, dk, seed);
        let reference = naive_attention(&input, Mask::None);
        for (p, kind) in grid() {
            let out = streaming_attention_with(&input, rows, kv_tile, Mask::None, p, kind);
            check_against(&out, &reference, p, kind, "streaming")?;
        }
    }

    /// Single-row decode against the exact f32 decode recurrence, with
    /// the KV prefix handed over row by row (the serve engine's shape).
    #[test]
    fn decode_family_tracks_exact(
        dk in 1usize..16,
        steps in 1usize..12,
        seed in any::<u64>(),
    ) {
        let kv = MultiHeadInput::random(1, 1, steps, steps, dk, seed);
        let q = kv.q[0].row(0);
        let scale = kv.scale();
        let rows = || (0..steps).map(|j| (kv.k[0].row(j), kv.v[0].row(j)));
        let exact = decode_attention(q, rows(), scale);
        for (p, kind) in grid() {
            let out = decode_attention_with(q, rows(), scale, p, kind);
            let b = bound(p, kind);
            for (i, (a, e)) in out.iter().zip(&exact).enumerate() {
                prop_assert!((a - e).abs() < b, "decode {p}/{kind} lane {i}: {a} vs {e}");
            }
        }
    }

    /// Step 1 of causal generation: exactly one KV row. Every member must
    /// return the value row itself — weight one, nothing to normalize —
    /// up to its storage rounding.
    #[test]
    fn step_one_causal_decode_is_the_value_row(dk in 1usize..16, seed in any::<u64>()) {
        let kv = MultiHeadInput::random(1, 1, 1, 1, dk, seed);
        let q = kv.q[0].row(0);
        let (k, v) = (kv.k[0].row(0), kv.v[0].row(0));
        for (p, kind) in grid() {
            let out = decode_attention_with(q, [(k, v)], scale_of(&kv), p, kind);
            let b = bound(p, kind);
            for (i, (a, e)) in out.iter().zip(v).enumerate() {
                prop_assert!((a - e).abs() < b, "step-1 {p}/{kind} lane {i}: {a} vs {e}");
            }
        }
    }
}

fn scale_of(input: &MultiHeadInput) -> f32 {
    input.scale()
}
