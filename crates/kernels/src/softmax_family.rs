//! The online-softmax algorithm family: exact, FLASH-D (division folded
//! into the accumulation recurrence), and H-FA (log2-domain adds + LUT).
//!
//! FLAT's fused loop spends its special-function budget on softmax: the
//! reference keeps an `exp` per logit and a divide pass per row in the
//! inner loop. The two variants here remove them incrementally, following
//! the FLASH-D and H-FA papers:
//!
//! * [`FlashDSoftmax`] keeps the output *always normalized* by folding the
//!   division into the accumulation recurrence `o ← o·carry + (w/s')·v`
//!   with `carry = s·α/s'`. The per-row normalize pass disappears; one
//!   reciprocal per absorbed chunk remains. The `exp` becomes a degree-5
//!   polynomial `2^x` evaluation (what a pipelined SFU computes), accurate
//!   to ~1 ulp of f32.
//! * [`LogLutSoftmax`] moves everything to the base-2 log domain: logits
//!   become `y = x·log2(e)`, the running denominator is carried as
//!   `log2(Σ 2^y)` via LUT-based log-domain additions, and normalized
//!   weights come from a 64-entry `2^frac` table with linear
//!   interpolation — no `exp` call and no divider anywhere.
//!
//! Both expose the same chunked `absorb` contract so the fused, streaming,
//! and decode kernels can select a member with [`SoftmaxKind`] at runtime.
//! [`ComputePrecision`] selects the storage/arithmetic width the kernels
//! pair with the softmax kind.

use flat_tensor::{DataType, SoftmaxKind};
use std::fmt;
use std::sync::OnceLock;

/// Storage and arithmetic precision of an attention kernel.
///
/// Distinct from [`DataType`] (a pure storage-width descriptor): a
/// `ComputePrecision` names an executable kernel configuration — f32
/// reference, 16-bit packed storage with f32 accumulation (widening
/// loads), or int8 with integer GEMMs and an int8 score matrix.
///
/// # Example
///
/// ```
/// use flat_kernels::ComputePrecision;
/// use flat_tensor::DataType;
///
/// assert_eq!(ComputePrecision::parse("bf16"), Ok(ComputePrecision::Bf16));
/// assert_eq!(ComputePrecision::Bf16.dtype(), DataType::Bf16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputePrecision {
    /// Full f32: the reference.
    F32,
    /// bfloat16 packed storage, f32 accumulation via widening loads.
    Bf16,
    /// IEEE f16 packed storage, f32 accumulation via widening loads.
    F16,
    /// int8 storage with integer GEMMs; the score matrix is quantized too.
    Int8,
}

impl ComputePrecision {
    /// All precisions, reference first.
    #[must_use]
    pub const fn all() -> &'static [ComputePrecision] {
        &[
            ComputePrecision::F32,
            ComputePrecision::Bf16,
            ComputePrecision::F16,
            ComputePrecision::Int8,
        ]
    }

    /// The storage width this precision keeps tensors at.
    #[must_use]
    pub const fn dtype(self) -> DataType {
        match self {
            ComputePrecision::F32 => DataType::Fp32,
            ComputePrecision::Bf16 => DataType::Bf16,
            ComputePrecision::F16 => DataType::Fp16,
            ComputePrecision::Int8 => DataType::Int8,
        }
    }

    /// Parses the lowercase display name (`"fp32"`, `"bf16"`, `"fp16"`,
    /// `"int8"`; `"f32"`/`"f16"` accepted as aliases).
    ///
    /// # Errors
    ///
    /// Returns the list of valid names when `s` matches none.
    pub fn parse(s: &str) -> Result<ComputePrecision, String> {
        match s {
            "fp32" | "f32" => Ok(ComputePrecision::F32),
            "bf16" => Ok(ComputePrecision::Bf16),
            "fp16" | "f16" => Ok(ComputePrecision::F16),
            "int8" => Ok(ComputePrecision::Int8),
            other => Err(format!(
                "unknown precision '{other}' (expected one of: fp32, bf16, fp16, int8)"
            )),
        }
    }
}

impl Default for ComputePrecision {
    /// The f32 reference, matching all pre-existing kernel behavior.
    fn default() -> Self {
        ComputePrecision::F32
    }
}

impl fmt::Display for ComputePrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.dtype().fmt(f)
    }
}

/// log2(e): the natural → base-2 logit conversion factor.
const LOG2_E: f32 = std::f32::consts::LOG2_E;

/// `2^x` by a degree-5 polynomial on `x − round(x)` (the classic Cephes
/// `exp2f` kernel): ~1 ulp of f32, no libm call — this is the arithmetic a
/// pipelined hardware SFU actually performs, and on the host it is several
/// times faster than `f32::exp`, which is what lets the FLASH-D kernels
/// show their wall-clock win.
#[inline]
#[must_use]
pub fn fast_exp2(x: f32) -> f32 {
    // Straight-line select form (no early return) so loops over logit
    // rows auto-vectorize: clamp, evaluate, then mask the saturated ends.
    let xc = x.clamp(-126.0, 127.0);
    let n = (xc + 0.5).floor();
    let z = xc - n; // in [-0.5, 0.5]
    let mut p = 1.535_336_2e-4_f32;
    p = p.mul_add(z, 1.339_887_4e-3);
    p = p.mul_add(z, 9.618_438e-3);
    p = p.mul_add(z, 5.550_332_5e-2);
    p = p.mul_add(z, 2.402_264_8e-1);
    p = p.mul_add(z, 6.931_472e-1);
    p = p.mul_add(z, 1.0);
    // Scale by 2^n through the exponent bits (n is integral, in range).
    let v = p * f32::from_bits((((n as i32) + 127) << 23) as u32);
    if x < -126.0 {
        0.0
    } else if x > 127.0 {
        f32::INFINITY
    } else {
        v
    }
}

/// `e^x` through [`fast_exp2`].
#[inline]
#[must_use]
pub fn fast_exp(x: f32) -> f32 {
    fast_exp2(x * LOG2_E)
}

/// Entries of the `2^frac` mantissa table (64 intervals over `[0, 1)`).
const EXP2_LUT_N: usize = 64;

/// Entries of the `log2(1 + 2^−t)` table (`t` quantized at 1/16 over
/// `[0, 16)`; beyond 16 the correction is below f32 resolution here).
const LOG2_1P_N: usize = 256;

fn exp2_frac_table() -> &'static [f32; EXP2_LUT_N + 1] {
    static TABLE: OnceLock<[f32; EXP2_LUT_N + 1]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0f32; EXP2_LUT_N + 1];
        for (i, e) in t.iter_mut().enumerate() {
            *e = (i as f32 / EXP2_LUT_N as f32).exp2();
        }
        t
    })
}

fn log2_1p_table() -> &'static [f32; LOG2_1P_N] {
    static TABLE: OnceLock<[f32; LOG2_1P_N]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0f32; LOG2_1P_N];
        for (i, e) in t.iter_mut().enumerate() {
            let d = i as f32 / 16.0;
            *e = (1.0 + (-d).exp2()).log2();
        }
        t
    })
}

/// `2^x` from the 64-entry mantissa LUT with linear interpolation — the
/// H-FA conversion back from the log domain. Worst-case relative error is
/// ~`(ln2/64)²/8 ≈ 1.5e-5`, far inside the bf16 noise floor.
#[inline]
#[must_use]
pub fn exp2_lut(x: f32) -> f32 {
    if x < -126.0 {
        return 0.0;
    }
    if x > 127.0 {
        return f32::INFINITY;
    }
    let xf = x.floor();
    let f = (x - xf) * EXP2_LUT_N as f32;
    let idx = f as usize; // 0..=63: x − floor(x) < 1
    let frac = f - idx as f32;
    let t = exp2_frac_table();
    let m = t[idx] + (t[idx + 1] - t[idx]) * frac;
    m * f32::from_bits((((xf as i32) + 127) << 23) as u32)
}

/// Log-domain addition `log2(2^a + 2^b)` as the H-FA adder computes it:
/// `max(a, b) + log2(1 + 2^−|a−b|)`, the correction term from a small LUT
/// (linear interpolation between the 1/16-step entries).
#[inline]
#[must_use]
pub fn log2_add_lut(a: f32, b: f32) -> f32 {
    if a == f32::NEG_INFINITY {
        return b;
    }
    if b == f32::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    let d = (hi - lo) * 16.0;
    let idx = d as usize;
    if idx + 1 >= LOG2_1P_N {
        return hi;
    }
    let frac = d - idx as f32;
    let t = log2_1p_table();
    hi + t[idx] + (t[idx + 1] - t[idx]) * frac
}

/// FLASH-D online softmax: the division is folded into the accumulation
/// recurrence, so the weighted output stays normalized at every step and
/// the per-row normalize pass disappears.
///
/// Contract shared with [`LogLutSoftmax`]: [`absorb`](Self::absorb) takes
/// a chunk of natural-domain logits, replaces each with its *normalized*
/// weight `w/s'`, and returns the `carry` factor for output produced by
/// earlier chunks; the caller folds `o ← o·carry + Σ w̃_j·v_j` and never
/// normalizes. (`carry + Σ w̃_j·(chunk weight share) = 1` by construction —
/// for a single element this is exactly the FLASH-D sigmoid form
/// `o ← o + μ(v − o)`.)
///
/// # Example
///
/// ```
/// use flat_kernels::{softmax_row, FlashDSoftmax};
///
/// let row = [0.5f32, -1.0, 2.0, 0.3];
/// let mut reference = row;
/// softmax_row(&mut reference);
///
/// let mut st = FlashDSoftmax::new();
/// let mut weights = row;
/// let carry = st.absorb(&mut weights);
/// assert_eq!(carry, 0.0); // nothing absorbed before the first chunk
/// for (w, r) in weights.iter().zip(&reference) {
///     assert!((w - r).abs() < 1e-5); // already normalized: no divide pass
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashDSoftmax {
    max: f32,
    sum: f32,
}

impl FlashDSoftmax {
    /// Fresh state: no logits absorbed.
    #[must_use]
    pub fn new() -> Self {
        FlashDSoftmax {
            max: f32::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Absorbs a chunk of logits, replacing each with its normalized
    /// weight, and returns the rescale factor for previously produced
    /// output (0.0 before anything is absorbed, so a cold accumulator
    /// needs no special-casing).
    pub fn absorb(&mut self, chunk: &mut [f32]) -> f32 {
        let chunk_max = crate::softmax::lane_max(chunk);
        let new_max = self.max.max(chunk_max);
        if new_max == f32::NEG_INFINITY {
            // Entirely masked so far: no weight anywhere.
            chunk.fill(0.0);
            return if self.sum > 0.0 { 1.0 } else { 0.0 };
        }
        let alpha = if self.max == f32::NEG_INFINITY {
            0.0
        } else {
            fast_exp(self.max - new_max)
        };
        let old = self.sum * alpha;
        // Elementwise map first, laned reduction second: fusing them puts
        // a serial FP add in the loop and defeats the vectorizer.
        for x in chunk.iter_mut() {
            *x = fast_exp2((*x - new_max) * LOG2_E);
        }
        let part = crate::softmax::lane_sum(chunk);
        let new_sum = old + part;
        self.max = new_max;
        self.sum = new_sum;
        // The one reciprocal that remains: per chunk, not per element and
        // not per output lane.
        let inv = 1.0 / new_sum;
        for x in chunk.iter_mut() {
            *x *= inv;
        }
        old * inv
    }

    /// Current running maximum (natural domain).
    #[must_use]
    pub fn running_max(&self) -> f32 {
        self.max
    }
}

impl Default for FlashDSoftmax {
    fn default() -> Self {
        FlashDSoftmax::new()
    }
}

/// H-FA hybrid log-domain softmax: the running denominator lives as
/// `log2(Σ 2^y)` and is grown by LUT-based log-domain adds; normalized
/// weights are `2^(y − acc)` from the mantissa LUT. Same chunked `absorb`
/// contract as [`FlashDSoftmax`] — and like it, division-free, but here
/// the `exp` unit is gone too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogLutSoftmax {
    /// `log2` of the running denominator (−∞ before anything absorbed).
    acc2: f32,
}

impl LogLutSoftmax {
    /// Fresh state: no logits absorbed.
    #[must_use]
    pub fn new() -> Self {
        LogLutSoftmax {
            acc2: f32::NEG_INFINITY,
        }
    }

    /// Absorbs a chunk of natural-domain logits, replacing each with its
    /// normalized weight; returns the rescale factor for earlier output.
    pub fn absorb(&mut self, chunk: &mut [f32]) -> f32 {
        // Into the log2 domain: one multiply per logit; from here on the
        // "arithmetic" is adds, compares, and table lookups.
        for x in chunk.iter_mut() {
            *x *= LOG2_E;
        }
        let old = self.acc2;
        let mut acc = old;
        for &y in chunk.iter() {
            acc = log2_add_lut(acc, y);
        }
        if acc == f32::NEG_INFINITY {
            chunk.fill(0.0);
            return 0.0;
        }
        for y in chunk.iter_mut() {
            // Normalization is an exponent *subtraction*: w̃ = 2^(y − acc).
            *y = exp2_lut(*y - acc);
        }
        self.acc2 = acc;
        if old == f32::NEG_INFINITY {
            0.0
        } else {
            exp2_lut(old - acc)
        }
    }

    /// `log2` of the running softmax denominator.
    #[must_use]
    pub fn log2_normalizer(&self) -> f32 {
        self.acc2
    }
}

impl Default for LogLutSoftmax {
    fn default() -> Self {
        LogLutSoftmax::new()
    }
}

/// Applies the selected softmax kind to one complete row, in place.
///
/// For [`SoftmaxKind::Exact`] this is the two-pass reference; for the
/// family members it is a single whole-row `absorb`, which leaves the row
/// already normalized with no divide pass.
pub fn softmax_row_kind(row: &mut [f32], kind: SoftmaxKind) {
    if row.is_empty() {
        return;
    }
    match kind {
        SoftmaxKind::Exact => crate::softmax_row(row),
        SoftmaxKind::FlashD => {
            let _ = FlashDSoftmax::new().absorb(row);
        }
        SoftmaxKind::LogLut => {
            let _ = LogLutSoftmax::new().absorb(row);
        }
    }
}

/// Rounds a matrix through the storage grid of `precision` (identity for
/// f32) — the values a kernel holding its tensors at that width actually
/// computes with. Used by the streaming/decode paths, where the packed
/// microkernels don't apply but the storage effect still must.
pub(crate) fn storage_snap(m: &crate::Mat, precision: ComputePrecision) -> crate::Mat {
    match precision {
        ComputePrecision::F32 => m.clone(),
        ComputePrecision::Bf16 | ComputePrecision::F16 => {
            crate::halfmat::HalfMat::from_mat(m, precision.dtype()).to_mat()
        }
        ComputePrecision::Int8 => crate::QuantizedMat::quantize(m).dequantize(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax_row;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fast_exp2_tracks_libm_to_f32_precision() {
        let mut x = -80.0f32;
        while x < 80.0 {
            let (a, b) = (fast_exp2(x), x.exp2());
            assert!(((a - b) / b).abs() < 1e-6, "{x}: {a} vs {b}");
            x += 0.0371;
        }
        assert_eq!(fast_exp2(f32::NEG_INFINITY), 0.0);
        assert_eq!(fast_exp2(-1000.0), 0.0);
        assert_eq!(fast_exp2(1000.0), f32::INFINITY);
    }

    #[test]
    fn exp2_lut_error_is_within_the_interpolation_bound() {
        let mut x = -30.0f32;
        while x < 30.0 {
            let (a, b) = (exp2_lut(x), x.exp2());
            assert!(((a - b) / b).abs() < 5e-5, "{x}: {a} vs {b}");
            x += 0.0193;
        }
        assert_eq!(exp2_lut(f32::NEG_INFINITY), 0.0);
    }

    #[test]
    fn log2_add_matches_linear_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let a: f32 = rng.gen_range(-20.0..20.0);
            let b: f32 = rng.gen_range(-20.0..20.0);
            let exact = (a.exp2() as f64 + b.exp2() as f64).log2() as f32;
            let lut = log2_add_lut(a, b);
            assert!((lut - exact).abs() < 2e-4, "{a}+{b}: {lut} vs {exact}");
        }
        assert_eq!(log2_add_lut(f32::NEG_INFINITY, 3.0), 3.0);
        assert_eq!(log2_add_lut(3.0, f32::NEG_INFINITY), 3.0);
    }

    fn family_weights(row: &[f32], chunk: usize, kind: SoftmaxKind) -> (Vec<f32>, Vec<f32>) {
        // Fold an identity "value" through the absorb contract to recover
        // the weights; also check carry telescopes to a distribution.
        let mut weights: Vec<f32> = Vec::new();
        match kind {
            SoftmaxKind::FlashD => {
                let mut st = FlashDSoftmax::new();
                for c in row.chunks(chunk) {
                    let mut w = c.to_vec();
                    let carry = st.absorb(&mut w);
                    for p in &mut weights {
                        *p *= carry;
                    }
                    weights.extend(w);
                }
            }
            SoftmaxKind::LogLut => {
                let mut st = LogLutSoftmax::new();
                for c in row.chunks(chunk) {
                    let mut w = c.to_vec();
                    let carry = st.absorb(&mut w);
                    for p in &mut weights {
                        *p *= carry;
                    }
                    weights.extend(w);
                }
            }
            SoftmaxKind::Exact => unreachable!(),
        }
        let mut reference = row.to_vec();
        softmax_row(&mut reference);
        (weights, reference)
    }

    #[test]
    fn flash_d_matches_reference_within_relative_bound() {
        let mut rng = StdRng::seed_from_u64(21);
        for chunk in [1, 3, 16, 64, 1000] {
            let row: Vec<f32> = (0..256).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let (w, r) = family_weights(&row, chunk, SoftmaxKind::FlashD);
            let sum: f32 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "chunk {chunk}: sum {sum}");
            for (a, b) in w.iter().zip(&r) {
                // fast_exp2 is ~1 ulp; the recurrence adds a few more.
                assert!((a - b).abs() < 1e-5 + b * 1e-4, "chunk {chunk}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn log_lut_matches_reference_within_lut_bound() {
        let mut rng = StdRng::seed_from_u64(22);
        for chunk in [1, 7, 64, 1000] {
            let row: Vec<f32> = (0..256).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let (w, r) = family_weights(&row, chunk, SoftmaxKind::LogLut);
            let sum: f32 = w.iter().sum();
            assert!((sum - 1.0).abs() < 5e-3, "chunk {chunk}: sum {sum}");
            for (a, b) in w.iter().zip(&r) {
                assert!((a - b).abs() < 1e-4 + b * 2e-3, "chunk {chunk}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn masked_logits_get_zero_weight() {
        for kind in [SoftmaxKind::FlashD, SoftmaxKind::LogLut] {
            let mut row = [f32::NEG_INFINITY, 0.0, f32::NEG_INFINITY, 1.0];
            softmax_row_kind(&mut row, kind);
            assert_eq!(row[0], 0.0);
            assert_eq!(row[2], 0.0);
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "{kind}: {sum}");
        }
    }

    #[test]
    fn all_masked_chunks_are_total() {
        for kind in [SoftmaxKind::FlashD, SoftmaxKind::LogLut] {
            let mut row = [f32::NEG_INFINITY; 4];
            softmax_row_kind(&mut row, kind);
            assert!(row.iter().all(|&w| w == 0.0), "{kind}");
        }
        // And a masked chunk after real logits must not disturb them.
        let mut st = FlashDSoftmax::new();
        let mut first = [0.0f32, 1.0];
        let _ = st.absorb(&mut first);
        let mut masked = [f32::NEG_INFINITY; 2];
        let carry = st.absorb(&mut masked);
        assert_eq!(carry, 1.0, "earlier output must be kept");
        assert_eq!(masked, [0.0, 0.0]);
    }

    #[test]
    fn decode_shape_single_element_recurrence_is_an_average() {
        // One element at a time, uniform logits: after n steps each weight
        // is 1/n — the o ← o + μ(v − o) incremental-average form.
        let mut st = FlashDSoftmax::new();
        let mut o = 0.0f32;
        for v in [1.0f32, 2.0, 3.0, 4.0] {
            let mut w = [0.0f32];
            let carry = st.absorb(&mut w);
            o = o * carry + w[0] * v;
        }
        assert!((o - 2.5).abs() < 1e-5, "{o}");
    }

    #[test]
    fn precision_selector_round_trips_and_maps_to_dtypes() {
        for &p in ComputePrecision::all() {
            assert_eq!(ComputePrecision::parse(&p.to_string()), Ok(p));
            assert_eq!(p.dtype().to_string(), p.to_string());
        }
        assert_eq!(ComputePrecision::parse("f32"), Ok(ComputePrecision::F32));
        assert!(ComputePrecision::parse("fp8").is_err());
    }
}
