//! Instrumented fused execution: the same FLAT row-tiled attention as
//! [`flat_attention`](crate::flat_attention), but counting every buffer
//! touch — so the cost model's traffic accounting can be validated against
//! what a real execution actually does.

use crate::{softmax_row, Mask, Mat, MultiHeadInput};
use flat_telemetry::{Event, TraceSink};

/// Memory-touch counters for one execution, in elements.
///
/// "DRAM" here means the backing store of the full Q/K/V/O tensors;
/// "slice" means the on-chip FLAT-tile holding the live logit rows.
///
/// # Example
///
/// ```
/// use flat_kernels::{instrumented_flat_attention, Mask, MultiHeadInput};
///
/// let input = MultiHeadInput::random(1, 2, 32, 32, 8, 3);
/// let (out, stats) = instrumented_flat_attention(&input, 8, Mask::None);
/// assert_eq!(out.len(), 2);
/// // Q is read exactly once per element.
/// assert_eq!(stats.q_reads, 2 * 32 * 8);
/// // The live slice never exceeds R x N.
/// assert_eq!(stats.peak_live_logits, 8 * 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionStats {
    /// Query elements read from backing store.
    pub q_reads: u64,
    /// Key elements read from backing store.
    pub k_reads: u64,
    /// Value elements read from backing store.
    pub v_reads: u64,
    /// Output elements written to backing store.
    pub o_writes: u64,
    /// Logit elements written into the live slice.
    pub logit_writes: u64,
    /// Logit elements read back out of the live slice (softmax + Attend).
    pub logit_reads: u64,
    /// Largest number of logit elements live at any instant.
    pub peak_live_logits: u64,
    /// Number of FLAT-tile iterations executed.
    pub iterations: u64,
}

impl ExecutionStats {
    /// Total backing-store (DRAM-like) traffic in elements.
    #[must_use]
    pub fn backing_store_elements(&self) -> u64 {
        self.q_reads + self.k_reads + self.v_reads + self.o_writes
    }

    /// Total scratchpad (live-slice) traffic in elements: every logit
    /// write into the FLAT tile plus every read back out of it.
    #[must_use]
    pub fn scratchpad_elements(&self) -> u64 {
        self.logit_writes + self.logit_reads
    }
}

/// [`flat_attention`](crate::flat_attention) with touch counting. Returns
/// the identical output plus the [`ExecutionStats`].
///
/// K and V are modeled as staged: read from backing store once per
/// (batch, head) group and reused across that group's row iterations —
/// the `key`/`value` FLAT-tile behavior the cost model prices.
///
/// # Panics
///
/// Panics if `rows_per_tile` is zero.
#[must_use]
pub fn instrumented_flat_attention(
    input: &MultiHeadInput,
    rows_per_tile: usize,
    mask: Mask,
) -> (Vec<Mat>, ExecutionStats) {
    assert!(rows_per_tile > 0, "row tile must be positive");
    let scale = input.scale();
    let mut stats = ExecutionStats::default();
    let outs = (0..input.groups())
        .map(|g| {
            let q = &input.q[g];
            // Stage K and V once per group (the K/V FLAT-tiles).
            let k = &input.k[g];
            let v = &input.v[g];
            stats.k_reads += (input.seq_kv * input.dk) as u64;
            stats.v_reads += (input.seq_kv * input.dk) as u64;

            let mut out = Mat::zeros(input.seq_q, input.dk);
            let mut row_lo = 0;
            while row_lo < input.seq_q {
                let row_hi = (row_lo + rows_per_tile).min(input.seq_q);
                stats.iterations += 1;
                let rows = row_hi - row_lo;
                stats.q_reads += (rows * input.dk) as u64;

                // Same no-copy tile primitive as the uninstrumented path:
                // the outputs must stay bit-identical.
                let mut tile = q.matmul_transposed_rows(row_lo, row_hi, k);
                let live = (rows * input.seq_kv) as u64;
                stats.logit_writes += live;
                stats.peak_live_logits = stats.peak_live_logits.max(live);

                for i in 0..tile.rows() {
                    let qi = row_lo + i;
                    for (j, x) in tile.row_mut(i).iter_mut().enumerate() {
                        *x = if mask.allows(qi, j) {
                            *x * scale
                        } else {
                            f32::NEG_INFINITY
                        };
                    }
                }
                // SFU pass reads and rewrites the slice in place.
                stats.logit_reads += live;
                stats.logit_writes += live;
                for i in 0..tile.rows() {
                    softmax_row(tile.row_mut(i));
                }
                // Stage A reads the slice once more.
                stats.logit_reads += live;
                tile.matmul_into(v, &mut out, row_lo);
                stats.o_writes += (rows * input.dk) as u64;
                row_lo = row_hi;
            }
            out
        })
        .collect();
    (outs, stats)
}

/// [`instrumented_flat_attention`], additionally routing the
/// [`ExecutionStats`] into a [`TraceSink`] as kernel counter events: MAC
/// work, scratchpad (live-slice) bytes, and off-chip (backing-store)
/// bytes, plus the tile iteration count and peak live-logit footprint.
/// The stats are returned unchanged — the sink is a tee, not a
/// replacement, and a disabled sink skips event construction entirely.
///
/// # Panics
///
/// Panics if `rows_per_tile` is zero, as
/// [`instrumented_flat_attention`] does.
#[must_use]
pub fn instrumented_flat_attention_traced(
    input: &MultiHeadInput,
    rows_per_tile: usize,
    mask: Mask,
    sink: &mut dyn TraceSink,
) -> (Vec<Mat>, ExecutionStats) {
    let (outs, stats) = instrumented_flat_attention(input, rows_per_tile, mask);
    if sink.enabled() {
        // Both matmuls (L = Q·Kᵀ and O = A·V) do seq_q·seq_kv·dk MACs
        // per group; elements are f32 in this numeric witness.
        let macs = 2 * (input.groups() * input.seq_q * input.seq_kv * input.dk) as u64;
        const ELEM_BYTES: u64 = 4;
        sink.record(
            Event::counter("kernel", "kernel", 0.0, 0, 0)
                .arg("macs", macs)
                .arg("sg_bytes", stats.scratchpad_elements() * ELEM_BYTES)
                .arg("offchip_bytes", stats.backing_store_elements() * ELEM_BYTES),
        );
        sink.record(
            Event::instant("flat_attention", "kernel", 0.0, 0, 0)
                .arg("iterations", stats.iterations)
                .arg("peak_live_logits", stats.peak_live_logits)
                .arg("rows_per_tile", rows_per_tile as u64),
        );
    }
    (outs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat_attention;
    use flat_telemetry::{MemorySink, NoopSink};

    #[test]
    fn output_matches_uninstrumented() {
        let input = MultiHeadInput::random(2, 2, 24, 24, 8, 5);
        let (inst, _) = instrumented_flat_attention(&input, 6, Mask::None);
        let plain = flat_attention(&input, 6, Mask::None);
        for (a, b) in inst.iter().zip(&plain) {
            assert_eq!(a.max_abs_diff(b), 0.0, "identical arithmetic path");
        }
    }

    #[test]
    fn compulsory_traffic_touched_exactly_once() {
        let input = MultiHeadInput::random(2, 3, 32, 40, 8, 7);
        let (_, s) = instrumented_flat_attention(&input, 8, Mask::None);
        let groups = 6u64;
        assert_eq!(s.q_reads, groups * 32 * 8);
        assert_eq!(s.k_reads, groups * 40 * 8);
        assert_eq!(s.v_reads, groups * 40 * 8);
        assert_eq!(s.o_writes, groups * 32 * 8);
    }

    #[test]
    fn peak_live_is_r_times_n() {
        let input = MultiHeadInput::random(1, 1, 64, 64, 4, 9);
        for r in [1usize, 4, 16, 64] {
            let (_, s) = instrumented_flat_attention(&input, r, Mask::None);
            assert_eq!(s.peak_live_logits, (r * 64) as u64, "R={r}");
        }
    }

    #[test]
    fn logit_tensor_fully_produced_and_consumed() {
        let input = MultiHeadInput::random(1, 2, 17, 23, 4, 11);
        let (_, s) = instrumented_flat_attention(&input, 5, Mask::None);
        let logits = 2 * 17 * 23u64;
        // Written by L, rewritten by softmax; read by softmax and by A.
        assert_eq!(s.logit_writes, 2 * logits);
        assert_eq!(s.logit_reads, 2 * logits);
    }

    #[test]
    fn iteration_count_matches_ceiling_division() {
        let input = MultiHeadInput::random(2, 2, 37, 37, 4, 13);
        let (_, s) = instrumented_flat_attention(&input, 8, Mask::None);
        assert_eq!(s.iterations, 4 * 37u64.div_ceil(8));
    }

    #[test]
    fn traced_variant_tees_stats_into_the_sink() {
        let input = MultiHeadInput::random(1, 2, 16, 24, 8, 5);
        let (plain_out, plain_stats) = instrumented_flat_attention(&input, 4, Mask::None);
        let mut sink = MemorySink::new();
        let (out, stats) = instrumented_flat_attention_traced(&input, 4, Mask::None, &mut sink);
        assert_eq!(stats, plain_stats, "the sink must not change the stats");
        for (a, b) in out.iter().zip(&plain_out) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        assert_eq!(sink.events.len(), 2);
        let json = sink.to_chrome_trace();
        let macs = 2 * (2 * 16 * 24 * 8) as u64;
        assert!(json.contains(&format!("\"macs\":{macs}")));
        assert!(json.contains(&format!("\"sg_bytes\":{}", stats.scratchpad_elements() * 4)));
        assert!(json.contains(&format!(
            "\"offchip_bytes\":{}",
            stats.backing_store_elements() * 4
        )));
    }

    #[test]
    fn traced_variant_with_noop_sink_records_nothing() {
        let input = MultiHeadInput::random(1, 1, 8, 8, 4, 3);
        let mut sink = NoopSink;
        let (_, stats) = instrumented_flat_attention_traced(&input, 4, Mask::None, &mut sink);
        let (_, plain) = instrumented_flat_attention(&input, 4, Mask::None);
        assert_eq!(stats, plain);
    }
}
