//! The FLAT fused execution, numerically: row-granularity tiles of the
//! logit tensor are computed, softmaxed, and consumed without ever
//! materializing the full `[N, N]` matrix.

use crate::halfmat::{half_attend_into, half_logits_into, HalfMat};
use crate::mat::{wide_attend_acc, wide_logits_into};
use crate::softmax_family::{softmax_row_kind, FlashDSoftmax, LogLutSoftmax};
use crate::{softmax_row, ComputePrecision, Mask, Mat, MultiHeadInput};
use flat_tensor::SoftmaxKind;

/// Key-dimension chunk of the packed FLASH-D/LogLut walk: one `R × C`
/// logit slice plus the packed K/V chunk rows stay cache-resident while
/// the division-free recurrence folds them into the output.
const KV_CHUNK: usize = 512;

/// FLAT row-granularity fused attention.
///
/// For each (batch, head) group, iterate over row groups of `rows_per_tile`
/// query rows (one FLAT-tile per iteration, exactly the §4.3 walk-through):
///
/// 1. **Stage L** — compute the tile's logit slice `S = Q_r · Kᵀ` (shape
///    `[R, seq_kv]`; the slice holds *complete* rows, which is what makes
///    the softmax exact — this is FLAT's row-granularity invariant),
/// 2. **SFU** — softmax each row of the slice in place,
/// 3. **Stage A** — accumulate `O_r = S · V` into the output rows.
///
/// Peak live intermediate footprint is `R × seq_kv` instead of
/// `seq_q × seq_kv`: the `O(N²) → O(N)` reduction of Table 2, realized in
/// actual arithmetic. The result is bit-for-bit comparable to
/// [`naive_attention`](crate::naive_attention) up to f32 rounding.
///
/// # Panics
///
/// Panics if `rows_per_tile` is zero.
///
/// # Example
///
/// ```
/// use flat_kernels::{flat_attention, naive_attention, Mask, MultiHeadInput};
///
/// let input = MultiHeadInput::random(1, 2, 32, 32, 8, 3);
/// let fused = flat_attention(&input, 4, Mask::None);
/// let naive = naive_attention(&input, Mask::None);
/// for (f, n) in fused.iter().zip(&naive) {
///     assert!(f.max_abs_diff(n) < 1e-5);
/// }
/// ```
#[must_use]
pub fn flat_attention(input: &MultiHeadInput, rows_per_tile: usize, mask: Mask) -> Vec<Mat> {
    assert!(rows_per_tile > 0, "row tile must be positive");
    (0..input.groups())
        .map(|g| flat_attention_group(input, g, rows_per_tile, mask))
        .collect()
}

/// FLAT fused attention with an explicit precision and softmax-kind
/// selection — the mixed-precision kernel family entry point.
///
/// * [`ComputePrecision::F32`] + [`SoftmaxKind::Exact`] is bit-identical
///   to [`flat_attention`].
/// * `Bf16`/`F16` pack Q/K/V at 16 bits ([`HalfMat`]) and run the widening
///   microkernels: QK^T and PV stream packed panels at half the bytes.
/// * [`ComputePrecision::Int8`] routes to the quantized path with an int8
///   score matrix
///   ([`quantized_flat_attention_with`](crate::quantized_flat_attention_with)).
/// * [`SoftmaxKind::FlashD`]/[`SoftmaxKind::LogLut`] run the key dimension
///   in chunks with the division-free recurrence: the output rows stay
///   normalized at every step and no per-row normalize pass ever runs.
///
/// # Panics
///
/// Panics if `rows_per_tile` is zero.
///
/// # Example
///
/// ```
/// use flat_kernels::{flat_attention_with, naive_attention, ComputePrecision, Mask, MultiHeadInput};
/// use flat_tensor::SoftmaxKind;
///
/// let input = MultiHeadInput::random(1, 2, 32, 32, 8, 3);
/// let fast = flat_attention_with(
///     &input, 8, Mask::None, ComputePrecision::Bf16, SoftmaxKind::FlashD);
/// let exact = naive_attention(&input, Mask::None);
/// for (f, n) in fast.iter().zip(&exact) {
///     assert!(f.max_abs_diff(n) < 2e-2); // bf16 storage noise, not bugs
/// }
/// ```
#[must_use]
pub fn flat_attention_with(
    input: &MultiHeadInput,
    rows_per_tile: usize,
    mask: Mask,
    precision: ComputePrecision,
    kind: SoftmaxKind,
) -> Vec<Mat> {
    assert!(rows_per_tile > 0, "row tile must be positive");
    match precision {
        ComputePrecision::F32 => (0..input.groups())
            .map(|g| flat_attention_group_kind(input, g, rows_per_tile, mask, kind))
            .collect(),
        ComputePrecision::Bf16 | ComputePrecision::F16 => (0..input.groups())
            .map(|g| flat_attention_group_half(input, g, rows_per_tile, mask, precision, kind))
            .collect(),
        ComputePrecision::Int8 => {
            crate::quantized::quantized_flat_attention_with(input, rows_per_tile, mask, kind)
        }
    }
}

/// The f32 group walk with a selectable softmax kind (Exact delegates to
/// the bit-exact legacy path).
fn flat_attention_group_kind(
    input: &MultiHeadInput,
    g: usize,
    rows_per_tile: usize,
    mask: Mask,
    kind: SoftmaxKind,
) -> Mat {
    if kind == SoftmaxKind::Exact {
        return flat_attention_group(input, g, rows_per_tile, mask);
    }
    let scale = input.scale();
    let q = &input.q[g];
    let k = &input.k[g];
    let v = &input.v[g];
    let mut out = Mat::zeros(input.seq_q, input.dk);
    let mut row_lo = 0;
    while row_lo < input.seq_q {
        let row_hi = (row_lo + rows_per_tile).min(input.seq_q);
        let mut tile = q.matmul_transposed_rows(row_lo, row_hi, k);
        mask_and_scale(
            &mut tile,
            row_hi - row_lo,
            row_lo,
            0,
            input.seq_kv,
            mask,
            scale,
        );
        // Family softmax: the row comes back *normalized* in one absorb —
        // no divide pass follows.
        for i in 0..tile.rows() {
            softmax_row_kind(tile.row_mut(i), kind);
        }
        tile.matmul_into(v, &mut out, row_lo);
        row_lo = row_hi;
    }
    out
}

/// The packed 16-bit group walk: widening-load QK^T and PV, with either
/// the exact full-row softmax or the chunked division-free recurrences.
///
/// The division-free kinds walk the key dimension *outermost*: each packed
/// K/V chunk is widened to f32 scratch exactly once, then every query-row
/// tile folds it through the wide microkernels. The per-row recurrence
/// state ([`FlashDSoftmax`]/[`LogLutSoftmax`]) persists across chunks, so
/// the loop order is free — and the packed rows never get re-decoded per
/// tile.
fn flat_attention_group_half(
    input: &MultiHeadInput,
    g: usize,
    rows_per_tile: usize,
    mask: Mask,
    precision: ComputePrecision,
    kind: SoftmaxKind,
) -> Mat {
    let dtype = precision.dtype();
    let scale = input.scale();
    let k = HalfMat::from_mat(&input.k[g], dtype);
    let v = HalfMat::from_mat(&input.v[g], dtype);
    // Q rounds through the same storage; decoded once, the panel then
    // reads f32 rows while K/V stream packed.
    let q = HalfMat::from_mat(&input.q[g], dtype).to_mat();
    let (seq_q, seq_kv) = (input.seq_q, input.seq_kv);
    let mut out = Mat::zeros(seq_q, input.dk);
    if kind == SoftmaxKind::Exact {
        // Row granularity: each tile holds complete rows, softmax is the
        // two-pass reference, and K/V stream packed through the widening
        // kernels.
        let mut row_lo = 0;
        while row_lo < seq_q {
            let row_hi = (row_lo + rows_per_tile).min(seq_q);
            let nrows = row_hi - row_lo;
            let q_rows: Vec<&[f32]> = (row_lo..row_hi).map(|i| q.row(i)).collect();
            let mut tile = Mat::zeros(nrows, seq_kv);
            half_logits_into(&q_rows, &k, 0, seq_kv, &mut tile);
            mask_and_scale(&mut tile, nrows, row_lo, 0, seq_kv, mask, scale);
            for i in 0..nrows {
                softmax_row(tile.row_mut(i));
            }
            half_attend_into(&tile, seq_kv, &v, 0, &mut out, row_lo);
            row_lo = row_hi;
        }
        return out;
    }
    // Division-free kinds, chunk-outer. Scratch: one widened K chunk, one
    // widened V chunk, one logit tile — all sized for the chunk, all
    // cache-resident across the inner row walk.
    let mut flash: Vec<FlashDSoftmax> = vec![FlashDSoftmax::new(); seq_q];
    let mut loglut: Vec<LogLutSoftmax> = vec![LogLutSoftmax::new(); seq_q];
    let chunk = KV_CHUNK.min(seq_kv);
    let mut k_chunk = Mat::zeros(chunk, input.dk);
    let mut v_chunk = Mat::zeros(chunk, input.dk);
    let mut tile = Mat::zeros(rows_per_tile.min(seq_q), chunk);
    let mut col_lo = 0;
    while col_lo < seq_kv {
        let col_hi = (col_lo + KV_CHUNK).min(seq_kv);
        let width = col_hi - col_lo;
        for j in 0..width {
            k.decode_row_into(col_lo + j, k_chunk.row_mut(j));
            v.decode_row_into(col_lo + j, v_chunk.row_mut(j));
        }
        let mut row_lo = 0;
        while row_lo < seq_q {
            let row_hi = (row_lo + rows_per_tile).min(seq_q);
            let nrows = row_hi - row_lo;
            wide_logits_into(&q, row_lo, row_hi, &k_chunk, width, &mut tile);
            mask_and_scale(&mut tile, nrows, row_lo, col_lo, width, mask, scale);
            for r in 0..nrows {
                let row = &mut tile.row_mut(r)[..width];
                let carry = match kind {
                    SoftmaxKind::FlashD => flash[row_lo + r].absorb(row),
                    _ => loglut[row_lo + r].absorb(row),
                };
                if carry != 1.0 {
                    for a in out.row_mut(row_lo + r) {
                        *a *= carry;
                    }
                }
            }
            wide_attend_acc(&tile, nrows, width, &v_chunk, &mut out, row_lo);
            row_lo = row_hi;
        }
        col_lo = col_hi;
    }
    out
}

/// Masks and scales the first `nrows` rows of a logit tile in place:
/// `tile[r][j]` covers query row `row_lo + r` and key column `col_lo + j`,
/// for `j < width`. Rows past `nrows` are scratch and left alone.
fn mask_and_scale(
    tile: &mut Mat,
    nrows: usize,
    row_lo: usize,
    col_lo: usize,
    width: usize,
    mask: Mask,
    scale: f32,
) {
    for i in 0..nrows {
        let qi = row_lo + i;
        for (j, x) in tile.row_mut(i)[..width].iter_mut().enumerate() {
            *x = if mask.allows(qi, col_lo + j) {
                *x * scale
            } else {
                f32::NEG_INFINITY
            };
        }
    }
}

/// The fused execution for one (batch, head) group — the unit the parallel
/// kernel distributes across threads.
pub(crate) fn flat_attention_group(
    input: &MultiHeadInput,
    g: usize,
    rows_per_tile: usize,
    mask: Mask,
) -> Mat {
    let scale = input.scale();
    let q = &input.q[g];
    let k = &input.k[g];
    let v = &input.v[g];
    let mut out = Mat::zeros(input.seq_q, input.dk);
    let mut row_lo = 0;
    while row_lo < input.seq_q {
        let row_hi = (row_lo + rows_per_tile).min(input.seq_q);
        // Stage L: one FLAT-tile of logits, complete rows only, computed
        // straight from Q's rows (no row_slice copy).
        let mut tile = q.matmul_transposed_rows(row_lo, row_hi, k);
        for i in 0..tile.rows() {
            let qi = row_lo + i;
            for (j, x) in tile.row_mut(i).iter_mut().enumerate() {
                *x = if mask.allows(qi, j) {
                    *x * scale
                } else {
                    f32::NEG_INFINITY
                };
            }
        }
        // SFU: softmax inside the on-chip slice.
        for i in 0..tile.rows() {
            softmax_row(tile.row_mut(i));
        }
        // Stage A: consume the slice immediately, writing the output rows
        // this tile owns in place.
        tile.matmul_into(v, &mut out, row_lo);
        row_lo = row_hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_attention;

    fn assert_matches_naive(input: &MultiHeadInput, rows: usize, mask: Mask) {
        let fused = flat_attention(input, rows, mask);
        let naive = naive_attention(input, mask);
        for (g, (f, n)) in fused.iter().zip(&naive).enumerate() {
            let d = f.max_abs_diff(n);
            assert!(d < 1e-5, "group {g}, R={rows}: diff {d}");
        }
    }

    #[test]
    fn equivalent_across_tile_sizes() {
        let input = MultiHeadInput::random(2, 2, 24, 24, 8, 17);
        for rows in [1, 2, 3, 8, 24, 100] {
            assert_matches_naive(&input, rows, Mask::None);
        }
    }

    #[test]
    fn equivalent_under_causal_mask() {
        let input = MultiHeadInput::random(1, 3, 16, 16, 4, 19);
        for rows in [1, 5, 16] {
            assert_matches_naive(&input, rows, Mask::Causal);
        }
    }

    #[test]
    fn equivalent_for_cross_attention() {
        let input = MultiHeadInput::random(2, 1, 6, 40, 8, 23);
        for rows in [1, 4, 6] {
            assert_matches_naive(&input, rows, Mask::None);
        }
    }

    #[test]
    fn non_dividing_tile_sizes_handle_the_tail() {
        let input = MultiHeadInput::random(1, 1, 17, 17, 4, 29);
        assert_matches_naive(&input, 5, Mask::None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_rejected() {
        let input = MultiHeadInput::random(1, 1, 4, 4, 2, 1);
        let _ = flat_attention(&input, 0, Mask::None);
    }

    #[test]
    fn f32_exact_with_variant_is_byte_identical() {
        let input = MultiHeadInput::random(2, 2, 24, 24, 8, 17);
        let reference = flat_attention(&input, 8, Mask::Causal);
        let with = flat_attention_with(
            &input,
            8,
            Mask::Causal,
            ComputePrecision::F32,
            SoftmaxKind::Exact,
        );
        for (a, b) in reference.iter().zip(&with) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn every_precision_and_kind_tracks_naive() {
        let input = MultiHeadInput::random(1, 2, 40, 40, 8, 41);
        let exact = naive_attention(&input, Mask::None);
        for &p in ComputePrecision::all() {
            let precision_bound = match p {
                ComputePrecision::F32 => 1e-4,
                ComputePrecision::Bf16 => 2e-2,
                ComputePrecision::F16 => 5e-3,
                ComputePrecision::Int8 => 0.12,
            };
            for kind in [SoftmaxKind::Exact, SoftmaxKind::FlashD, SoftmaxKind::LogLut] {
                // Precision (storage) error and softmax-kind (algorithm)
                // error are independent contributions.
                let kind_bound = match kind {
                    SoftmaxKind::LogLut => 5e-3,
                    _ => 2e-4,
                };
                let bound = precision_bound + kind_bound;
                let out = flat_attention_with(&input, 8, Mask::None, p, kind);
                for (g, (o, e)) in out.iter().zip(&exact).enumerate() {
                    let d = o.max_abs_diff(e);
                    assert!(d < bound, "{p}/{kind} group {g}: diff {d}");
                }
            }
        }
    }

    #[test]
    fn half_paths_handle_causal_masks_and_ragged_tiles() {
        let input = MultiHeadInput::random(1, 1, 17, 17, 4, 43);
        let exact = naive_attention(&input, Mask::Causal);
        for p in [ComputePrecision::Bf16, ComputePrecision::F16] {
            for kind in [SoftmaxKind::Exact, SoftmaxKind::FlashD, SoftmaxKind::LogLut] {
                let out = flat_attention_with(&input, 5, Mask::Causal, p, kind);
                let d = out[0].max_abs_diff(&exact[0]);
                assert!(d < 2e-2, "{p}/{kind}: diff {d}");
            }
        }
    }

    #[test]
    fn chunked_walk_crosses_kv_chunk_boundaries() {
        // seq_kv > KV_CHUNK so the FLASH-D walk carries across chunks.
        let input = MultiHeadInput::random(1, 1, 4, KV_CHUNK + 37, 8, 47);
        let exact = naive_attention(&input, Mask::None);
        let out = flat_attention_with(
            &input,
            4,
            Mask::None,
            ComputePrecision::Bf16,
            SoftmaxKind::FlashD,
        );
        let d = out[0].max_abs_diff(&exact[0]);
        assert!(d < 2e-2, "diff {d}");
    }
}
