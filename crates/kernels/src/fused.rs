//! The FLAT fused execution, numerically: row-granularity tiles of the
//! logit tensor are computed, softmaxed, and consumed without ever
//! materializing the full `[N, N]` matrix.

use crate::{softmax_row, Mask, Mat, MultiHeadInput};

/// FLAT row-granularity fused attention.
///
/// For each (batch, head) group, iterate over row groups of `rows_per_tile`
/// query rows (one FLAT-tile per iteration, exactly the §4.3 walk-through):
///
/// 1. **Stage L** — compute the tile's logit slice `S = Q_r · Kᵀ` (shape
///    `[R, seq_kv]`; the slice holds *complete* rows, which is what makes
///    the softmax exact — this is FLAT's row-granularity invariant),
/// 2. **SFU** — softmax each row of the slice in place,
/// 3. **Stage A** — accumulate `O_r = S · V` into the output rows.
///
/// Peak live intermediate footprint is `R × seq_kv` instead of
/// `seq_q × seq_kv`: the `O(N²) → O(N)` reduction of Table 2, realized in
/// actual arithmetic. The result is bit-for-bit comparable to
/// [`naive_attention`](crate::naive_attention) up to f32 rounding.
///
/// # Panics
///
/// Panics if `rows_per_tile` is zero.
///
/// # Example
///
/// ```
/// use flat_kernels::{flat_attention, naive_attention, Mask, MultiHeadInput};
///
/// let input = MultiHeadInput::random(1, 2, 32, 32, 8, 3);
/// let fused = flat_attention(&input, 4, Mask::None);
/// let naive = naive_attention(&input, Mask::None);
/// for (f, n) in fused.iter().zip(&naive) {
///     assert!(f.max_abs_diff(n) < 1e-5);
/// }
/// ```
#[must_use]
pub fn flat_attention(input: &MultiHeadInput, rows_per_tile: usize, mask: Mask) -> Vec<Mat> {
    assert!(rows_per_tile > 0, "row tile must be positive");
    (0..input.groups())
        .map(|g| flat_attention_group(input, g, rows_per_tile, mask))
        .collect()
}

/// The fused execution for one (batch, head) group — the unit the parallel
/// kernel distributes across threads.
pub(crate) fn flat_attention_group(
    input: &MultiHeadInput,
    g: usize,
    rows_per_tile: usize,
    mask: Mask,
) -> Mat {
    let scale = input.scale();
    let q = &input.q[g];
    let k = &input.k[g];
    let v = &input.v[g];
    let mut out = Mat::zeros(input.seq_q, input.dk);
    let mut row_lo = 0;
    while row_lo < input.seq_q {
        let row_hi = (row_lo + rows_per_tile).min(input.seq_q);
        // Stage L: one FLAT-tile of logits, complete rows only, computed
        // straight from Q's rows (no row_slice copy).
        let mut tile = q.matmul_transposed_rows(row_lo, row_hi, k);
        for i in 0..tile.rows() {
            let qi = row_lo + i;
            for (j, x) in tile.row_mut(i).iter_mut().enumerate() {
                *x = if mask.allows(qi, j) {
                    *x * scale
                } else {
                    f32::NEG_INFINITY
                };
            }
        }
        // SFU: softmax inside the on-chip slice.
        for i in 0..tile.rows() {
            softmax_row(tile.row_mut(i));
        }
        // Stage A: consume the slice immediately, writing the output rows
        // this tile owns in place.
        tile.matmul_into(v, &mut out, row_lo);
        row_lo = row_hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_attention;

    fn assert_matches_naive(input: &MultiHeadInput, rows: usize, mask: Mask) {
        let fused = flat_attention(input, rows, mask);
        let naive = naive_attention(input, mask);
        for (g, (f, n)) in fused.iter().zip(&naive).enumerate() {
            let d = f.max_abs_diff(n);
            assert!(d < 1e-5, "group {g}, R={rows}: diff {d}");
        }
    }

    #[test]
    fn equivalent_across_tile_sizes() {
        let input = MultiHeadInput::random(2, 2, 24, 24, 8, 17);
        for rows in [1, 2, 3, 8, 24, 100] {
            assert_matches_naive(&input, rows, Mask::None);
        }
    }

    #[test]
    fn equivalent_under_causal_mask() {
        let input = MultiHeadInput::random(1, 3, 16, 16, 4, 19);
        for rows in [1, 5, 16] {
            assert_matches_naive(&input, rows, Mask::Causal);
        }
    }

    #[test]
    fn equivalent_for_cross_attention() {
        let input = MultiHeadInput::random(2, 1, 6, 40, 8, 23);
        for rows in [1, 4, 6] {
            assert_matches_naive(&input, rows, Mask::None);
        }
    }

    #[test]
    fn non_dividing_tile_sizes_handle_the_tail() {
        let input = MultiHeadInput::random(1, 1, 17, 17, 4, 29);
        assert_matches_naive(&input, 5, Mask::None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_rejected() {
        let input = MultiHeadInput::random(1, 1, 4, 4, 2, 1);
        let _ = flat_attention(&input, 0, Mask::None);
    }
}
