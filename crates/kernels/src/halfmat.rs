//! Packed 16-bit matrices with widening-load microkernels.
//!
//! [`HalfMat`] stores elements as raw `u16` words (f16 or bf16), half the
//! bytes of [`Mat`]. The compute kernels stream the packed words and widen
//! to f32 in registers — each cache line feeds twice the elements of the
//! f32 layout, which is the bandwidth half of the mixed-precision win; the
//! decode is a shift (bf16) or a short bit-fixup (f16) that the compiler
//! vectorizes alongside the FMA stream.
//!
//! The kernels are shaped so every packed row is decoded **once** per use
//! site: QK^T decodes each K row into an on-stack scratch and runs it
//! against the whole query row panel; PV decodes each V row once and
//! scatters it into all accumulator rows.

use crate::Mat;
use flat_tensor::half::{bf16_bits_to_f32, f16_bits_to_f32, f32_to_bf16_bits, f32_to_f16_bits};
use flat_tensor::{Bytes, DataType};

/// Dense `rows × cols` matrix packed at 16 bits per element.
///
/// # Example
///
/// ```
/// use flat_kernels::{HalfMat, Mat};
/// use flat_tensor::DataType;
///
/// let m = Mat::from_fn(4, 8, |i, j| (i + j) as f32 * 0.25);
/// let h = HalfMat::from_mat(&m, DataType::Bf16);
/// assert_eq!(h.size().as_u64() * 2, 4 * 8 * 4); // half the f32 bytes
/// assert!(h.to_mat().max_abs_diff(&m) < 1e-2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HalfMat {
    rows: usize,
    cols: usize,
    dtype: DataType,
    bits: Vec<u16>,
}

impl HalfMat {
    /// Packs an f32 matrix (round-to-nearest-even per element).
    ///
    /// # Panics
    ///
    /// Panics unless `dtype` is [`DataType::Fp16`] or [`DataType::Bf16`].
    #[must_use]
    pub fn from_mat(m: &Mat, dtype: DataType) -> Self {
        let bits = match dtype {
            DataType::Bf16 => m.as_slice().iter().map(|&x| f32_to_bf16_bits(x)).collect(),
            DataType::Fp16 => m.as_slice().iter().map(|&x| f32_to_f16_bits(x)).collect(),
            other => panic!("HalfMat holds 16-bit floats, not {other}"),
        };
        HalfMat {
            rows: m.rows(),
            cols: m.cols(),
            dtype,
            bits,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The storage precision (`Fp16` or `Bf16`).
    #[must_use]
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Packed storage footprint.
    #[must_use]
    pub fn size(&self) -> Bytes {
        Bytes::new(self.bits.len() as u64 * 2)
    }

    /// The packed words of row `i`.
    #[must_use]
    pub fn row_bits(&self, i: usize) -> &[u16] {
        &self.bits[i * self.cols..(i + 1) * self.cols]
    }

    /// Widens row `i` into `out` (the software widening load).
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly one row wide.
    pub fn decode_row_into(&self, i: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "scratch must be one row wide");
        let src = self.row_bits(i);
        if self.dtype == DataType::Bf16 {
            for (o, &b) in out.iter_mut().zip(src) {
                *o = bf16_bits_to_f32(b);
            }
        } else {
            for (o, &b) in out.iter_mut().zip(src) {
                *o = f16_bits_to_f32(b);
            }
        }
    }

    /// Decodes the whole matrix back to f32 — the element values the
    /// packed kernels actually compute with.
    #[must_use]
    pub fn to_mat(&self) -> Mat {
        let mut out = Mat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            self.decode_row_into(i, out.row_mut(i));
        }
        out
    }
}

/// `q_rows · kᵀ` for a panel of f32 query rows against packed keys
/// `k[k_lo..k_hi]`, written to `tile` columns `0..(k_hi − k_lo)`.
///
/// Loop order is key-row outer: each packed K row is widened into a stack
/// scratch exactly once and then dotted against every query row of the
/// panel, so the decode cost is amortized over the whole panel while the
/// packed row occupies half the cache-line budget of an f32 row.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub(crate) fn half_logits_into(
    q_rows: &[&[f32]],
    k: &HalfMat,
    k_lo: usize,
    k_hi: usize,
    tile: &mut Mat,
) {
    assert!(k_lo < k_hi && k_hi <= k.rows(), "bad key range");
    assert!(tile.rows() >= q_rows.len(), "tile too short");
    assert!(tile.cols() >= k_hi - k_lo, "tile too narrow");
    let mut scratch = vec![0.0f32; k.cols()];
    for j in k_lo..k_hi {
        k.decode_row_into(j, &mut scratch);
        let jc = j - k_lo;
        for (r, q) in q_rows.iter().enumerate() {
            tile.set(r, jc, crate::mat::dot(q, &scratch));
        }
    }
}

/// `out_rows[r] += Σ_j weights[r][j] · v[v_lo + j]` with packed values:
/// the Attend stage under widening loads. Each packed V row is widened
/// once and folded into every accumulator row with its per-row weight.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub(crate) fn half_attend_into(
    weights: &Mat,
    cols: usize,
    v: &HalfMat,
    v_lo: usize,
    out: &mut Mat,
    out_lo: usize,
) {
    assert!(v_lo + cols <= v.rows(), "value range out of bounds");
    assert_eq!(out.cols(), v.cols(), "output width must match values");
    let mut scratch = vec![0.0f32; v.cols()];
    for j in 0..cols {
        v.decode_row_into(v_lo + j, &mut scratch);
        for r in 0..weights.rows() {
            let w = weights.at(r, j);
            if w != 0.0 {
                let acc = out.row_mut(out_lo + r);
                for (a, &vv) in acc.iter_mut().zip(&scratch) {
                    *a = w.mul_add(vv, *a);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packed_logits_match_rounded_f32_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let q = Mat::random(5, 16, &mut rng);
        let k = Mat::random(9, 16, &mut rng);
        for dt in [DataType::Bf16, DataType::Fp16] {
            let kh = HalfMat::from_mat(&k, dt);
            // Reference: f32 GEMM over the decoded (storage-rounded) values.
            let reference = q.matmul_transposed(&kh.to_mat());
            let mut tile = Mat::zeros(5, 9);
            let q_rows: Vec<&[f32]> = (0..5).map(|i| q.row(i)).collect();
            half_logits_into(&q_rows, &kh, 0, 9, &mut tile);
            assert_eq!(tile.max_abs_diff(&reference), 0.0, "{dt}");
        }
    }

    #[test]
    fn packed_attend_matches_rounded_f32_reference() {
        let mut rng = StdRng::seed_from_u64(8);
        let w = Mat::random(4, 6, &mut rng);
        let v = Mat::random(6, 8, &mut rng);
        for dt in [DataType::Bf16, DataType::Fp16] {
            let vh = HalfMat::from_mat(&v, dt);
            let reference = w.matmul(&vh.to_mat());
            let mut out = Mat::zeros(4, 8);
            half_attend_into(&w, 6, &vh, 0, &mut out, 0);
            assert!(out.max_abs_diff(&reference) < 1e-6, "{dt}");
        }
    }

    #[test]
    fn sub_ranges_address_the_right_rows() {
        let mut rng = StdRng::seed_from_u64(9);
        let q = Mat::random(2, 8, &mut rng);
        let k = Mat::random(10, 8, &mut rng);
        let kh = HalfMat::from_mat(&k, DataType::Bf16);
        let mut tile = Mat::zeros(2, 4);
        let q_rows: Vec<&[f32]> = (0..2).map(|i| q.row(i)).collect();
        half_logits_into(&q_rows, &kh, 3, 7, &mut tile);
        let full = q.matmul_transposed(&kh.to_mat());
        for r in 0..2 {
            for j in 0..4 {
                assert_eq!(tile.at(r, j), full.at(r, 3 + j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "16-bit")]
    fn f32_storage_rejected() {
        let _ = HalfMat::from_mat(&Mat::zeros(2, 2), DataType::Fp32);
    }
}
