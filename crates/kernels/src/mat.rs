//! A dense row-major matrix with register-tiled, cache-blocked matrix
//! multiply kernels.
//!
//! The multiply routines share two microkernels:
//!
//! * `gemm` (`C += A·B`): `MR`-row register panels over `KC`-deep
//!   contraction blocks. The innermost loop walks one row of `B` once
//!   while feeding `MR` independent `f32::mul_add` streams — a shape the
//!   compiler auto-vectorizes, with hardware FMA under
//!   `-C target-cpu=native` (see `.cargo/config.toml`).
//! * `dot` (`aᵀb`): `LANES` independent partial sums folded by a short
//!   tree reduction, used where *both* operands are contiguous along the
//!   contraction (the `Q·Kᵀ` logit shape).
//!
//! Contraction order is ascending in both kernels, so `matmul` produces
//! the same per-element accumulation sequence as the textbook triple loop
//! (FMA rounding aside), and every caller of the same routine on the same
//! rows gets bit-identical results — the property the fused/instrumented/
//! parallel attention paths rely on.

use rand::Rng;
use std::fmt;

/// Register row-panel height: C rows accumulated simultaneously, each an
/// independent FMA stream in the inner loop.
const MR: usize = 4;

/// Contraction-dimension cache block: one `KC × n` panel of `B` is walked
/// per block, sized to stay resident while all row panels revisit it.
const KC: usize = 256;

/// Independent partial-sum lanes in `dot`: breaks the FMA dependence
/// chain so the reduction vectorizes.
const LANES: usize = 8;

/// Dense `rows × cols` matrix of `f32`, row-major.
///
/// The kernels crate is first a correctness witness for the FLAT tiling,
/// but its matrix core is written as a blocked microkernel (see the
/// module docs) so kernel-vs-kernel wall-clock comparisons measure the
/// dataflows, not interpreter overhead.
///
/// # Example
///
/// ```
/// use flat_kernels::Mat;
///
/// let a = Mat::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
/// let b = Mat::identity(3);
/// let c = a.matmul(&b);
/// assert_eq!(c.at(1, 2), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// An all-zeros matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix filled by `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// The identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Mat::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// A matrix with entries drawn uniformly from `[-1, 1)`.
    #[must_use]
    pub fn random<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        Mat::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds"
        );
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds"
        );
        self.data[i * self.cols + j] = v;
    }

    /// Borrows row `i` as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `self · other`, through the blocked `gemm` microkernel.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, other.cols);
        gemm(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// `self · other`, accumulated into rows `at_row..` of `out`
    /// (overwriting them). This is the Attend-stage write path: a FLAT
    /// tile's `S · V` lands directly in the output rows it owns, with no
    /// intermediate matrix or copy-back.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if the destination rows don't fit.
    pub fn matmul_into(&self, other: &Mat, out: &mut Mat, at_row: usize) {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        assert_eq!(out.cols, other.cols, "output width must match");
        assert!(
            at_row + self.rows <= out.rows,
            "destination rows out of bounds"
        );
        let dst = &mut out.data[at_row * out.cols..(at_row + self.rows) * out.cols];
        dst.fill(0.0);
        gemm(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            dst,
        );
    }

    /// `self · otherᵀ` — the Logit operator's shape (`[m, k] × [n, k]ᵀ`).
    ///
    /// # Panics
    ///
    /// Panics when the two column counts differ.
    #[must_use]
    pub fn matmul_transposed(&self, other: &Mat) -> Mat {
        self.matmul_transposed_rows(0, self.rows, other)
    }

    /// `self[lo..hi] · otherᵀ` — one FLAT tile of logits, computed
    /// straight from the parent matrix's rows. The tile path uses this
    /// instead of `row_slice` + [`Self::matmul_transposed`]: no copy of
    /// the Q rows is ever made, and the result is bit-identical to the
    /// copying form because both run the same `dot` kernel on the same
    /// rows.
    ///
    /// # Panics
    ///
    /// Panics on an empty or out-of-bounds row range, or when the column
    /// counts differ.
    #[must_use]
    pub fn matmul_transposed_rows(&self, lo: usize, hi: usize, other: &Mat) -> Mat {
        assert!(lo < hi && hi <= self.rows, "bad row range {lo}..{hi}");
        assert_eq!(self.cols, other.cols, "contraction dimensions must agree");
        let (m, n, kdim) = (hi - lo, other.rows, self.cols);
        let a = &self.data[lo * kdim..hi * kdim];
        let mut out = Mat::zeros(m, n);
        let panels = m / MR;
        for p in 0..panels {
            let i = p * MR;
            let a0 = &a[i * kdim..(i + 1) * kdim];
            let a1 = &a[(i + 1) * kdim..(i + 2) * kdim];
            let a2 = &a[(i + 2) * kdim..(i + 3) * kdim];
            let a3 = &a[(i + 3) * kdim..(i + 4) * kdim];
            let crows = &mut out.data[i * n..(i + MR) * n];
            for j in 0..n {
                // One streamed K row feeds all MR query rows of the panel.
                let brow = &other.data[j * kdim..(j + 1) * kdim];
                crows[j] = dot(a0, brow);
                crows[n + j] = dot(a1, brow);
                crows[2 * n + j] = dot(a2, brow);
                crows[3 * n + j] = dot(a3, brow);
            }
        }
        for i in panels * MR..m {
            let arow = &a[i * kdim..(i + 1) * kdim];
            let crow = &mut out.data[i * n..(i + 1) * n];
            for (j, c) in crow.iter_mut().enumerate() {
                *c = dot(arow, &other.data[j * kdim..(j + 1) * kdim]);
            }
        }
        out
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self.at(j, i))
    }

    /// A copy of rows `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    #[must_use]
    pub fn row_slice(&self, lo: usize, hi: usize) -> Mat {
        assert!(lo < hi && hi <= self.rows, "bad row range {lo}..{hi}");
        Mat {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Largest absolute element-wise difference from `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Mat) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Raw data, row-major.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat[{}x{}]", self.rows, self.cols)
    }
}

/// `C += A·B` with `A: [m, kdim]`, `B: [kdim, n]`, `C: [m, n]`, all
/// row-major. Register-tiled over `MR`-row panels of `C` and
/// cache-blocked over `KC`-deep slices of the contraction: each `B` panel
/// is streamed once per row-panel pass while `MR` accumulator rows stay
/// hot. Contraction order is ascending for every `(i, j)`, matching the
/// textbook loop nest.
fn gemm(a: &[f32], m: usize, kdim: usize, b: &[f32], n: usize, c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(b.len(), kdim * n);
    debug_assert_eq!(c.len(), m * n);
    let panels = m / MR;
    let mut l_blk = 0;
    while l_blk < kdim {
        let l_end = (l_blk + KC).min(kdim);
        for p in 0..panels {
            let i = p * MR;
            let (half01, half23) = c[i * n..(i + MR) * n].split_at_mut(2 * n);
            let (c0, c1) = half01.split_at_mut(n);
            let (c2, c3) = half23.split_at_mut(n);
            for l in l_blk..l_end {
                let a0 = a[i * kdim + l];
                let a1 = a[(i + 1) * kdim + l];
                let a2 = a[(i + 2) * kdim + l];
                let a3 = a[(i + 3) * kdim + l];
                let brow = &b[l * n..(l + 1) * n];
                let rows = c0
                    .iter_mut()
                    .zip(c1.iter_mut())
                    .zip(c2.iter_mut().zip(c3.iter_mut()));
                for (((r0, r1), (r2, r3)), &bv) in rows.zip(brow) {
                    *r0 = a0.mul_add(bv, *r0);
                    *r1 = a1.mul_add(bv, *r1);
                    *r2 = a2.mul_add(bv, *r2);
                    *r3 = a3.mul_add(bv, *r3);
                }
            }
        }
        for i in panels * MR..m {
            let crow = &mut c[i * n..(i + 1) * n];
            for l in l_blk..l_end {
                let av = a[i * kdim + l];
                let brow = &b[l * n..(l + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv = av.mul_add(bv, *cv);
                }
            }
        }
        l_blk = l_end;
    }
}

/// Row-panel height of the wide logits microkernel: query rows advanced
/// together, each an independent `LANES`-wide FMA chain. Eight chains of
/// one 8-float vector each fit the 16-register 256-bit file with room for
/// the shared key vector — where `dot`'s single row is chain-starved and
/// anything wider spills.
const PMR: usize = 8;

/// Column-block width of the accumulating attend microkernel: output
/// columns held in registers across the whole contraction, so the hot
/// loop stores nothing.
const ANR: usize = 16;

/// `tile[r][j] = q[row_lo + r] · k[j]` for `j < k_rows` — the logit shape
/// on a decoded key chunk, register-blocked wider than [`dot`]: `PMR`
/// query rows stream each key row once, amortizing its loads eightfold.
/// Used by the mixed-precision attention walk, where the key chunk was
/// just widened out of packed storage and is cache-hot.
pub(crate) fn wide_logits_into(
    q: &Mat,
    row_lo: usize,
    row_hi: usize,
    k: &Mat,
    k_rows: usize,
    tile: &mut Mat,
) {
    debug_assert_eq!(q.cols, k.cols, "contraction dimensions must agree");
    debug_assert!(row_lo < row_hi && row_hi <= q.rows);
    debug_assert!(k_rows <= k.rows && k_rows <= tile.cols);
    let kd = q.cols;
    let nrows = row_hi - row_lo;
    let panels = nrows / PMR;
    for p in 0..panels {
        let r0 = row_lo + p * PMR;
        let rows: [&[f32]; PMR] =
            std::array::from_fn(|r| &q.data[(r0 + r) * kd..(r0 + r + 1) * kd]);
        for j in 0..k_rows {
            let b = &k.data[j * kd..(j + 1) * kd];
            let mut acc = [[0.0f32; LANES]; PMR];
            let chunks = kd / LANES;
            for ci in 0..chunks {
                let o = ci * LANES;
                let bc = &b[o..o + LANES];
                for (r, row) in rows.iter().enumerate() {
                    let ac = &row[o..o + LANES];
                    for l in 0..LANES {
                        acc[r][l] = ac[l].mul_add(bc[l], acc[r][l]);
                    }
                }
            }
            let tail_lo = chunks * LANES;
            for (r, row) in rows.iter().enumerate() {
                let mut tail = 0.0f32;
                for l in tail_lo..kd {
                    tail = row[l].mul_add(b[l], tail);
                }
                // Same even/odd tree as `dot`.
                let a = &acc[r];
                let even = (a[0] + a[4]) + (a[2] + a[6]);
                let odd = (a[1] + a[5]) + (a[3] + a[7]);
                tile.set(p * PMR + r, j, even + odd + tail);
            }
        }
    }
    for r in panels * PMR..nrows {
        let qrow = &q.data[(row_lo + r) * kd..(row_lo + r + 1) * kd];
        for j in 0..k_rows {
            tile.set(r, j, dot(qrow, &k.data[j * kd..(j + 1) * kd]));
        }
    }
}

/// `out[out_lo + r] += Σ_j w[r][j] · v[j]` for `r < nrows`, `j < width` —
/// the Attend shape on a decoded value chunk, accumulating (the online
/// softmax recurrences own the scaling of what is already in `out`).
/// Unlike `gemm`'s outer-product walk, the `MR × ANR` output block is
/// held in registers across the whole contraction: the hot loop reads one
/// value-row slice and four broadcast weights per step and stores nothing.
pub(crate) fn wide_attend_acc(
    w: &Mat,
    nrows: usize,
    width: usize,
    v: &Mat,
    out: &mut Mat,
    out_lo: usize,
) {
    debug_assert_eq!(v.cols, out.cols, "output width must match values");
    debug_assert!(width <= w.cols && width <= v.rows);
    debug_assert!(out_lo + nrows <= out.rows);
    let n = out.cols;
    let wc = w.cols;
    let c = &mut out.data[out_lo * n..(out_lo + nrows) * n];
    let panels = nrows / MR;
    let col_blocks = n / ANR;
    for p in 0..panels {
        let i = p * MR;
        for cb in 0..col_blocks {
            let c0 = cb * ANR;
            let mut acc = [[0.0f32; ANR]; MR];
            for (r, accr) in acc.iter_mut().enumerate() {
                accr.copy_from_slice(&c[(i + r) * n + c0..(i + r) * n + c0 + ANR]);
            }
            for l in 0..width {
                let a = [
                    w.data[i * wc + l],
                    w.data[(i + 1) * wc + l],
                    w.data[(i + 2) * wc + l],
                    w.data[(i + 3) * wc + l],
                ];
                let bv = &v.data[l * n + c0..l * n + c0 + ANR];
                for (r, accr) in acc.iter_mut().enumerate() {
                    for (av, &b) in accr.iter_mut().zip(bv) {
                        *av = a[r].mul_add(b, *av);
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                c[(i + r) * n + c0..(i + r) * n + c0 + ANR].copy_from_slice(accr);
            }
        }
        // Column tail past the last full ANR block.
        for r in i..i + MR {
            let lo = col_blocks * ANR;
            for l in 0..width {
                let av = w.data[r * wc + l];
                let brow = &v.data[l * n..(l + 1) * n];
                for jc in lo..n {
                    c[r * n + jc] = av.mul_add(brow[jc], c[r * n + jc]);
                }
            }
        }
    }
    // Row tail past the last full MR panel.
    for r in panels * MR..nrows {
        let crow = &mut c[r * n..(r + 1) * n];
        for l in 0..width {
            let av = w.data[r * wc + l];
            if av == 0.0 {
                continue;
            }
            let brow = &v.data[l * n..(l + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = av.mul_add(bv, *cv);
            }
        }
    }
}

/// `aᵀb` over two equal-length contiguous slices: `LANES` independent
/// `mul_add` chains (so the loop vectorizes) folded by a fixed tree
/// reduction, plus a scalar tail for lengths not divisible by `LANES`.
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    for (ca, cb) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
        for (lane, acc) in lanes.iter_mut().enumerate() {
            *acc = ca[lane].mul_add(cb[lane], *acc);
        }
    }
    let mut tail = 0.0f32;
    let ra = a.chunks_exact(LANES).remainder();
    let rb = b.chunks_exact(LANES).remainder();
    for (&x, &y) in ra.iter().zip(rb) {
        tail = x.mul_add(y, tail);
    }
    let even = (lanes[0] + lanes[4]) + (lanes[2] + lanes[6]);
    let odd = (lanes[1] + lanes[5]) + (lanes[3] + lanes[7]);
    (even + odd) + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_against_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mat::random(4, 7, &mut rng);
        assert_eq!(a.matmul(&Mat::identity(7)).max_abs_diff(&a), 0.0);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Mat::random(5, 8, &mut rng);
        let b = Mat::random(6, 8, &mut rng);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_transposed(&b);
        assert!(via_t.max_abs_diff(&direct) < 1e-5);
    }

    #[test]
    fn row_slice_copies_rows() {
        let m = Mat::from_fn(4, 3, |i, j| (i * 10 + j) as f32);
        let s = m.row_slice(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.at(0, 0), 10.0);
        assert_eq!(s.at(1, 2), 22.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let _ = Mat::zeros(2, 3).matmul(&Mat::zeros(4, 2));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Mat::random(3, 9, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    /// Independent reference: the textbook triple loop, no blocking, no
    /// FMA.
    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        Mat::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|l| a.at(i, l) * b.at(l, j)).sum()
        })
    }

    #[test]
    fn blocked_matmul_matches_naive_on_awkward_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        // Shapes straddling every blocking boundary: row panels (MR=4),
        // contraction blocks (KC=256), dot lanes (LANES=8).
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (4, 8, 4),
            (5, 9, 7),
            (13, 300, 6),
            (8, 257, 3),
        ] {
            let a = Mat::random(m, k, &mut rng);
            let b = Mat::random(k, n, &mut rng);
            let d = a.matmul(&b).max_abs_diff(&naive_matmul(&a, &b));
            assert!(d < 1e-4, "({m},{k},{n}): diff {d}");
        }
    }

    #[test]
    fn blocked_transposed_matches_naive_on_awkward_shapes() {
        let mut rng = StdRng::seed_from_u64(12);
        for (m, n, k) in [
            (1, 1, 1),
            (3, 2, 5),
            (4, 4, 8),
            (5, 7, 9),
            (6, 13, 300),
            (9, 2, 17),
        ] {
            let a = Mat::random(m, k, &mut rng);
            let b = Mat::random(n, k, &mut rng);
            let d = a
                .matmul_transposed(&b)
                .max_abs_diff(&naive_matmul(&a, &b.transpose()));
            assert!(d < 1e-4, "({m},{n},{k}): diff {d}");
        }
    }

    #[test]
    fn transposed_rows_bit_identical_to_row_slice_form() {
        let mut rng = StdRng::seed_from_u64(13);
        let q = Mat::random(23, 16, &mut rng);
        let k = Mat::random(19, 16, &mut rng);
        for (lo, hi) in [(0, 23), (0, 4), (5, 10), (20, 23)] {
            let no_copy = q.matmul_transposed_rows(lo, hi, &k);
            let copying = q.row_slice(lo, hi).matmul_transposed(&k);
            assert_eq!(no_copy.max_abs_diff(&copying), 0.0, "rows {lo}..{hi}");
        }
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let mut rng = StdRng::seed_from_u64(14);
        let s = Mat::random(5, 11, &mut rng);
        let v = Mat::random(11, 6, &mut rng);
        let expect = s.matmul(&v);
        let mut out = Mat::zeros(12, 6);
        s.matmul_into(&v, &mut out, 3);
        for i in 0..5 {
            assert_eq!(out.row(3 + i), expect.row(i));
        }
        // Rows outside the destination stay untouched.
        assert!(out.row(0).iter().all(|&x| x == 0.0));
        assert!(out.row(11).iter().all(|&x| x == 0.0));
    }
}
