//! A minimal dense row-major matrix for the reference kernels.

use rand::Rng;
use std::fmt;

/// Dense `rows × cols` matrix of `f32`, row-major.
///
/// Deliberately simple: the kernels crate is a correctness witness for the
/// FLAT tiling, not a performance library.
///
/// # Example
///
/// ```
/// use flat_kernels::Mat;
///
/// let a = Mat::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
/// let b = Mat::identity(3);
/// let c = a.matmul(&b);
/// assert_eq!(c.at(1, 2), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// An all-zeros matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A matrix filled by `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// The identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Mat::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// A matrix with entries drawn uniformly from `[-1, 1)`.
    #[must_use]
    pub fn random<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        Mat::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.rows && j < self.cols, "index ({i}, {j}) out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        assert!(i < self.rows && j < self.cols, "index ({i}, {j}) out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Borrows row `i` as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.data[i * self.cols + l];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[l * other.cols..(l + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (c, &b) in crow.iter_mut().zip(orow) {
                    *c += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` — the Logit operator's shape (`[m, k] × [n, k]ᵀ`).
    ///
    /// # Panics
    ///
    /// Panics when the two column counts differ.
    #[must_use]
    pub fn matmul_transposed(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "contraction dimensions must agree");
        Mat::from_fn(self.rows, other.rows, |i, j| {
            self.row(i).iter().zip(other.row(j)).map(|(a, b)| a * b).sum()
        })
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self.at(j, i))
    }

    /// A copy of rows `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    #[must_use]
    pub fn row_slice(&self, lo: usize, hi: usize) -> Mat {
        assert!(lo < hi && hi <= self.rows, "bad row range {lo}..{hi}");
        Mat {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Largest absolute element-wise difference from `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Mat) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Raw data, row-major.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_against_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mat::random(4, 7, &mut rng);
        assert_eq!(a.matmul(&Mat::identity(7)).max_abs_diff(&a), 0.0);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Mat::random(5, 8, &mut rng);
        let b = Mat::random(6, 8, &mut rng);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_transposed(&b);
        assert!(via_t.max_abs_diff(&direct) < 1e-5);
    }

    #[test]
    fn row_slice_copies_rows() {
        let m = Mat::from_fn(4, 3, |i, j| (i * 10 + j) as f32);
        let s = m.row_slice(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.at(0, 0), 10.0);
        assert_eq!(s.at(1, 2), 22.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let _ = Mat::zeros(2, 3).matmul(&Mat::zeros(4, 2));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Mat::random(3, 9, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }
}
