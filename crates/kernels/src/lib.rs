//! Numerical reference kernels: the arithmetic witness that FLAT's tiling
//! is exact.
//!
//! The cost model in `flat-core` argues about cycles and bytes; this crate
//! argues about *values*. It implements
//!
//! * [`naive_attention`] — the baseline that materializes the full
//!   `O(N²)` logit tensor,
//! * [`flat_attention`] — the FLAT row-granularity fused execution
//!   (compute a `[R, N]` logit slice, softmax it, consume it, discard it),
//! * [`streaming_attention`] — key-dimension tiling with
//!   [`OnlineSoftmax`] rescaling, the extension FLAT's row-granularity
//!   constraint points at (and FlashAttention later built on),
//! * [`decode_attention`] — the autoregressive serving step: one query
//!   row folded against a growing KV set in a single online-softmax pass
//!   (`O(N)` per generated token), consumed by the `flat-serve` runtime,
//!
//! and proves, by unit and property tests, that all three agree to f32
//! rounding for every shape, tile size, and mask — including
//! cross-attention (`seq_q ≠ seq_kv`) and causal decoding.
//!
//! On top of the f32 reference sits the **mixed-precision kernel family**:
//! every execution has a `_with` variant taking a [`ComputePrecision`]
//! (f32, bf16/f16 packed storage with widening loads via [`HalfMat`], or
//! int8 with an int8 score matrix) and a
//! [`SoftmaxKind`](flat_tensor::SoftmaxKind) selecting the softmax
//! algorithm — exact two-pass, [`FlashDSoftmax`] (division folded into the
//! accumulation recurrence, no normalize pass), or [`LogLutSoftmax`]
//! (log2-domain adds + LUT, no `exp` and no divider).
//!
//! # Example
//!
//! ```
//! use flat_kernels::{flat_attention, naive_attention, Mask, MultiHeadInput};
//!
//! let input = MultiHeadInput::random(2, 4, 64, 64, 16, 1);
//! let naive = naive_attention(&input, Mask::None);
//! let fused = flat_attention(&input, 8, Mask::None); // R-Gran, R = 8
//! for (f, n) in fused.iter().zip(&naive) {
//!     assert!(f.max_abs_diff(n) < 1e-5);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attention;
mod decode;
mod fused;
mod halfmat;
mod instrumented;
mod mat;
mod parallel;
mod precision;
mod quantized;
mod softmax;
mod softmax_family;
mod streaming;

pub(crate) use fused::flat_attention_group;

pub use attention::{naive_attention, Mask, MultiHeadInput};
pub use decode::{decode_attention, decode_attention_with};
pub use fused::{flat_attention, flat_attention_with};
pub use halfmat::HalfMat;
pub use instrumented::{
    instrumented_flat_attention, instrumented_flat_attention_traced, ExecutionStats,
};
pub use mat::Mat;
pub use parallel::parallel_flat_attention;
pub use precision::{online_softmax_bf16, round_bf16, softmax_error, softmax_row_bf16};
pub use quantized::{quantized_flat_attention, quantized_flat_attention_with, QuantizedMat};
pub use softmax::{softmax_row, OnlineSoftmax};
pub use softmax_family::{
    exp2_lut, fast_exp, fast_exp2, log2_add_lut, softmax_row_kind, ComputePrecision, FlashDSoftmax,
    LogLutSoftmax,
};
pub use streaming::{streaming_attention, streaming_attention_with};
