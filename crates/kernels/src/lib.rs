//! Numerical reference kernels: the arithmetic witness that FLAT's tiling
//! is exact.
//!
//! The cost model in `flat-core` argues about cycles and bytes; this crate
//! argues about *values*. It implements
//!
//! * [`naive_attention`] — the baseline that materializes the full
//!   `O(N²)` logit tensor,
//! * [`flat_attention`] — the FLAT row-granularity fused execution
//!   (compute a `[R, N]` logit slice, softmax it, consume it, discard it),
//! * [`streaming_attention`] — key-dimension tiling with
//!   [`OnlineSoftmax`] rescaling, the extension FLAT's row-granularity
//!   constraint points at (and FlashAttention later built on),
//! * [`decode_attention`] — the autoregressive serving step: one query
//!   row folded against a growing KV set in a single online-softmax pass
//!   (`O(N)` per generated token), consumed by the `flat-serve` runtime,
//!
//! and proves, by unit and property tests, that all three agree to f32
//! rounding for every shape, tile size, and mask — including
//! cross-attention (`seq_q ≠ seq_kv`) and causal decoding.
//!
//! # Example
//!
//! ```
//! use flat_kernels::{flat_attention, naive_attention, Mask, MultiHeadInput};
//!
//! let input = MultiHeadInput::random(2, 4, 64, 64, 16, 1);
//! let naive = naive_attention(&input, Mask::None);
//! let fused = flat_attention(&input, 8, Mask::None); // R-Gran, R = 8
//! for (f, n) in fused.iter().zip(&naive) {
//!     assert!(f.max_abs_diff(n) < 1e-5);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attention;
mod decode;
mod fused;
mod instrumented;
mod mat;
mod parallel;
mod precision;
mod quantized;
mod softmax;
mod streaming;

pub(crate) use fused::flat_attention_group;

pub use attention::{naive_attention, Mask, MultiHeadInput};
pub use decode::decode_attention;
pub use fused::flat_attention;
pub use instrumented::{
    instrumented_flat_attention, instrumented_flat_attention_traced, ExecutionStats,
};
pub use mat::Mat;
pub use parallel::parallel_flat_attention;
pub use precision::{online_softmax_bf16, round_bf16, softmax_error, softmax_row_bf16};
pub use quantized::{quantized_flat_attention, QuantizedMat};
pub use softmax::{softmax_row, OnlineSoftmax};
pub use streaming::streaming_attention;
