//! Multi-threaded fused attention: the (batch, head) groups of
//! [`flat_attention`](crate::flat_attention) are embarrassingly parallel —
//! exactly the property the FLAT-tile cross-loop exploits spatially on an
//! accelerator — so the reference kernel parallelizes the same way on CPU
//! threads.

use crate::{flat_attention_group, Mask, Mat, MultiHeadInput};
use rayon::prelude::*;

/// [`flat_attention`](crate::flat_attention) with the (batch, head)
/// groups fanned out over the process-wide worker pool. Produces
/// bit-identical results to the single-threaded kernel (each group's
/// arithmetic is untouched, and groups land in their serial order).
///
/// `threads` is a concurrency *hint* kept for API stability: it is
/// validated, but scheduling is owned by the shared pool, which sizes
/// itself to the host once instead of spawning OS threads per call.
///
/// # Panics
///
/// Panics if `rows_per_tile` or `threads` is zero.
///
/// # Example
///
/// ```
/// use flat_kernels::{flat_attention, parallel_flat_attention, Mask, MultiHeadInput};
///
/// let input = MultiHeadInput::random(2, 8, 64, 64, 16, 9);
/// let serial = flat_attention(&input, 8, Mask::None);
/// let parallel = parallel_flat_attention(&input, 8, Mask::None, 4);
/// for (s, p) in serial.iter().zip(&parallel) {
///     assert_eq!(s.max_abs_diff(p), 0.0);
/// }
/// ```
#[must_use]
pub fn parallel_flat_attention(
    input: &MultiHeadInput,
    rows_per_tile: usize,
    mask: Mask,
    threads: usize,
) -> Vec<Mat> {
    assert!(rows_per_tile > 0, "row tile must be positive");
    assert!(threads > 0, "need at least one thread");
    (0..input.groups())
        .into_par_iter()
        .map(|g| flat_attention_group(input, g, rows_per_tile, mask))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flat_attention, naive_attention};

    #[test]
    fn identical_to_serial_for_any_thread_count() {
        let input = MultiHeadInput::random(2, 3, 32, 32, 8, 21);
        let serial = flat_attention(&input, 8, Mask::None);
        for threads in [1usize, 2, 3, 6, 16] {
            let par = parallel_flat_attention(&input, 8, Mask::None, threads);
            for (s, p) in serial.iter().zip(&par) {
                assert_eq!(s.max_abs_diff(p), 0.0, "threads = {threads}");
            }
        }
    }

    #[test]
    fn correct_under_masks_and_cross_attention() {
        let input = MultiHeadInput::random(1, 4, 16, 40, 8, 23);
        let exact = naive_attention(&input, Mask::None);
        let par = parallel_flat_attention(&input, 4, Mask::None, 3);
        for (e, p) in exact.iter().zip(&par) {
            assert!(e.max_abs_diff(p) < 1e-4);
        }
        let causal_in = MultiHeadInput::random(2, 2, 20, 20, 4, 27);
        let exact = naive_attention(&causal_in, Mask::Causal);
        let par = parallel_flat_attention(&causal_in, 8, Mask::Causal, 2);
        for (e, p) in exact.iter().zip(&par) {
            assert!(e.max_abs_diff(p) < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let input = MultiHeadInput::random(1, 1, 4, 4, 2, 1);
        let _ = parallel_flat_attention(&input, 2, Mask::None, 0);
    }
}
