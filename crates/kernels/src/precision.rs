//! Low-precision numerics of the two softmax strategies.
//!
//! FLAT's row-granularity constraint buys an *exact* softmax: every row is
//! complete before normalization, so the only rounding is the final scale.
//! The streaming (online) alternative repeatedly rescales its running
//! accumulators — each new running max multiplies every previous weight by
//! `exp(old − new)` — and in reduced precision those rescalings compound.
//! This module emulates bf16 arithmetic in both paths so the difference is
//! measurable, which is a concrete numerical argument for the paper's
//! choice of row granularity.

/// Rounds an `f32` to bfloat16 precision (8-bit mantissa,
/// round-to-nearest-even), returned as `f32`.
///
/// **Deprecated name**: this is now a thin wrapper over
/// [`flat_tensor::half::round_bf16`], the single bf16 rounding
/// implementation the packed-storage kernels use; prefer calling that
/// directly. Kept so existing callers keep compiling.
///
/// # Example
///
/// ```
/// use flat_kernels::round_bf16;
///
/// // bf16 has ~3 significant decimal digits.
/// let x = round_bf16(1.2345678);
/// assert!((x - 1.234).abs() < 0.01);
/// assert_eq!(round_bf16(0.0), 0.0);
/// ```
#[must_use]
pub fn round_bf16(x: f32) -> f32 {
    flat_tensor::half::round_bf16(x)
}

/// Two-pass softmax with every intermediate rounded to bf16 — the FLAT
/// (complete-row) path under reduced precision.
///
/// **Deprecated name**: the kernel family's production bf16 path is
/// [`flat_attention_with`](crate::flat_attention_with) with
/// [`ComputePrecision::Bf16`](crate::ComputePrecision); this helper
/// remains as the *emulation study* used by the row-granularity accuracy
/// argument (every intermediate rounds, not just storage).
pub fn softmax_row_bf16(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = round_bf16((*v - max).exp());
        sum = round_bf16(sum + *v);
    }
    let inv = round_bf16(1.0 / sum);
    for v in row.iter_mut() {
        *v = round_bf16(*v * inv);
    }
}

/// Online softmax over chunks with every intermediate rounded to bf16 —
/// the streaming path under reduced precision (running max, running sum,
/// and every rescaling of previously produced weights all round). Returns
/// the normalized weights.
#[must_use]
pub fn online_softmax_bf16(row: &[f32], chunk: usize) -> Vec<f32> {
    assert!(chunk > 0, "chunk must be positive");
    let mut max = f32::NEG_INFINITY;
    let mut sum = 0.0f32;
    let mut weights: Vec<f32> = Vec::with_capacity(row.len());
    for c in row.chunks(chunk) {
        let cmax = c.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let new_max = max.max(cmax);
        if new_max > max && max != f32::NEG_INFINITY {
            let scale = round_bf16((max - new_max).exp());
            sum = round_bf16(sum * scale);
            for w in &mut weights {
                *w = round_bf16(*w * scale);
            }
        }
        max = new_max;
        for &x in c {
            let w = round_bf16((x - max).exp());
            weights.push(w);
            sum = round_bf16(sum + w);
        }
    }
    let inv = round_bf16(1.0 / sum);
    for w in &mut weights {
        *w = round_bf16(*w * inv);
    }
    weights
}

/// Maximum absolute error of a low-precision softmax against the exact
/// f32 two-pass reference.
#[must_use]
pub fn softmax_error(row: &[f32], low_precision: &[f32]) -> f32 {
    let mut exact = row.to_vec();
    crate::softmax_row(&mut exact);
    exact
        .iter()
        .zip(low_precision)
        .map(|(e, l)| (e - l).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bf16_rounding_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-1e6..1e6);
            let r = round_bf16(x);
            assert_eq!(round_bf16(r), r);
            // Relative error bounded by bf16's epsilon (2^-8).
            if x != 0.0 {
                assert!(((r - x) / x).abs() <= 1.0 / 256.0, "{x} -> {r}");
            }
        }
    }

    #[test]
    fn both_paths_stay_distributions() {
        let mut rng = StdRng::seed_from_u64(5);
        let row: Vec<f32> = (0..256).map(|_| rng.gen_range(-8.0..8.0)).collect();
        let mut two_pass = row.clone();
        softmax_row_bf16(&mut two_pass);
        let online = online_softmax_bf16(&row, 16);
        for v in two_pass.iter().chain(&online) {
            assert!((0.0..=1.001).contains(v));
        }
        let s1: f32 = two_pass.iter().sum();
        let s2: f32 = online.iter().sum();
        assert!((s1 - 1.0).abs() < 0.05, "two-pass sum {s1}");
        assert!((s2 - 1.0).abs() < 0.05, "online sum {s2}");
    }

    /// The headline: averaged over random rows, the complete-row (FLAT)
    /// softmax is at least as accurate in bf16 as the online rescaling
    /// path — the numerical dividend of row granularity.
    #[test]
    fn complete_rows_are_at_least_as_accurate() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut err_two_pass, mut err_online) = (0.0f64, 0.0f64);
        for _ in 0..200 {
            // Ascending-ish rows force the online path to rescale often.
            let mut row: Vec<f32> = (0..128)
                .map(|i| i as f32 * 0.05 + rng.gen_range(-1.0f32..1.0))
                .collect();
            let online = online_softmax_bf16(&row, 4);
            err_online += f64::from(softmax_error(&row, &online));
            let reference = row.clone();
            softmax_row_bf16(&mut row);
            err_two_pass += f64::from(softmax_error(&reference, &row));
        }
        assert!(
            err_two_pass <= err_online * 1.05,
            "two-pass {err_two_pass} vs online {err_online}"
        );
    }

    #[test]
    fn errors_are_small_in_absolute_terms() {
        let row: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin() * 4.0).collect();
        let mut r = row.clone();
        softmax_row_bf16(&mut r);
        assert!(softmax_error(&row, &r) < 0.01);
    }
}
