//! Softmax variants: the two-pass reference and the online (streaming)
//! update used to tile along the key dimension.

/// Numerically stable two-pass softmax over one row, in place.
///
/// Pass 1 finds the max, pass 2 exponentiates and normalizes. This is the
/// computation the ATTACC SFU applies to each completed FLAT-tile row.
///
/// # Example
///
/// ```
/// use flat_kernels::softmax_row;
///
/// let mut row = [1.0f32, 2.0, 3.0];
/// softmax_row(&mut row);
/// let sum: f32 = row.iter().sum();
/// assert!((sum - 1.0).abs() < 1e-6);
/// assert!(row[2] > row[1] && row[1] > row[0]);
/// ```
pub fn softmax_row(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = lane_max(row);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Row maximum via 8 independent lanes so the reduction vectorizes.
/// `f32::max` is exactly associative and commutative (no NaNs in logit
/// rows), so this is bit-identical to the serial fold.
pub(crate) fn lane_max(row: &[f32]) -> f32 {
    let mut lanes = [f32::NEG_INFINITY; 8];
    for chunk in row.chunks_exact(8) {
        for (acc, &x) in lanes.iter_mut().zip(chunk) {
            *acc = acc.max(x);
        }
    }
    let tail = row
        .chunks_exact(8)
        .remainder()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    lanes.iter().copied().fold(tail, f32::max)
}

/// Row sum via 8 independent lanes so the reduction vectorizes. Unlike
/// `max`, FP addition is not associative, so this is *not* bit-identical
/// to a serial fold — callers tolerate the reordering.
pub(crate) fn lane_sum(row: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    for chunk in row.chunks_exact(8) {
        for (acc, &x) in lanes.iter_mut().zip(chunk) {
            *acc += x;
        }
    }
    let tail: f32 = row.chunks_exact(8).remainder().iter().sum();
    lanes.iter().sum::<f32>() + tail
}

/// Running state of an *online* softmax over one row, processed in chunks.
///
/// This is the streaming rescaling trick (Milakov–Gimelshein, later the
/// heart of FlashAttention): chunks of the row arrive one at a time; the
/// state keeps the running max `m`, the running normalizer `s`, and the
/// running weighted output accumulator, rescaling them whenever a later
/// chunk raises the max. FLAT itself never needs this — its row-granularity
/// slices always hold complete rows — but it is the natural extension for
/// key-dimension tiling, so the kernels crate provides it and the tests
/// prove it equivalent.
///
/// # Example
///
/// ```
/// use flat_kernels::{softmax_row, OnlineSoftmax};
///
/// let row = [0.3f32, -1.0, 2.5, 0.0, 1.1, -0.4];
/// let mut reference = row;
/// softmax_row(&mut reference);
///
/// let mut online = OnlineSoftmax::new();
/// let mut weights = Vec::new();
/// for chunk in row.chunks(2) {
///     let scale = online.absorb(chunk);
///     for w in weights.iter_mut() { *w *= scale; }
///     weights.extend(chunk.iter().map(|&x| online.weight(x)));
/// }
/// let norm = online.normalizer();
/// for (w, r) in weights.iter().zip(&reference) {
///     assert!((w / norm - r).abs() < 1e-6);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineSoftmax {
    max: f32,
    sum: f32,
}

impl OnlineSoftmax {
    /// Fresh state: no elements absorbed yet.
    #[must_use]
    pub fn new() -> Self {
        OnlineSoftmax {
            max: f32::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Absorbs a chunk of logits and returns the factor by which all
    /// *previously produced* weights (and weighted accumulators) must be
    /// rescaled: `exp(old_max − new_max)`, 1.0 when the max is unchanged.
    #[must_use]
    pub fn absorb(&mut self, chunk: &[f32]) -> f32 {
        let chunk_max = chunk.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let new_max = self.max.max(chunk_max);
        if new_max == f32::NEG_INFINITY {
            return 1.0;
        }
        let scale = if self.max == f32::NEG_INFINITY {
            1.0
        } else {
            (self.max - new_max).exp()
        };
        self.sum *= scale;
        self.max = new_max;
        for &x in chunk {
            self.sum += (x - self.max).exp();
        }
        scale
    }

    /// Unnormalized weight of a logit under the current max.
    #[must_use]
    pub fn weight(&self, x: f32) -> f32 {
        (x - self.max).exp()
    }

    /// Current normalizer (sum of unnormalized weights absorbed so far).
    #[must_use]
    pub fn normalizer(&self) -> f32 {
        self.sum
    }

    /// Current running maximum.
    #[must_use]
    pub fn running_max(&self) -> f32 {
        self.max
    }
}

impl Default for OnlineSoftmax {
    fn default() -> Self {
        OnlineSoftmax::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let mut row = vec![5.0f32, -3.0, 0.2, 9.9, -7.7];
        softmax_row(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn handles_extreme_magnitudes() {
        let mut row = vec![1000.0f32, 999.0, -1000.0];
        softmax_row(&mut row);
        assert!(row.iter().all(|v| v.is_finite()));
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_input_gives_uniform_output() {
        let mut row = vec![2.5f32; 8];
        softmax_row(&mut row);
        for &v in &row {
            assert!((v - 0.125).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_row_is_noop() {
        let mut row: Vec<f32> = vec![];
        softmax_row(&mut row);
        assert!(row.is_empty());
    }

    #[test]
    fn online_matches_two_pass_for_any_chunking() {
        let row: Vec<f32> = (0..17).map(|i| ((i * 37 % 11) as f32) - 5.0).collect();
        let mut reference = row.clone();
        softmax_row(&mut reference);
        for chunk_size in [1, 2, 3, 5, 17] {
            let mut st = OnlineSoftmax::new();
            let mut weights: Vec<f32> = Vec::new();
            for chunk in row.chunks(chunk_size) {
                let scale = st.absorb(chunk);
                for w in &mut weights {
                    *w *= scale;
                }
                weights.extend(chunk.iter().map(|&x| st.weight(x)));
            }
            for (w, r) in weights.iter().zip(&reference) {
                assert!((w / st.normalizer() - r).abs() < 1e-5, "chunk {chunk_size}");
            }
        }
    }

    #[test]
    fn absorb_returns_rescale_factor_on_new_max() {
        let mut st = OnlineSoftmax::new();
        assert_eq!(st.absorb(&[0.0]), 1.0);
        let scale = st.absorb(&[2.0]);
        assert!((scale - (-2.0f32).exp()).abs() < 1e-7);
        // No rescale when max unchanged.
        assert_eq!(st.absorb(&[1.0]), 1.0);
    }
}
