//! Multi-head attention inputs and the naive (baseline) execution.

use crate::{softmax_row, Mat};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Attention masking mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mask {
    /// Full (bidirectional) attention — BERT-style encoders.
    None,
    /// Causal mask: position `i` attends only to `j ≤ i` — decoder models
    /// like TransformerXL.
    Causal,
}

impl Mask {
    /// Whether query row `i` may attend to key column `j`.
    #[must_use]
    pub fn allows(self, i: usize, j: usize) -> bool {
        match self {
            Mask::None => true,
            Mask::Causal => j <= i,
        }
    }
}

/// The per-(batch, head) Q/K/V matrices of one attention layer.
///
/// `q[g]` is `[seq_q, dk]`, `k[g]` and `v[g]` are `[seq_kv, dk]`, with
/// `g` ranging over `batch × heads` groups. Cross-attention is just
/// `seq_q != seq_kv`.
///
/// # Example
///
/// ```
/// use flat_kernels::MultiHeadInput;
///
/// let input = MultiHeadInput::random(2, 4, 16, 16, 8, 42);
/// assert_eq!(input.groups(), 8);
/// assert_eq!(input.q[0].rows(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct MultiHeadInput {
    /// Batch size.
    pub batch: usize,
    /// Head count.
    pub heads: usize,
    /// Query sequence length.
    pub seq_q: usize,
    /// Key/value sequence length.
    pub seq_kv: usize,
    /// Per-head dimension.
    pub dk: usize,
    /// Query matrices, one per (batch, head) group.
    pub q: Vec<Mat>,
    /// Key matrices.
    pub k: Vec<Mat>,
    /// Value matrices.
    pub v: Vec<Mat>,
}

impl MultiHeadInput {
    /// Random inputs for testing, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn random(
        batch: usize,
        heads: usize,
        seq_q: usize,
        seq_kv: usize,
        dk: usize,
        seed: u64,
    ) -> Self {
        assert!(
            batch > 0 && heads > 0 && seq_q > 0 && seq_kv > 0 && dk > 0,
            "attention dimensions must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let groups = batch * heads;
        let gen = |rows: usize, rng: &mut StdRng| {
            (0..groups)
                .map(|_| Mat::random(rows, dk, rng))
                .collect::<Vec<_>>()
        };
        let q = gen(seq_q, &mut rng);
        let k = gen(seq_kv, &mut rng);
        let v = gen(seq_kv, &mut rng);
        MultiHeadInput {
            batch,
            heads,
            seq_q,
            seq_kv,
            dk,
            q,
            k,
            v,
        }
    }

    /// Number of (batch, head) groups.
    #[must_use]
    pub fn groups(&self) -> usize {
        self.batch * self.heads
    }

    /// The softmax scale `1/√dk`.
    #[must_use]
    pub fn scale(&self) -> f32 {
        1.0 / (self.dk as f32).sqrt()
    }
}

/// The baseline execution: for each group, materialize the **entire**
/// `[seq_q, seq_kv]` logit matrix (this is the `O(N²)` tensor the paper is
/// about), softmax it row by row, then multiply by `V`.
///
/// # Example
///
/// ```
/// use flat_kernels::{naive_attention, Mask, MultiHeadInput};
///
/// let input = MultiHeadInput::random(1, 2, 8, 8, 4, 7);
/// let out = naive_attention(&input, Mask::None);
/// assert_eq!(out.len(), 2);
/// assert_eq!((out[0].rows(), out[0].cols()), (8, 4));
/// ```
#[must_use]
pub fn naive_attention(input: &MultiHeadInput, mask: Mask) -> Vec<Mat> {
    let scale = input.scale();
    (0..input.groups())
        .map(|g| {
            let mut logits = input.q[g].matmul_transposed(&input.k[g]);
            for i in 0..logits.rows() {
                for (j, x) in logits.row_mut(i).iter_mut().enumerate() {
                    *x = if mask.allows(i, j) {
                        *x * scale
                    } else {
                        f32::NEG_INFINITY
                    };
                }
            }
            for i in 0..logits.rows() {
                softmax_row(logits.row_mut(i));
            }
            logits.matmul(&input.v[g])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rows_are_convex_combinations_of_values() {
        // With V = identity-ish rows, attention outputs stay within the
        // convex hull: here all V entries equal 1, so outputs must be 1.
        let mut input = MultiHeadInput::random(1, 1, 6, 6, 3, 9);
        input.v[0] = Mat::from_fn(6, 3, |_, _| 1.0);
        let out = naive_attention(&input, Mask::None);
        for i in 0..6 {
            for j in 0..3 {
                assert!((out[0].at(i, j) - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn causal_first_row_copies_first_value_row() {
        let input = MultiHeadInput::random(1, 1, 5, 5, 4, 11);
        let out = naive_attention(&input, Mask::Causal);
        // Row 0 can only attend to key 0: softmax over one element = 1.
        for j in 0..4 {
            assert!((out[0].at(0, j) - input.v[0].at(0, j)).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_attention_shapes() {
        let input = MultiHeadInput::random(2, 2, 3, 10, 4, 13);
        let out = naive_attention(&input, Mask::None);
        assert_eq!(out.len(), 4);
        assert_eq!((out[0].rows(), out[0].cols()), (3, 4));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = naive_attention(&MultiHeadInput::random(1, 1, 4, 4, 2, 5), Mask::None);
        let b = naive_attention(&MultiHeadInput::random(1, 1, 4, 4, 2, 5), Mask::None);
        assert_eq!(a[0].max_abs_diff(&b[0]), 0.0);
    }
}
