//! Single-query decode-step attention over a growing KV set.
//!
//! Autoregressive serving attends one query row against the whole cached
//! prefix at every generated token. Materializing the prefix logits and
//! running the two-pass softmax would touch the row twice; folding each
//! cached K/V row through [`OnlineSoftmax`](crate::OnlineSoftmax) instead
//! makes a decode step a single `O(N·dk)` pass, the same rescaling trick
//! `streaming_attention` uses along the key dimension. This is the kernel
//! the `flat-serve` engine calls once per scheduled decode token, with the
//! K/V rows streamed straight out of its paged cache blocks.

use crate::softmax_family::{FlashDSoftmax, LogLutSoftmax};
use crate::{mat::dot, ComputePrecision, OnlineSoftmax};
use flat_tensor::half::round_to;
use flat_tensor::SoftmaxKind;

/// Attention output of one decode step: the query row `q` against every
/// cached `(key, value)` row the iterator yields, in order.
///
/// The fold is the online-softmax rescaling, so the rows may arrive in any
/// grouping (e.g. paged cache blocks) without changing the result beyond
/// f32 rounding. Causality is positional: the caller yields exactly the
/// rows the current token may attend to — for self-attention that includes
/// the token's own K/V row, so at step 1 (a single cached row) the output
/// equals that value row exactly.
///
/// # Panics
///
/// Panics if no K/V row is yielded, or if a key row's length differs from
/// the query's.
///
/// # Example
///
/// ```
/// use flat_kernels::decode_attention;
///
/// // One cached row: softmax over a single logit is 1, output = value row.
/// let q = [0.3f32, -1.0];
/// let k = [0.5f32, 0.25];
/// let v = [2.0f32, -4.0];
/// let out = decode_attention(&q, [(&k[..], &v[..])], 1.0);
/// assert_eq!(out, vec![2.0, -4.0]);
/// ```
#[must_use]
pub fn decode_attention<'a, I>(q: &[f32], kv: I, scale: f32) -> Vec<f32>
where
    I: IntoIterator<Item = (&'a [f32], &'a [f32])>,
{
    let mut state = OnlineSoftmax::new();
    let mut acc: Vec<f32> = Vec::new();
    let mut seen = false;
    for (k, v) in kv {
        assert_eq!(k.len(), q.len(), "key row length must match the query");
        if !seen {
            acc = vec![0.0f32; v.len()];
            seen = true;
        }
        let logit = dot(q, k) * scale;
        let rescale = state.absorb(&[logit]);
        if rescale != 1.0 {
            for a in &mut acc {
                *a *= rescale;
            }
        }
        let w = state.weight(logit);
        for (a, &vv) in acc.iter_mut().zip(v) {
            *a = w.mul_add(vv, *a);
        }
    }
    assert!(seen, "decode_attention needs at least one cached K/V row");
    let inv = 1.0 / state.normalizer();
    for a in &mut acc {
        *a *= inv;
    }
    acc
}

/// Rounds one row through the storage grid of `precision`.
fn snap_row(row: &[f32], precision: ComputePrecision) -> Vec<f32> {
    match precision {
        ComputePrecision::F32 => row.to_vec(),
        ComputePrecision::Bf16 | ComputePrecision::F16 => row
            .iter()
            .map(|&x| round_to(precision.dtype(), x))
            .collect(),
        ComputePrecision::Int8 => {
            let mut v = row.to_vec();
            crate::quantized::snap_logits_int8(&mut v);
            v
        }
    }
}

/// One decode step with an explicit precision and softmax kind — the
/// kernel `flat-serve` calls when the engine is configured off the f32
/// reference.
///
/// `F32` + `Exact` delegates to [`decode_attention`] byte-identically.
/// Other precisions snap the query and each streamed K/V row through the
/// storage grid first. The FLASH-D and log-LUT kinds run the fold as
/// `acc ← acc·carry + w̃·v`: the accumulator is normalized after every
/// cached row and the final divide disappears (the single-element FLASH-D
/// form is exactly the incremental average `o ← o + μ(v − o)`).
///
/// # Panics
///
/// Panics if no K/V row is yielded, or if a key row's length differs from
/// the query's.
#[must_use]
pub fn decode_attention_with<'a, I>(
    q: &[f32],
    kv: I,
    scale: f32,
    precision: ComputePrecision,
    kind: SoftmaxKind,
) -> Vec<f32>
where
    I: IntoIterator<Item = (&'a [f32], &'a [f32])>,
{
    if precision == ComputePrecision::F32 && kind == SoftmaxKind::Exact {
        return decode_attention(q, kv, scale);
    }
    let qs = snap_row(q, precision);
    let mut online = OnlineSoftmax::new();
    let mut flash = FlashDSoftmax::new();
    let mut loglut = LogLutSoftmax::new();
    let mut acc: Vec<f32> = Vec::new();
    let mut seen = false;
    for (k, v) in kv {
        assert_eq!(k.len(), q.len(), "key row length must match the query");
        let krow = snap_row(k, precision);
        let vrow = snap_row(v, precision);
        if !seen {
            acc = vec![0.0f32; vrow.len()];
            seen = true;
        }
        let logit = dot(&qs, &krow) * scale;
        let w = match kind {
            SoftmaxKind::Exact => {
                let rescale = online.absorb(&[logit]);
                if rescale != 1.0 {
                    for a in &mut acc {
                        *a *= rescale;
                    }
                }
                online.weight(logit)
            }
            family => {
                let mut chunk = [logit];
                let carry = if family == SoftmaxKind::FlashD {
                    flash.absorb(&mut chunk)
                } else {
                    loglut.absorb(&mut chunk)
                };
                if carry != 1.0 {
                    for a in &mut acc {
                        *a *= carry;
                    }
                }
                chunk[0]
            }
        };
        for (a, &vv) in acc.iter_mut().zip(&vrow) {
            *a = w.mul_add(vv, *a);
        }
    }
    assert!(seen, "decode_attention needs at least one cached K/V row");
    if kind == SoftmaxKind::Exact {
        let inv = 1.0 / online.normalizer();
        for a in &mut acc {
            *a *= inv;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive_attention, Mask, MultiHeadInput};

    /// Decoding every position of a causal self-attention, one step at a
    /// time, reproduces the rows of the exact batched computation.
    #[test]
    fn steps_match_causal_naive_rows() {
        let input = MultiHeadInput::random(1, 1, 12, 12, 8, 17);
        let exact = naive_attention(&input, Mask::Causal);
        let (q, k, v) = (&input.q[0], &input.k[0], &input.v[0]);
        for i in 0..12 {
            let kv = (0..=i).map(|j| (k.row(j), v.row(j)));
            let out = decode_attention(q.row(i), kv, input.scale());
            for (j, &o) in out.iter().enumerate() {
                assert!((o - exact[0].at(i, j)).abs() < 1e-5, "step {i}, col {j}");
            }
        }
    }

    #[test]
    fn first_step_returns_the_value_row() {
        let input = MultiHeadInput::random(1, 1, 1, 1, 6, 23);
        let out = decode_attention(
            input.q[0].row(0),
            [(input.k[0].row(0), input.v[0].row(0))],
            input.scale(),
        );
        for (o, &vv) in out.iter().zip(input.v[0].row(0)) {
            assert_eq!(*o, vv);
        }
    }

    #[test]
    #[should_panic(expected = "at least one cached K/V row")]
    fn empty_prefix_panics() {
        let _ = decode_attention(&[1.0, 2.0], std::iter::empty(), 1.0);
    }

    #[test]
    fn f32_exact_with_variant_is_byte_identical() {
        let input = MultiHeadInput::random(1, 1, 8, 8, 4, 29);
        let (q, k, v) = (&input.q[0], &input.k[0], &input.v[0]);
        for i in 0..8 {
            let reference = decode_attention(
                q.row(i),
                (0..=i).map(|j| (k.row(j), v.row(j))),
                input.scale(),
            );
            let with = decode_attention_with(
                q.row(i),
                (0..=i).map(|j| (k.row(j), v.row(j))),
                input.scale(),
                ComputePrecision::F32,
                SoftmaxKind::Exact,
            );
            assert_eq!(reference, with, "step {i}");
        }
    }

    #[test]
    fn family_kinds_track_causal_naive_rows() {
        let input = MultiHeadInput::random(1, 1, 10, 10, 8, 31);
        let exact = naive_attention(&input, Mask::Causal);
        let (q, k, v) = (&input.q[0], &input.k[0], &input.v[0]);
        for kind in [SoftmaxKind::FlashD, SoftmaxKind::LogLut] {
            for i in 0..10 {
                let kv = (0..=i).map(|j| (k.row(j), v.row(j)));
                let out =
                    decode_attention_with(q.row(i), kv, input.scale(), ComputePrecision::F32, kind);
                for (j, &o) in out.iter().enumerate() {
                    let d = (o - exact[0].at(i, j)).abs();
                    assert!(d < 5e-3, "{kind} step {i}, col {j}: diff {d}");
                }
            }
        }
    }

    #[test]
    fn step_one_returns_the_storage_rounded_value_row() {
        // The step-1 causal decode edge: softmax over one logit is exactly
        // 1 in every family member, so the output is the (storage-rounded)
        // value row.
        let input = MultiHeadInput::random(1, 1, 1, 1, 6, 37);
        let (q, k, v) = (&input.q[0], &input.k[0], &input.v[0]);
        for &p in ComputePrecision::all() {
            for kind in [SoftmaxKind::Exact, SoftmaxKind::FlashD, SoftmaxKind::LogLut] {
                let out =
                    decode_attention_with(q.row(0), [(k.row(0), v.row(0))], input.scale(), p, kind);
                let snapped = snap_row(v.row(0), p);
                for (o, &vv) in out.iter().zip(&snapped) {
                    assert!((o - vv).abs() < 1e-5, "{p}/{kind}: {o} vs {vv}");
                }
            }
        }
    }
}
