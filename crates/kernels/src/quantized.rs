//! Int8-quantized attention: the §7 orthogonality claim at the numerical
//! level. FLAT is a dataflow; quantization is a model-level compression —
//! this module runs the *same fused row-tiled execution* over int8 tensors
//! (per-tensor symmetric scales, i32 accumulation, fp32 softmax) and
//! measures what the precision costs, proving the two techniques compose
//! without interfering.

use crate::softmax_family::softmax_row_kind;
use crate::{softmax_row, Mask, Mat, MultiHeadInput};
use flat_tensor::SoftmaxKind;

/// A symmetric per-tensor int8 quantization of a matrix.
#[derive(Debug, Clone)]
pub struct QuantizedMat {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    /// Dequantization scale: `real ≈ q · scale`.
    pub scale: f32,
}

impl QuantizedMat {
    /// Quantizes `m` symmetrically to int8.
    #[must_use]
    pub fn quantize(m: &Mat) -> Self {
        let max = m.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        QuantizedMat {
            rows: m.rows(),
            cols: m.cols(),
            data: m
                .as_slice()
                .iter()
                .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
                .collect(),
            scale,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Quantized element at `(i, j)`.
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> i8 {
        self.data[i * self.cols + j]
    }

    /// Dequantizes back to an f32 matrix — the values an int8-stored
    /// tensor actually contributes to downstream arithmetic.
    #[must_use]
    pub fn dequantize(&self) -> Mat {
        Mat::from_fn(self.rows, self.cols, |i, j| {
            f32::from(self.at(i, j)) * self.scale
        })
    }

    /// Integer GEMM `self · otherᵀ` with i32 accumulation, dequantized to
    /// f32 via the product of the two scales.
    ///
    /// # Panics
    ///
    /// Panics when the contraction dimensions differ.
    #[must_use]
    pub fn matmul_transposed_dequant(&self, other: &QuantizedMat) -> Mat {
        assert_eq!(self.cols, other.cols, "contraction dimensions must agree");
        let s = self.scale * other.scale;
        Mat::from_fn(self.rows, other.rows, |i, j| {
            let mut acc: i32 = 0;
            for k in 0..self.cols {
                acc += i32::from(self.at(i, k)) * i32::from(other.at(j, k));
            }
            acc as f32 * s
        })
    }
}

/// FLAT row-tiled attention over int8-quantized Q/K/V: integer logit
/// GEMM, fp32 softmax in the slice, integer attend GEMM (with the
/// softmaxed probabilities requantized to int8), fp32 output.
///
/// # Panics
///
/// Panics if `rows_per_tile` is zero.
///
/// # Example
///
/// ```
/// use flat_kernels::{naive_attention, quantized_flat_attention, Mask, MultiHeadInput};
///
/// let input = MultiHeadInput::random(1, 2, 32, 32, 8, 5);
/// let q8 = quantized_flat_attention(&input, 8, Mask::None);
/// let f32 = naive_attention(&input, Mask::None);
/// // Int8 attention tracks fp32 to a few percent of the value range.
/// assert!(q8[0].max_abs_diff(&f32[0]) < 0.1);
/// ```
#[must_use]
pub fn quantized_flat_attention(
    input: &MultiHeadInput,
    rows_per_tile: usize,
    mask: Mask,
) -> Vec<Mat> {
    assert!(rows_per_tile > 0, "row tile must be positive");
    let scale = input.scale();
    (0..input.groups())
        .map(|g| {
            let q = QuantizedMat::quantize(&input.q[g]);
            let k = QuantizedMat::quantize(&input.k[g]);
            let v = QuantizedMat::quantize(&input.v[g]);
            let mut out = Mat::zeros(input.seq_q, input.dk);
            let mut row_lo = 0;
            while row_lo < input.seq_q {
                let row_hi = (row_lo + rows_per_tile).min(input.seq_q);
                // Stage L: integer GEMM on the quantized slice.
                let q_ref = &q;
                let q_slice = QuantizedMat {
                    rows: row_hi - row_lo,
                    cols: input.dk,
                    data: (row_lo..row_hi)
                        .flat_map(|i| (0..input.dk).map(move |j| q_ref.at(i, j)))
                        .collect(),
                    scale: q.scale,
                };
                let mut tile = q_slice.matmul_transposed_dequant(&k);
                for i in 0..tile.rows() {
                    for j in 0..tile.cols() {
                        let val = tile.at(i, j) * scale;
                        tile.set(
                            i,
                            j,
                            if mask.allows(row_lo + i, j) {
                                val
                            } else {
                                f32::NEG_INFINITY
                            },
                        );
                    }
                }
                // SFU: fp32 softmax (probabilities need the dynamic range).
                for i in 0..tile.rows() {
                    softmax_row(tile.row_mut(i));
                }
                // Stage A: requantize the probabilities, integer GEMM with V.
                let p = QuantizedMat::quantize(&tile);
                for i in 0..p.rows() {
                    for d in 0..input.dk {
                        let mut acc: i32 = 0;
                        for j in 0..input.seq_kv {
                            acc += i32::from(p.at(i, j)) * i32::from(v.at(j, d));
                        }
                        out.set(row_lo + i, d, acc as f32 * p.scale * v.scale);
                    }
                }
                row_lo = row_hi;
            }
            out
        })
        .collect()
}

/// Snaps the *finite* logits of a row onto a symmetric 127-level int8
/// grid, in place — the score-matrix half of the int8 path. Masked
/// (`−∞`) entries pass through untouched.
pub(crate) fn snap_logits_int8(row: &mut [f32]) {
    let max = row
        .iter()
        .filter(|x| x.is_finite())
        .fold(0.0f32, |a, &v| a.max(v.abs()));
    if max == 0.0 {
        return;
    }
    let scale = max / 127.0;
    for x in row.iter_mut() {
        if x.is_finite() {
            *x = (*x / scale).round() * scale;
        }
    }
}

/// FLAT row-tiled int8 attention with the score matrix **also** held at
/// int8: the logit tile is snapped to a symmetric 127-level grid before
/// the softmax (the pre-softmax scores now live on the int8 grid, not
/// just the weights), and the softmax itself runs as the selected
/// [`SoftmaxKind`]. Stage A requantizes the probabilities as in
/// [`quantized_flat_attention`].
///
/// # Panics
///
/// Panics if `rows_per_tile` is zero.
///
/// # Example
///
/// ```
/// use flat_kernels::{naive_attention, quantized_flat_attention_with, Mask, MultiHeadInput};
/// use flat_tensor::SoftmaxKind;
///
/// let input = MultiHeadInput::random(1, 2, 32, 32, 8, 5);
/// let q8 = quantized_flat_attention_with(&input, 8, Mask::None, SoftmaxKind::FlashD);
/// let f32 = naive_attention(&input, Mask::None);
/// assert!(q8[0].max_abs_diff(&f32[0]) < 0.1);
/// ```
#[must_use]
pub fn quantized_flat_attention_with(
    input: &MultiHeadInput,
    rows_per_tile: usize,
    mask: Mask,
    kind: SoftmaxKind,
) -> Vec<Mat> {
    assert!(rows_per_tile > 0, "row tile must be positive");
    let scale = input.scale();
    (0..input.groups())
        .map(|g| {
            let q = QuantizedMat::quantize(&input.q[g]);
            let k = QuantizedMat::quantize(&input.k[g]);
            let v = QuantizedMat::quantize(&input.v[g]);
            let mut out = Mat::zeros(input.seq_q, input.dk);
            let mut row_lo = 0;
            while row_lo < input.seq_q {
                let row_hi = (row_lo + rows_per_tile).min(input.seq_q);
                let q_ref = &q;
                let q_slice = QuantizedMat {
                    rows: row_hi - row_lo,
                    cols: input.dk,
                    data: (row_lo..row_hi)
                        .flat_map(|i| (0..input.dk).map(move |j| q_ref.at(i, j)))
                        .collect(),
                    scale: q.scale,
                };
                let mut tile = q_slice.matmul_transposed_dequant(&k);
                for i in 0..tile.rows() {
                    for j in 0..tile.cols() {
                        let val = tile.at(i, j) * scale;
                        tile.set(
                            i,
                            j,
                            if mask.allows(row_lo + i, j) {
                                val
                            } else {
                                f32::NEG_INFINITY
                            },
                        );
                    }
                }
                for i in 0..tile.rows() {
                    let row = tile.row_mut(i);
                    // The score matrix itself goes to the int8 grid here;
                    // the softmax then runs as the selected family member.
                    snap_logits_int8(row);
                    match kind {
                        SoftmaxKind::Exact => softmax_row(row),
                        other => softmax_row_kind(row, other),
                    }
                }
                let p = QuantizedMat::quantize(&tile);
                for i in 0..p.rows() {
                    for d in 0..input.dk {
                        let mut acc: i32 = 0;
                        for j in 0..input.seq_kv {
                            acc += i32::from(p.at(i, j)) * i32::from(v.at(j, d));
                        }
                        out.set(row_lo + i, d, acc as f32 * p.scale * v.scale);
                    }
                }
                row_lo = row_hi;
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_attention;

    #[test]
    fn quantization_round_trips_within_scale() {
        let m = Mat::from_fn(8, 8, |i, j| ((i * 8 + j) as f32 - 32.0) / 7.0);
        let q = QuantizedMat::quantize(&m);
        for i in 0..8 {
            for j in 0..8 {
                let deq = f32::from(q.at(i, j)) * q.scale;
                assert!((deq - m.at(i, j)).abs() <= q.scale, "({i},{j})");
            }
        }
    }

    #[test]
    fn int8_attention_tracks_fp32() {
        let input = MultiHeadInput::random(2, 2, 48, 48, 8, 17);
        let exact = naive_attention(&input, Mask::None);
        let q8 = quantized_flat_attention(&input, 16, Mask::None);
        for (e, q) in exact.iter().zip(&q8) {
            let d = e.max_abs_diff(q);
            assert!(d < 0.08, "int8 deviation {d}");
        }
    }

    #[test]
    fn tile_size_does_not_change_quantized_result_much() {
        let input = MultiHeadInput::random(1, 1, 32, 32, 4, 19);
        let a = quantized_flat_attention(&input, 4, Mask::None);
        let b = quantized_flat_attention(&input, 32, Mask::None);
        // Per-slice requantization makes tiles differ slightly, bounded by
        // a couple of quantization steps.
        assert!(a[0].max_abs_diff(&b[0]) < 0.1);
    }

    #[test]
    fn causal_masking_survives_quantization() {
        let input = MultiHeadInput::random(1, 1, 12, 12, 4, 23);
        let exact = naive_attention(&input, Mask::Causal);
        let q8 = quantized_flat_attention(&input, 4, Mask::Causal);
        assert!(exact[0].max_abs_diff(&q8[0]) < 0.1);
        // Row 0 attends only to key 0 in both.
        for d in 0..4 {
            assert!((q8[0].at(0, d) - input.v[0].at(0, d)).abs() < 0.05);
        }
    }

    #[test]
    fn int8_score_matrix_tracks_fp32_for_every_kind() {
        let input = MultiHeadInput::random(1, 2, 32, 32, 8, 29);
        let exact = naive_attention(&input, Mask::None);
        for kind in [SoftmaxKind::Exact, SoftmaxKind::FlashD, SoftmaxKind::LogLut] {
            let q8 = quantized_flat_attention_with(&input, 8, Mask::None, kind);
            for (e, q) in exact.iter().zip(&q8) {
                let d = e.max_abs_diff(q);
                assert!(d < 0.12, "{kind}: deviation {d}");
            }
        }
    }

    #[test]
    fn dequantize_round_trips_within_one_step() {
        let m = Mat::from_fn(6, 5, |i, j| (i as f32 - j as f32) * 0.3);
        let q = QuantizedMat::quantize(&m);
        let deq = q.dequantize();
        assert!(deq.max_abs_diff(&m) <= q.scale);
    }

    #[test]
    fn logit_snap_preserves_masks_and_zero_rows() {
        let mut row = [f32::NEG_INFINITY, 1.0, -0.5, f32::NEG_INFINITY];
        snap_logits_int8(&mut row);
        assert_eq!(row[0], f32::NEG_INFINITY);
        assert_eq!(row[3], f32::NEG_INFINITY);
        assert!((row[1] - 1.0).abs() <= 1.0 / 127.0);
        let mut zeros = [0.0f32, f32::NEG_INFINITY];
        snap_logits_int8(&mut zeros);
        assert_eq!(zeros, [0.0, f32::NEG_INFINITY]);
    }

    #[test]
    fn zero_matrix_quantizes_safely() {
        let z = Mat::zeros(4, 4);
        let q = QuantizedMat::quantize(&z);
        assert_eq!(q.scale, 1.0);
        assert!(q.data.iter().all(|&v| v == 0));
    }
}
