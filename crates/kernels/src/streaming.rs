//! Key-dimension streaming attention (online softmax) — the extension
//! beyond FLAT's row granularity.
//!
//! FLAT's finest slice is a complete logit row, because exact softmax
//! reduces along the key dimension (§4.2.1). The online-softmax rescaling
//! trick relaxes even that: logit *columns* can be produced in chunks and
//! consumed immediately, shrinking the live slice from `R × N` to
//! `R × C`. This module implements that execution as the natural
//! future-work direction (it is the algorithmic core FlashAttention later
//! built on), and the tests prove it equivalent to the exact computation.

use crate::softmax_family::{storage_snap, FlashDSoftmax, LogLutSoftmax};
use crate::{ComputePrecision, Mask, Mat, MultiHeadInput, OnlineSoftmax};
use flat_tensor::SoftmaxKind;

/// Streaming attention: tiles of `rows_per_tile × kv_tile` logits are
/// produced and folded into a running output with online-softmax
/// rescaling. No logit row is ever complete in memory.
///
/// # Panics
///
/// Panics if either tile extent is zero.
///
/// # Example
///
/// ```
/// use flat_kernels::{naive_attention, streaming_attention, Mask, MultiHeadInput};
///
/// let input = MultiHeadInput::random(1, 1, 16, 16, 8, 5);
/// let streamed = streaming_attention(&input, 4, 4, Mask::None);
/// let exact = naive_attention(&input, Mask::None);
/// assert!(streamed[0].max_abs_diff(&exact[0]) < 1e-4);
/// ```
#[must_use]
pub fn streaming_attention(
    input: &MultiHeadInput,
    rows_per_tile: usize,
    kv_tile: usize,
    mask: Mask,
) -> Vec<Mat> {
    assert!(
        rows_per_tile > 0 && kv_tile > 0,
        "tile extents must be positive"
    );
    let scale = input.scale();
    (0..input.groups())
        .map(|g| {
            let q = &input.q[g];
            let k = &input.k[g];
            let v = &input.v[g];
            let mut out = Mat::zeros(input.seq_q, input.dk);
            let mut row_lo = 0;
            while row_lo < input.seq_q {
                let row_hi = (row_lo + rows_per_tile).min(input.seq_q);
                // Per-row online state and unnormalized accumulators.
                let mut states = vec![OnlineSoftmax::new(); row_hi - row_lo];
                let mut acc = Mat::zeros(row_hi - row_lo, input.dk);
                let mut col_lo = 0;
                while col_lo < input.seq_kv {
                    let col_hi = (col_lo + kv_tile).min(input.seq_kv);
                    for (r, state) in states.iter_mut().enumerate() {
                        let qi = row_lo + r;
                        let qrow = q.row(qi);
                        // Chunk of this row's logits, through the same
                        // lane-split dot kernel as the tiled paths.
                        let chunk: Vec<f32> = (col_lo..col_hi)
                            .map(|j| {
                                if mask.allows(qi, j) {
                                    crate::mat::dot(qrow, k.row(j)) * scale
                                } else {
                                    f32::NEG_INFINITY
                                }
                            })
                            .collect();
                        let rescale = state.absorb(&chunk);
                        let accrow = acc.row_mut(r);
                        for a in accrow.iter_mut() {
                            *a *= rescale;
                        }
                        for (off, &x) in chunk.iter().enumerate() {
                            let w = state.weight(x);
                            if w > 0.0 {
                                let vrow = v.row(col_lo + off);
                                for (a, &vv) in accrow.iter_mut().zip(vrow) {
                                    *a = w.mul_add(vv, *a);
                                }
                            }
                        }
                    }
                    col_lo = col_hi;
                }
                for (r, state) in states.iter().enumerate() {
                    let inv = 1.0 / state.normalizer();
                    for (o, &a) in out.row_mut(row_lo + r).iter_mut().zip(acc.row(r)) {
                        *o = a * inv;
                    }
                }
                row_lo = row_hi;
            }
            out
        })
        .collect()
}

/// Streaming attention with an explicit precision and softmax kind.
///
/// `F32` + `Exact` delegates to [`streaming_attention`] unchanged. Other
/// precisions first snap Q/K/V through the storage grid (bf16/f16
/// rounding, or the int8 quantization grid). The FLASH-D and log-LUT
/// kinds replace the online-softmax fold with the division-free
/// recurrence: the output rows stay normalized after every chunk and the
/// final per-row divide pass disappears.
///
/// # Panics
///
/// Panics if either tile extent is zero.
///
/// # Example
///
/// ```
/// use flat_kernels::{naive_attention, streaming_attention_with, ComputePrecision, Mask, MultiHeadInput};
/// use flat_tensor::SoftmaxKind;
///
/// let input = MultiHeadInput::random(1, 1, 16, 16, 8, 5);
/// let out = streaming_attention_with(
///     &input, 4, 4, Mask::None, ComputePrecision::Bf16, SoftmaxKind::FlashD);
/// let exact = naive_attention(&input, Mask::None);
/// assert!(out[0].max_abs_diff(&exact[0]) < 2e-2);
/// ```
#[must_use]
pub fn streaming_attention_with(
    input: &MultiHeadInput,
    rows_per_tile: usize,
    kv_tile: usize,
    mask: Mask,
    precision: ComputePrecision,
    kind: SoftmaxKind,
) -> Vec<Mat> {
    assert!(
        rows_per_tile > 0 && kv_tile > 0,
        "tile extents must be positive"
    );
    let snapped;
    let input = if precision == ComputePrecision::F32 {
        input
    } else {
        snapped = MultiHeadInput {
            batch: input.batch,
            heads: input.heads,
            seq_q: input.seq_q,
            seq_kv: input.seq_kv,
            dk: input.dk,
            q: input.q.iter().map(|m| storage_snap(m, precision)).collect(),
            k: input.k.iter().map(|m| storage_snap(m, precision)).collect(),
            v: input.v.iter().map(|m| storage_snap(m, precision)).collect(),
        };
        &snapped
    };
    if kind == SoftmaxKind::Exact {
        return streaming_attention(input, rows_per_tile, kv_tile, mask);
    }
    let scale = input.scale();
    (0..input.groups())
        .map(|g| {
            let q = &input.q[g];
            let k = &input.k[g];
            let v = &input.v[g];
            let mut out = Mat::zeros(input.seq_q, input.dk);
            let mut row_lo = 0;
            while row_lo < input.seq_q {
                let row_hi = (row_lo + rows_per_tile).min(input.seq_q);
                let nrows = row_hi - row_lo;
                let mut flash = vec![FlashDSoftmax::new(); nrows];
                let mut loglut = vec![LogLutSoftmax::new(); nrows];
                let mut col_lo = 0;
                while col_lo < input.seq_kv {
                    let col_hi = (col_lo + kv_tile).min(input.seq_kv);
                    for r in 0..nrows {
                        let qi = row_lo + r;
                        let qrow = q.row(qi);
                        let mut chunk: Vec<f32> = (col_lo..col_hi)
                            .map(|j| {
                                if mask.allows(qi, j) {
                                    crate::mat::dot(qrow, k.row(j)) * scale
                                } else {
                                    f32::NEG_INFINITY
                                }
                            })
                            .collect();
                        // The family absorb returns *normalized* weights
                        // and a carry: no divide pass ever runs.
                        let carry = match kind {
                            SoftmaxKind::FlashD => flash[r].absorb(&mut chunk),
                            _ => loglut[r].absorb(&mut chunk),
                        };
                        let orow = out.row_mut(qi);
                        if carry != 1.0 {
                            for a in orow.iter_mut() {
                                *a *= carry;
                            }
                        }
                        for (off, &w) in chunk.iter().enumerate() {
                            if w != 0.0 {
                                let vrow = v.row(col_lo + off);
                                for (a, &vv) in orow.iter_mut().zip(vrow) {
                                    *a = w.mul_add(vv, *a);
                                }
                            }
                        }
                    }
                    col_lo = col_hi;
                }
                row_lo = row_hi;
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_attention;

    fn assert_matches_naive(input: &MultiHeadInput, rows: usize, cols: usize, mask: Mask) {
        let streamed = streaming_attention(input, rows, cols, mask);
        let exact = naive_attention(input, mask);
        for (g, (s, e)) in streamed.iter().zip(&exact).enumerate() {
            let d = s.max_abs_diff(e);
            assert!(d < 1e-4, "group {g}, tile {rows}x{cols}: diff {d}");
        }
    }

    #[test]
    fn equivalent_across_kv_tilings() {
        let input = MultiHeadInput::random(1, 2, 12, 20, 8, 31);
        for cols in [1, 3, 7, 20, 64] {
            assert_matches_naive(&input, 4, cols, Mask::None);
        }
    }

    #[test]
    fn equivalent_under_causal_mask() {
        let input = MultiHeadInput::random(1, 1, 10, 10, 4, 37);
        assert_matches_naive(&input, 3, 4, Mask::Causal);
    }

    #[test]
    fn single_element_tiles_still_exact() {
        let input = MultiHeadInput::random(1, 1, 6, 6, 2, 41);
        assert_matches_naive(&input, 1, 1, Mask::None);
    }

    #[test]
    fn matches_flat_execution_too() {
        let input = MultiHeadInput::random(2, 2, 16, 16, 4, 43);
        let streamed = streaming_attention(&input, 4, 8, Mask::None);
        let flat = crate::flat_attention(&input, 4, Mask::None);
        for (s, f) in streamed.iter().zip(&flat) {
            assert!(s.max_abs_diff(f) < 1e-4);
        }
    }
}
