//! The CLI subcommands.

use crate::parse;
use flat_bench::args::Args;
use flat_core::{CostModel, CostReport, LaExecution};
use flat_dist::{
    best_joint, scaling_knee, series, CollectiveAlgo, Link, Partition, Sweep, Topology,
};
use flat_dse::{Dse, SpaceKind};
use flat_workloads::{Model, Scope};
use serde_json::json;

/// Top-level usage text.
pub const USAGE: &str = "\
flat — FLAT dataflow cost model, DSE, tracer, and serving runtime

USAGE:
  flat info
  flat cost  --platform edge --model bert --seq 4096 --dataflow flat-r64 [--scope la|block|model] [--json]
  flat dse   --platform cloud --model xlm --seq 16384 [--space base|base-m|fused|full|precision|collective]
             [--objective max-util|min-energy|min-edp|min-footprint|util-per-footprint]
             [--trace FILE] [--json]   # --space precision sweeps width x softmax family;
                                       # --space collective co-optimizes partition x topology
                                       # x collective algorithm x overlap on a cluster
  flat trace --platform edge --model bert --seq 512 --dataflow flat-r64 [--width 48]
  flat loopnest --dataflow flat-r64 [--seq N]   # Figure 4-style loop nest
  flat sim   --platform edge --model bert --seq 512 --dataflow flat-r64 [--trace-json FILE]
             [--engine analytical|event|both] [--tolerance 0.05] [--buffers N]
             [--sweep] [--json]   # --engine both cross-validates the cost model
  flat bw    --platform cloud --model xlm --seq 8192 [--target-milli 950]
  flat serve --platform cloud --model bert --requests 256 --arrival-rate 64 [--seed N]
             [--task short-nlp|image-generation|summarization|language-modeling|music-processing]
             [--prompt N] [--output N] [--block-tokens 16] [--kv-mib N] [--chunk 512]
             [--max-batch 64] [--slo-ms MS] [--chaos SEED] [--dedup] [--window-ms MS]
             [--precision fp32|bf16|fp16|int8] [--softmax exact|flash-d|log-lut]
             [--trace FILE] [--metrics FILE] [--json]
  flat fleet --platform cloud --model bert --requests 512 [--seed N]
             [--rate 200] [--amplitude 0.6] [--period-s 60] [--chips N]
             [--topology ring|mesh|torus|fc|tree] [--window-ms 1000]
             [--scale MS:CHIPS,MS:CHIPS] [--no-dedup] [--chaos SEED]
             [--trace FILE] [--json]   # sustained multi-tenant load with diurnal
                                       # arrivals, prefix dedup, elastic resizes
  flat dist  --platform cloud --model bert --seq 65536 [--chips 1,2,4,8] [--sweep]
             [--topology ring|mesh|torus|fc|tree|all] [--partition head|seq|kv|all]
             [--algo ring|hd|bucket|all] [--overlap] [--link-gbps N] [--link-us N]
             [--seed N] [--json]
             [--requests N --trace FILE ...]   # serve a request stream on the cluster instead
  flat insight attr TRACE.json [--json] [--metrics FILE]
             # critical-path attribution: decompose per-request latency into
             # queued/prefill/recompute/decode/collective-exposed/other phases
  flat insight diff A.json B.json [--json]
             # align two traced runs by request id, attribute the latency
             # delta to phases and drop-reason shifts
  flat insight bench [--dir DIR] [--current FILE] [--check] [--json]
             # bench observatory over BENCH_PR*.json history; --check gates
             # the newest (or --current) snapshot and exits nonzero on regression
  flat run   --config experiments.json [--out results.json]

COMMON OPTIONS:
  --trace FILE        write a Chrome/Perfetto trace (serve, dist --requests, dse);
                      open the file in https://ui.perfetto.dev
  --metrics FILE      write Prometheus text metrics (serve)
  --batch N           batch size (default 64)
  --sg-kib N          override on-chip scratchpad capacity
  --offchip-gbps N    override off-chip bandwidth
  --accel-json FILE   load a serialized accelerator instead of a preset
  --model-json FILE   load a HuggingFace-style model config instead of a zoo name
  --no-double-buffer  charge every tile switch and serialize transfers
  --serial-softmax    the paper's stricter baseline softmax phase
  --softmax KIND      softmax family the SFU prices/runs: exact (default),
                      flash-d (division folded into the recurrence), or
                      log-lut (exp/div-free log2-domain; cost, trace, serve)
  --precision P       numeric-plane storage width for serve: fp32 (default),
                      bf16, fp16, or int8";

/// The streaming sink behind `--trace FILE`.
type FileSink = flat_telemetry::JsonStreamSink<std::io::BufWriter<std::fs::File>>;

/// Opens the `--trace FILE` sink when the flag is present.
fn open_trace(args: &Args) -> Result<Option<(String, FileSink)>, String> {
    let path = args.get("trace", "");
    if path.is_empty() {
        return Ok(None);
    }
    let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
    let sink = flat_telemetry::JsonStreamSink::new(std::io::BufWriter::new(file))
        .map_err(|e| format!("{path}: {e}"))?;
    Ok(Some((path, sink)))
}

/// Closes a `--trace` sink and tells the user where the trace went.
fn close_trace(path: &str, sink: FileSink) -> Result<(), String> {
    sink.finish().map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote Chrome trace to {path} (open in https://ui.perfetto.dev)");
    Ok(())
}

/// `flat run` — execute a JSON experiment config: a list of jobs, each
/// either a fixed-dataflow pricing or a DSE, producing a JSON result
/// array (the Timeloop-style batch workflow).
///
/// Config shape:
/// ```json
/// { "jobs": [
///   { "platform": "edge", "model": "bert", "seq": 4096, "dataflow": "flat-r64" },
///   { "platform": "cloud", "model": "xlm", "seq": 16384, "space": "full", "objective": "max-util" }
/// ] }
/// ```
pub fn run(args: &Args) -> Result<(), String> {
    let path = args.get("config", "");
    if path.is_empty() {
        return Err("--config FILE is required".to_owned());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let config: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let jobs = config
        .get("jobs")
        .and_then(|j| j.as_array())
        .ok_or_else(|| "config must contain a \"jobs\" array".to_owned())?;

    let mut results = Vec::new();
    for (idx, job) in jobs.iter().enumerate() {
        let get = |key: &str, default: &str| -> String {
            job.get(key)
                .and_then(|v| v.as_str())
                .unwrap_or(default)
                .to_owned()
        };
        let get_u64 = |key: &str, default: u64| -> u64 {
            job.get(key)
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(default)
        };
        // Rebuild an Args so the job shares the CLI's resolution logic.
        let mut argv = vec![
            "--platform".to_owned(),
            get("platform", "edge"),
            "--model".to_owned(),
            get("model", "bert"),
            "--seq".to_owned(),
            get_u64("seq", 4096).to_string(),
            "--batch".to_owned(),
            get_u64("batch", 64).to_string(),
        ];
        if let Some(sg) = job.get("sg_kib").and_then(serde_json::Value::as_u64) {
            argv.extend(["--sg-kib".to_owned(), sg.to_string()]);
        }
        let job_args = Args::parse_from(argv);
        let setup = parse::setup(&job_args).map_err(|e| format!("job {idx}: {e}"))?;

        let mut value = if job.get("space").is_some() || job.get("objective").is_some() {
            let space = match get("space", "full").as_str() {
                "base" | "sequential" => SpaceKind::Sequential,
                "fused" => SpaceKind::Fused,
                _ => SpaceKind::Full,
            };
            let obj_args =
                Args::parse_from(vec!["--objective".to_owned(), get("objective", "max-util")]);
            let objective = parse::objective(&obj_args).map_err(|e| format!("job {idx}: {e}"))?;
            let best = Dse::new(&setup.accel, &setup.block).best_la(space, objective);
            report_json(&best.report, &la_label(&best.la), Scope::LogitAttend)
        } else {
            let df = parse::dataflow(&get("dataflow", "flat-r64"))
                .map_err(|e| format!("job {idx}: {e}"))?;
            let report =
                CostModel::new(&setup.accel).scope_cost(&setup.block, &df, Scope::LogitAttend);
            report_json(&report, &df.label(), Scope::LogitAttend)
        };
        value["job"] = json!(idx);
        value["platform"] = json!(setup.accel.name);
        value["model"] = json!(setup.model.to_string());
        value["seq"] = json!(setup.seq);
        results.push(value);
    }

    let out = serde_json::to_string_pretty(&serde_json::Value::Array(results))
        .expect("results serialize");
    let out_path = args.get("out", "");
    if out_path.is_empty() {
        println!("{out}");
    } else {
        std::fs::write(&out_path, out).map_err(|e| format!("{out_path}: {e}"))?;
        eprintln!("wrote {out_path}");
    }
    Ok(())
}

/// `flat info` — list the available building blocks.
pub fn info() -> Result<(), String> {
    println!(
        "platforms: edge (32x32 PEs, 512 KiB, 50 GB/s), cloud (256x256 PEs, 32 MiB, 400 GB/s)"
    );
    println!("models:");
    for m in Model::suite() {
        println!(
            "  {:10} blocks={} D={} H={} ffn={}",
            m.to_string(),
            m.blocks(),
            m.hidden(),
            m.heads(),
            m.ffn_hidden()
        );
    }
    println!("dataflows: base, base-m, base-b, base-h, flat-m, flat-b, flat-h, flat-rN");
    println!("objectives: max-util, min-energy, min-edp, min-footprint, util-per-footprint");
    Ok(())
}

fn report_json(report: &CostReport, label: &str, scope: Scope) -> serde_json::Value {
    json!({
        "dataflow": label,
        "scope": scope.to_string(),
        "cycles": report.cycles,
        "ideal_cycles": report.ideal_cycles,
        "util": report.util(),
        "offchip_bytes": report.traffic.offchip.as_u64(),
        "onchip_bytes": report.traffic.onchip.as_u64(),
        "footprint_bytes": report.footprint.as_u64(),
        "energy_pj": report.energy.total_pj(),
        "energy": json!({
            "compute_pj": report.energy.compute_pj,
            "sl_pj": report.energy.sl_pj,
            "sg_pj": report.energy.sg_pj,
            "dram_pj": report.energy.dram_pj,
            "sfu_pj": report.energy.sfu_pj,
        }),
    })
}

/// `flat cost` — price one dataflow.
pub fn cost(args: &Args) -> Result<(), String> {
    let setup = parse::setup(args)?;
    let df = parse::dataflow(&args.get("dataflow", "flat-r64"))?;
    let scope = parse::scope(args)?;
    let cm = CostModel::with_options(&setup.accel, parse::model_options(args)?);
    let mut report = cm.scope_cost(&setup.block, &df, scope);
    if scope == Scope::Model {
        report = report.repeat(setup.model.blocks());
    }
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report_json(&report, &df.label(), scope))
                .expect("report serializes")
        );
    } else {
        println!("accelerator: {}", setup.accel);
        println!(
            "workload:    {} (B={}, N={})",
            setup.model, setup.batch, setup.seq
        );
        println!("dataflow:    {} at {} scope", df.label(), scope);
        println!();
        println!(
            "cycles:      {:.4e} ({:.3} ms at {:.1} GHz)",
            report.cycles,
            setup.accel.cycles_to_seconds(report.cycles) * 1e3,
            setup.accel.clock_hz / 1e9
        );
        println!("utilization: {:.4}", report.util());
        println!("off-chip:    {}", report.traffic.offchip);
        println!("on-chip:     {}", report.traffic.onchip);
        println!("footprint:   {}", report.footprint);
        println!("energy:      {}", report.energy);
    }
    Ok(())
}

fn la_label(la: &LaExecution) -> String {
    match la {
        LaExecution::Fused(f) => format!("FLAT-{}", f.granularity),
        LaExecution::Sequential { logit, .. } => match logit.l3 {
            None => "Base".to_owned(),
            Some(l3) => format!("Base-{}", l3.granularity),
        },
    }
}

/// `flat dse` — search a design space.
pub fn dse(args: &Args) -> Result<(), String> {
    let setup = parse::setup(args)?;
    let objective = parse::objective(args)?;
    let space = match args.get("space", "full").as_str() {
        "base" | "sequential" => SpaceKind::Sequential,
        "base-m" => SpaceKind::SequentialMGran,
        "fused" => SpaceKind::Fused,
        "full" => SpaceKind::Full,
        "precision" => return dse_precision(&setup, args, objective),
        "collective" => return dse_collective(&setup, args),
        other => {
            return Err(format!(
                "unknown space {other:?} (base|base-m|fused|full|precision|collective)"
            ))
        }
    };
    let dse = Dse::new(&setup.accel, &setup.block);
    let best = match open_trace(args)? {
        None => dse.best_la(space, objective),
        Some((path, mut sink)) => {
            let best = dse.best_la_traced(space, objective, &mut sink);
            close_trace(&path, sink)?;
            best
        }
    };
    let (others, _) = dse.best_others(objective);
    if args.flag("json") {
        let mut v = report_json(&best.report, &la_label(&best.la), Scope::LogitAttend);
        v["objective"] = json!(objective.to_string());
        v["others_dataflow"] = json!(others.to_string());
        println!("{}", serde_json::to_string_pretty(&v).expect("serializes"));
    } else {
        println!("accelerator: {}", setup.accel);
        println!(
            "workload:    {} (B={}, N={})",
            setup.model, setup.batch, setup.seq
        );
        println!("objective:   {objective}");
        println!();
        println!("best L-A dataflow:   {}", la_label(&best.la));
        println!(
            "  util {:.4}, off-chip {}, footprint {}",
            best.report.util(),
            best.report.traffic.offchip,
            best.report.footprint
        );
        println!("best non-fused ops:  {others}");
    }
    Ok(())
}

/// `flat dse --space precision` — sweep storage width × softmax family,
/// re-searching the best dataflow inside each pairing, and report the
/// cycles-vs-energy Pareto frontier.
fn dse_precision(
    setup: &parse::Setup,
    args: &Args,
    objective: flat_dse::Objective,
) -> Result<(), String> {
    let dse = Dse::new(&setup.accel, &setup.block);
    let points = dse.explore_precision(SpaceKind::Full, objective);
    let front = flat_dse::precision_pareto(&points);
    let on_front = |p: &flat_dse::PrecisionPoint| front.iter().any(|f| f.choice == p.choice);
    if args.flag("json") {
        let arr: Vec<serde_json::Value> = points
            .iter()
            .map(|p| {
                json!({
                    "choice": p.choice.label(),
                    "dtype": p.choice.dtype.to_string(),
                    "softmax": p.choice.softmax.to_string(),
                    "dataflow": la_label(&p.la),
                    "cycles": p.report.cycles,
                    "energy_pj": p.report.energy.total_pj(),
                    "util": p.report.util(),
                    "pareto": on_front(p),
                })
            })
            .collect();
        let v = json!({ "objective": objective.to_string(), "points": arr });
        println!("{}", serde_json::to_string_pretty(&v).expect("serializes"));
    } else {
        println!("accelerator: {}", setup.accel);
        println!(
            "workload:    {} (B={}, N={})",
            setup.model, setup.batch, setup.seq
        );
        println!("objective:   {objective} (per precision, best dataflow)");
        println!();
        println!(
            "{:16} {:14} {:>12} {:>14} {:>8}  pareto",
            "precision", "dataflow", "cycles", "energy (pJ)", "util"
        );
        for p in &points {
            println!(
                "{:16} {:14} {:>12.4e} {:>14.4e} {:>8.4}  {}",
                p.choice.label(),
                la_label(&p.la),
                p.report.cycles,
                p.report.energy.total_pj(),
                p.report.util(),
                if on_front(p) { "*" } else { "" }
            );
        }
    }
    Ok(())
}

/// `flat dse --space collective` — the joint cluster search: every
/// (partition × topology × collective algorithm) pairing priced at each
/// chip count, under both serial and overlapped tick pricing, reporting
/// the winner per cluster size and each pairing's scaling knee.
fn dse_collective(setup: &parse::Setup, args: &Args) -> Result<(), String> {
    let chips = chips_arg(args)?;
    let topologies = topologies_arg(args)?;
    let partitions = partitions_arg(args, "all")?;
    let algos = algos_arg(args, "all")?;
    let link = link_arg(args, &setup.accel.name)?;
    let cfg = setup.model.config(setup.batch, setup.seq);
    let base = Sweep::new(setup.accel.clone(), link).with_algos(algos.clone());
    let serial = base.clone().run(&cfg, &chips, &topologies, &partitions);
    let overlapped = base
        .with_overlap(true)
        .run(&cfg, &chips, &topologies, &partitions);

    if args.flag("json") {
        let winners: Vec<serde_json::Value> = chips
            .iter()
            .filter_map(|&p| best_joint(&overlapped, p).map(|w| (p, w)))
            .map(|(p, w)| {
                json!({
                    "chips": p,
                    "topology": w.topology.to_string(),
                    "algo": w.algo.to_string(),
                    "partition": w.partition.to_string(),
                    "total_ms": w.total_ms,
                    "speedup": w.speedup,
                    "serial_total_ms": best_joint(&serial, p).map(|s| s.total_ms),
                })
            })
            .collect();
        let knees: Vec<serde_json::Value> = topologies
            .iter()
            .flat_map(|&t| algos.iter().map(move |&a| (t, a)))
            .flat_map(|(t, a)| partitions.iter().map(move |&p| (t, a, p)))
            .map(|(t, a, p)| {
                json!({
                    "topology": t.to_string(),
                    "algo": a.to_string(),
                    "partition": p.to_string(),
                    "knee_chips": scaling_knee(&series(&overlapped, t, a, p)),
                })
            })
            .collect();
        let v = json!({
            "platform": setup.accel.name,
            "model": setup.model.to_string(),
            "batch": setup.batch,
            "seq": setup.seq,
            "link_gbps": link.bytes_per_s / 1e9,
            "link_us": link.latency_s * 1e6,
            "winners": winners,
            "knees": knees,
            "points": overlapped,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&v).expect("collective search serializes")
        );
        return Ok(());
    }

    println!("accelerator: {}", setup.accel);
    println!(
        "workload:    {} (B={}, N={})",
        setup.model, setup.batch, setup.seq
    );
    println!("link:        {link}");
    println!();
    println!("best joint (partition × topology × algo), overlapped pricing:");
    println!(
        "  {:>5}  {:<16} {:<8} {:<6} {:>11} {:>8}  vs serial",
        "chips", "topology", "algo", "part", "total ms", "speedup"
    );
    for &p in &chips {
        let (Some(w), Some(s)) = (best_joint(&overlapped, p), best_joint(&serial, p)) else {
            continue;
        };
        println!(
            "  {:>5}  {:<16} {:<8} {:<6} {:>11.3} {:>7.2}x  {:>8.3} ms",
            p,
            w.topology.to_string(),
            w.algo.to_string(),
            w.partition.to_string(),
            w.total_ms,
            w.speedup,
            s.total_ms
        );
    }
    println!();
    println!("scaling knee per (topology × algo × partition), overlapped:");
    for &t in &topologies {
        for &a in &algos {
            for &p in &partitions {
                let knee = scaling_knee(&series(&overlapped, t, a, p));
                match knee {
                    Some(k) => println!("  {t} [{a}] × {p}: {k} chips"),
                    None => println!("  {t} [{a}] × {p}: (no points)"),
                }
            }
        }
    }
    Ok(())
}

/// `flat loopnest` — print the Figure 4-style loop nest of a dataflow.
pub fn loopnest(args: &Args) -> Result<(), String> {
    let setup = parse::setup(args)?;
    let df = parse::dataflow(&args.get("dataflow", "flat-r64"))?;
    println!(
        "# {} — {} (B={}, N={})\n",
        df.label(),
        setup.model,
        setup.batch,
        setup.seq
    );
    print!("{}", flat_core::loop_nest(&df, setup.block.config()));
    Ok(())
}

/// `flat trace` — print the execution timeline.
pub fn trace(args: &Args) -> Result<(), String> {
    let setup = parse::setup(args)?;
    let df = parse::dataflow(&args.get("dataflow", "flat-r64"))?;
    let width = parse::u64_arg(args, "width", 48)? as usize;
    let cm = CostModel::new(&setup.accel);
    let schedule = cm.la_schedule(&setup.block, &df);
    println!(
        "# {} on {} — {} (B={}, N={})",
        df.label(),
        setup.accel.name,
        setup.model,
        setup.batch,
        setup.seq
    );
    println!(
        "# makespan {:.4e} cycles, util {:.3}\n",
        schedule.makespan(),
        schedule.total.util()
    );
    print!("{}", schedule.render(width));
    Ok(())
}

/// `flat sim` — simulate a dataflow and compare with the analytical
/// model.
///
/// `--engine analytical` (default) runs the `flat-sim` job-graph
/// simulator; `--engine event` runs the `flat-desim` discrete-event
/// backend; `--engine both` runs the closed-form pricing against the
/// event backend and reports their relative divergence (add `--sweep`
/// for the seq-len × dataflow validation grid).
pub fn sim(args: &Args) -> Result<(), String> {
    let setup = parse::setup(args)?;
    let df = parse::dataflow(&args.get("dataflow", "flat-r64"))?;
    let engine = flat_sim::SimBackend::parse(&args.get("engine", "analytical"))?;
    let tolerance = parse::opt_f64_arg(args, "tolerance")?.unwrap_or(0.05);
    if !(0.0..=1.0).contains(&tolerance) {
        return Err(format!(
            "--tolerance expects a fraction in [0, 1], got {tolerance}"
        ));
    }
    let buffers = parse::u64_arg(args, "buffers", 2)?;
    if !(1..=64).contains(&buffers) {
        return Err(format!(
            "--buffers expects 1..=64 staging slots, got {buffers}"
        ));
    }
    if args.flag("sweep") && engine != flat_sim::SimBackend::Both {
        return Err("--sweep requires --engine both".to_owned());
    }
    let trace_path = args.get("trace-json", "");
    match engine {
        flat_sim::SimBackend::Analytical => sim_analytical(args, &setup, &df, &trace_path),
        flat_sim::SimBackend::Event => sim_event(args, &setup, &df, buffers as u32, &trace_path),
        flat_sim::SimBackend::Both => {
            sim_both(args, &setup, &df, buffers as u32, tolerance, &trace_path)
        }
    }
}

/// The historical `flat sim` path: the job-graph simulator vs the
/// closed form.
fn sim_analytical(
    args: &Args,
    setup: &parse::Setup,
    df: &flat_core::BlockDataflow,
    trace_path: &str,
) -> Result<(), String> {
    let opts = flat_sim::SimOptions {
        record_trace: !trace_path.is_empty(),
        // Keep exported traces viewable.
        max_simulated_iterations: if trace_path.is_empty() { 4096 } else { 512 },
        ..flat_sim::SimOptions::default()
    };
    let cm = CostModel::new(&setup.accel);
    let analytical = cm.la_cost(&setup.block, &df.la);
    let simulated = match df.la {
        flat_core::LaExecution::Fused(fused) => {
            flat_sim::simulate_fused(&setup.accel, &setup.block, &fused, opts)
        }
        flat_core::LaExecution::Sequential { .. } => {
            flat_sim::simulate_sequential(&setup.accel, &setup.block, opts)
        }
    };
    if !trace_path.is_empty() {
        std::fs::write(trace_path, simulated.to_chrome_trace())
            .map_err(|e| format!("{trace_path}: {e}"))?;
        eprintln!("wrote Chrome trace to {trace_path} (open in chrome://tracing or Perfetto)");
    }
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "command": "sim",
                "engine": "analytical",
                "dataflow": df.label(),
                "seq": setup.seq,
                "analytical_cycles": analytical.cycles,
                "simulated_cycles": simulated.cycles,
                "ratio": simulated.cycles / analytical.cycles,
            }))
            .expect("report serializes")
        );
        return Ok(());
    }
    println!(
        "workload:    {} (B={}, N={}) on {}",
        setup.model, setup.batch, setup.seq, setup.accel.name
    );
    println!("dataflow:    {}", df.label());
    println!();
    println!(
        "analytical:  {:.4e} cycles (util {:.3})",
        analytical.cycles,
        analytical.util()
    );
    println!("simulated:   {simulated}");
    println!(
        "sim/analytical: {:.3}",
        simulated.cycles / analytical.cycles
    );
    println!();
    for u in &simulated.resources {
        println!(
            "  {:5} busy {:.3e} cycles ({:.1}% of makespan)",
            u.name,
            u.busy_cycles,
            u.occupancy * 100.0
        );
    }
    Ok(())
}

/// Event-backend options shared by `--engine event` and `--engine both`.
fn event_options(
    args: &Args,
    buffers: u32,
    trace_path: &str,
) -> Result<flat_sim::EventOptions, String> {
    Ok(flat_sim::EventOptions {
        model: parse::model_options(args)?,
        buffers,
        // Keep exported traces viewable.
        max_iterations: if trace_path.is_empty() { 4096 } else { 512 },
        record_trace: !trace_path.is_empty(),
        ..flat_sim::EventOptions::default()
    })
}

/// `flat sim --engine event` — the discrete-event backend alone.
fn sim_event(
    args: &Args,
    setup: &parse::Setup,
    df: &flat_core::BlockDataflow,
    buffers: u32,
    trace_path: &str,
) -> Result<(), String> {
    let opts = event_options(args, buffers, trace_path)?;
    let report = flat_sim::simulate_la_event(&setup.accel, &setup.block, &df.la, opts)
        .map_err(|e| e.to_string())?;
    if !trace_path.is_empty() {
        std::fs::write(trace_path, report.to_chrome_trace())
            .map_err(|e| format!("{trace_path}: {e}"))?;
        eprintln!("wrote Chrome trace to {trace_path} (open in https://ui.perfetto.dev)");
    }
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "command": "sim",
                "engine": "event",
                "dataflow": df.label(),
                "seq": setup.seq,
                "event_cycles": report.cycles,
                "simulated_iterations": report.simulated_iterations,
                "total_iterations": report.total_iterations,
                "extrapolated": report.extrapolated,
                "buffers": json!({
                    "capacity": report.buffers.capacity,
                    "mean_in_flight": report.buffers.mean_in_flight,
                    "peak_in_flight": report.buffers.peak_in_flight,
                }),
                "lanes": report.lanes.iter().map(|l| json!({
                    "name": l.name,
                    "busy_cycles": l.busy_cycles,
                    "occupancy": l.occupancy,
                })).collect::<Vec<_>>(),
            }))
            .expect("report serializes")
        );
        return Ok(());
    }
    println!(
        "workload:    {} (B={}, N={}) on {}",
        setup.model, setup.batch, setup.seq, setup.accel.name
    );
    println!("dataflow:    {}", df.label());
    println!();
    println!(
        "event:       {:.4e} cycles ({} of {} iterations simulated{})",
        report.cycles,
        report.simulated_iterations,
        report.total_iterations,
        if report.extrapolated {
            ", extrapolated"
        } else {
            ""
        }
    );
    println!(
        "buffers:     {} slots, mean {:.2} in flight, peak {}",
        report.buffers.capacity, report.buffers.mean_in_flight, report.buffers.peak_in_flight
    );
    println!();
    for l in &report.lanes {
        println!(
            "  {:5} busy {:.3e} cycles ({:.1}% of makespan)",
            l.name,
            l.busy_cycles,
            l.occupancy * 100.0
        );
    }
    Ok(())
}

/// `flat sim --engine both` — the agreement harness: analytical pricing
/// vs the event backend, per-configuration relative divergence.
fn sim_both(
    args: &Args,
    setup: &parse::Setup,
    df: &flat_core::BlockDataflow,
    buffers: u32,
    tolerance: f64,
    trace_path: &str,
) -> Result<(), String> {
    let opts = event_options(args, buffers, trace_path)?;
    let agreement =
        flat_sim::agreement(&setup.accel, &setup.block, &df.la, opts).map_err(|e| e.to_string())?;
    let sweep = if args.flag("sweep") {
        flat_sim::agreement_sweep(&setup.accel, &[512, 1024, 4096], opts)
            .map_err(|e| e.to_string())?
    } else {
        Vec::new()
    };
    if !trace_path.is_empty() {
        let report = flat_sim::simulate_la_event(&setup.accel, &setup.block, &df.la, opts)
            .map_err(|e| e.to_string())?;
        std::fs::write(trace_path, report.to_chrome_trace())
            .map_err(|e| format!("{trace_path}: {e}"))?;
        eprintln!("wrote Chrome trace to {trace_path} (open in https://ui.perfetto.dev)");
    }
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "command": "sim",
                "engine": "both",
                "dataflow": df.label(),
                "seq": setup.seq,
                "tolerance": tolerance,
                "analytical_cycles": agreement.analytical_cycles,
                "event_cycles": agreement.event_cycles,
                "divergence": agreement.divergence,
                "within_tolerance": agreement.within(tolerance),
                "sweep": sweep.iter().map(|r| json!({
                    "dataflow": r.dataflow,
                    "seq": r.seq_len,
                    "analytical_cycles": r.agreement.analytical_cycles,
                    "event_cycles": r.agreement.event_cycles,
                    "divergence": r.agreement.divergence,
                    "within_tolerance": r.agreement.within(tolerance),
                })).collect::<Vec<_>>(),
            }))
            .expect("report serializes")
        );
        return Ok(());
    }
    println!(
        "workload:    {} (B={}, N={}) on {}",
        setup.model, setup.batch, setup.seq, setup.accel.name
    );
    println!("dataflow:    {}", df.label());
    println!();
    println!("analytical:  {:.4e} cycles", agreement.analytical_cycles);
    println!("event:       {:.4e} cycles", agreement.event_cycles);
    println!(
        "divergence:  {:+.3}% ({} tolerance {:.1}%)",
        agreement.divergence * 100.0,
        if agreement.within(tolerance) {
            "within"
        } else {
            "EXCEEDS"
        },
        tolerance * 100.0
    );
    if !sweep.is_empty() {
        println!();
        println!(
            "{:<10} {:>6} {:>14} {:>14} {:>10}",
            "dataflow", "seq", "analytical", "event", "diverge"
        );
        for r in &sweep {
            println!(
                "{:<10} {:>6} {:>14.4e} {:>14.4e} {:>+9.3}%{}",
                r.dataflow,
                r.seq_len,
                r.agreement.analytical_cycles,
                r.agreement.event_cycles,
                r.agreement.divergence * 100.0,
                if r.agreement.within(tolerance) {
                    ""
                } else {
                    "  <-- exceeds"
                }
            );
        }
    }
    Ok(())
}

/// `flat serve` — run a synthetic serving workload through the
/// continuous-batching engine and report TTFT/TPOT/throughput metrics.
///
/// Every flag is validated up front: a malformed value (bad `--seed`,
/// unknown `--task`, non-numeric knob) comes back as a one-line
/// diagnostic for `main` to print before exiting nonzero — never a panic
/// unwinding through the CLI.
pub fn serve(args: &Args) -> Result<(), String> {
    let setup = parse::setup(args)?;
    let requests = parse::u64_arg(args, "requests", 256)? as usize;
    let rate: f64 = args
        .get("arrival-rate", "64")
        .parse()
        .map_err(|_| "--arrival-rate expects a number (requests/s)".to_owned())?;
    if !(rate > 0.0 && rate.is_finite()) {
        return Err("--arrival-rate must be positive".to_owned());
    }
    let seed = parse::u64_arg(args, "seed", 0xF1A7)?;
    let task = flat_serve::task_by_name(&args.get("task", "short-nlp"))?;
    let mut spec = flat_serve::WorkloadSpec::from_task(task, requests, rate);
    if let Some(prompt) = parse::opt_u64_arg(args, "prompt")? {
        spec.prompt_mean = prompt as usize;
    }
    if let Some(output) = parse::opt_u64_arg(args, "output")? {
        spec.output_mean = output as usize;
    }
    spec.slo_ms = parse::opt_f64_arg(args, "slo-ms")?;
    let mut cfg = flat_serve::EngineConfig::for_platform(&setup.accel, &setup.model, seed);
    cfg.block_tokens = parse::u64_arg(args, "block-tokens", cfg.block_tokens as u64)? as usize;
    cfg.prefill_chunk = parse::u64_arg(args, "chunk", cfg.prefill_chunk as u64)? as usize;
    cfg.max_batch = parse::u64_arg(args, "max-batch", cfg.max_batch as u64)? as usize;
    if let Some(mib) = parse::opt_u64_arg(args, "kv-mib")? {
        cfg.kv_budget = flat_tensor::Bytes::from_mib(mib);
    }
    cfg.precision = parse::precision(args)?;
    cfg.softmax = parse::softmax_kind(args)?;
    cfg.dedup = args.flag("dedup");
    cfg.window_ms = parse::opt_f64_arg(args, "window-ms")?;
    let faults = parse::opt_u64_arg(args, "chaos")?.map(flat_serve::FaultPlan::chaos);
    let mut workload = spec.generate(seed).map_err(|e| e.to_string())?;
    if let Some(plan) = &faults {
        plan.corrupt_workload(&mut workload);
    }
    let metrics = match open_trace(args)? {
        None => flat_serve::serve_with_faults(&setup.accel, &setup.model, &workload, &cfg, faults)
            .map_err(|e| e.to_string())?,
        Some((path, mut sink)) => {
            let metrics = flat_serve::serve_with_faults_traced(
                &setup.accel,
                &setup.model,
                &workload,
                &cfg,
                faults,
                &mut sink,
            )
            .map_err(|e| e.to_string())?;
            close_trace(&path, sink)?;
            metrics
        }
    };
    let metrics_path = args.get("metrics", "");
    if !metrics_path.is_empty() {
        std::fs::write(&metrics_path, metrics.registry().prometheus())
            .map_err(|e| format!("{metrics_path}: {e}"))?;
        eprintln!("wrote Prometheus metrics to {metrics_path}");
    }
    if args.flag("json") {
        println!("{}", metrics.to_json());
    } else {
        println!("accelerator: {}", setup.accel);
        println!(
            "model:       {} (serving, KV {} B/token)",
            setup.model, metrics.kv.bytes_per_token
        );
        println!(
            "workload:    {requests} requests, {rate} req/s, task {task}, prompt≈{}, output≈{}",
            spec.prompt_mean, spec.output_mean
        );
        println!();
        println!(
            "finished:    {}/{} requests in {:.1} ms ({} ticks, {} preemptions)",
            metrics.finished,
            metrics.requests,
            metrics.makespan_ms,
            metrics.ticks,
            metrics.preemptions
        );
        if metrics.dropped > 0 {
            println!(
                "dropped:     {} requests ({} infeasible, {} past-deadline, {} corrupt)",
                metrics.dropped,
                metrics.drops.infeasible,
                metrics.drops.deadline,
                metrics.drops.corrupt
            );
        }
        println!(
            "tokens:      {} prefill + {} decode, {:.1} decode tok/s ({:.1} goodput tok/s)",
            metrics.prefill_tokens,
            metrics.decode_tokens,
            metrics.decode_tokens_per_s,
            metrics.goodput_tokens_per_s
        );
        let p = |name: &str, x: &flat_serve::Percentiles| {
            println!(
                "{name}:        p50 {:8.2} ms   p95 {:8.2} ms   p99 {:8.2} ms   max {:8.2} ms",
                x.p50_ms, x.p95_ms, x.p99_ms, x.max_ms
            );
        };
        p("TTFT", &metrics.ttft);
        p("TPOT", &metrics.tpot);
        p("E2E ", &metrics.e2e);
        println!(
            "KV pool:     {} blocks × {} tokens, peak {:.1}% mean {:.1}% occupancy",
            metrics.kv.total_blocks,
            metrics.kv.block_tokens,
            metrics.kv.peak_occupancy * 100.0,
            metrics.kv.mean_occupancy * 100.0
        );
    }
    Ok(())
}

/// Parses the `--scale MS:CHIPS[,MS:CHIPS...]` elastic plan.
fn scale_arg(args: &Args) -> Result<Vec<(f64, usize)>, String> {
    let raw = args.get("scale", "");
    if raw.is_empty() {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|pair| {
            let (ms, chips) = pair
                .split_once(':')
                .ok_or_else(|| format!("--scale expects MS:CHIPS pairs, got {pair:?}"))?;
            let at_ms: f64 = ms
                .trim()
                .parse()
                .map_err(|_| format!("--scale time must be a number, got {ms:?}"))?;
            let chips: usize = chips
                .trim()
                .parse()
                .map_err(|_| format!("--scale chips must be a positive integer, got {chips:?}"))?;
            Ok((at_ms, chips))
        })
        .collect()
}

/// `flat fleet` — the sustained-load fleet harness: the default
/// three-tenant mix (interactive with an SLO and a shared prompt
/// prefix, batch, background) on a diurnal arrival curve, served on an
/// optionally elastic cluster with windowed trajectory sampling.
///
/// Deterministic for a fixed flag set: `--seed S --json` twice is
/// byte-identical, chaos included — CI holds a smoke to this.
pub fn fleet(args: &Args) -> Result<(), String> {
    let setup = parse::setup(args)?;
    let requests = parse::u64_arg(args, "requests", 512)? as usize;
    let seed = parse::u64_arg(args, "seed", 0xF1A7)?;
    let mut spec = flat_fleet::FleetSpec::sustained(requests);
    if let Some(rate) = parse::opt_f64_arg(args, "rate")? {
        spec.curve.base_rate_per_s = rate;
    }
    if let Some(amp) = parse::opt_f64_arg(args, "amplitude")? {
        spec.curve.amplitude = amp;
    }
    if let Some(period_s) = parse::opt_f64_arg(args, "period-s")? {
        spec.curve.period_ms = period_s * 1e3;
    }
    let topology = Topology::by_name(&args.get("topology", "ring"))?;
    let cfg = flat_fleet::FleetConfig {
        chips: parse::u64_arg(args, "chips", 1)? as usize,
        topology,
        window_ms: parse::opt_f64_arg(args, "window-ms")?.unwrap_or(1_000.0),
        dedup: !args.flag("no-dedup"),
        scale: scale_arg(args)?,
        chaos_seed: parse::opt_u64_arg(args, "chaos")?,
    };
    let m = match open_trace(args)? {
        None => flat_fleet::run_fleet(&setup.accel, &setup.model, &spec, &cfg, seed)
            .map_err(|e| e.to_string())?,
        Some((path, mut sink)) => {
            let m = flat_fleet::run_fleet_traced(
                &setup.accel,
                &setup.model,
                &spec,
                &cfg,
                seed,
                &mut sink,
            )
            .map_err(|e| e.to_string())?;
            close_trace(&path, sink)?;
            m
        }
    };
    if args.flag("json") {
        println!("{}", m.to_json());
        return Ok(());
    }
    let s = &m.dist.serve;
    println!("accelerator: {}", setup.accel);
    println!(
        "fleet:       {} requests over {} tenants, base {} req/s ±{:.0}% on a {:.0} s day",
        m.offered,
        spec.tenants.len(),
        spec.curve.base_rate_per_s,
        spec.curve.amplitude * 100.0,
        spec.curve.period_ms / 1e3
    );
    println!(
        "cluster:     {} -> {} chips ({}), dedup {}, {} resizes",
        m.dist.chips,
        m.dist.chips_final,
        m.dist.topology,
        if m.dedup { "on" } else { "off" },
        m.dist.scale_events.len()
    );
    println!();
    println!(
        "finished:    {}/{} in {:.1} ms ({:.4} virtual hours), {} dropped ({} infeasible, {} deadline, {} corrupt)",
        s.finished,
        s.requests,
        s.makespan_ms,
        m.virtual_hours,
        s.dropped,
        s.drops.infeasible,
        s.drops.deadline,
        s.drops.corrupt
    );
    println!(
        "tokens:      {:.1} decode tok/s, {:.1} goodput tok/s; KV dedup hits {}, peak {} physical / {} logical blocks",
        s.decode_tokens_per_s,
        s.goodput_tokens_per_s,
        s.kv.dedup_hits,
        (s.kv.peak_occupancy * s.kv.total_blocks as f64).round() as u64,
        s.kv.peak_logical_blocks
    );
    println!();
    println!(
        "  {:>6} {:>8} {:>8} {:>7} {:>9} {:>14} {:>9}",
        "tenant", "offered", "finished", "dropped", "goodtok", "slo_attainment", "kv_share"
    );
    for t in &s.tenants {
        println!(
            "  {:>6} {:>8} {:>8} {:>7} {:>9} {:>14.3} {:>8.1}%",
            t.tenant,
            t.requests,
            t.finished,
            t.dropped,
            t.good_tokens,
            t.slo_attainment,
            t.kv_share * 100.0
        );
    }
    if !m.dist.scale_events.is_empty() {
        println!();
        for ev in &m.dist.scale_events {
            println!(
                "  scale @{:.1} ms: {} -> {} chips, {} blocks ({:.1} KiB) re-striped in {:.3} ms, {} preempted",
                ev.applied_ms,
                ev.from_chips,
                ev.to_chips,
                ev.migrated_blocks,
                ev.migrated_bytes / 1024.0,
                ev.migration_ms,
                ev.preempted
            );
        }
    }
    println!();
    println!(
        "trajectory:  {} windows of {:.0} ms (goodput first/peak/last {:.1}/{:.1}/{:.1} tok/s)",
        s.windows.len(),
        cfg.window_ms,
        s.windows.first().map_or(0.0, |w| w.goodput_tokens_per_s),
        s.windows
            .iter()
            .map(|w| w.goodput_tokens_per_s)
            .fold(0.0f64, f64::max),
        s.windows.last().map_or(0.0, |w| w.goodput_tokens_per_s)
    );
    if !args.flag("no-insight") && !m.findings.is_empty() {
        println!();
        println!(
            "insight:     {} finding(s), top {}:",
            m.findings.len(),
            m.findings.len().min(3)
        );
        for f in m.findings.iter().take(3) {
            println!(
                "  [{}] {} @{:.1}..{:.1} ms ({} windows): {}",
                f.severity, f.kind, f.start_ms, f.end_ms, f.windows, f.detail
            );
        }
    }
    Ok(())
}

/// Positional operands of the `insight` subcommand: the raw argv tail
/// minus `--key value` / `--flag` tokens, mirroring
/// [`Args::parse_from`]'s consumption rule (a `--key` eats the next
/// token iff that token does not itself start with `--`).
fn positionals(raw: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if raw[i].starts_with("--") {
            if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                i += 2;
            } else {
                i += 1;
            }
        } else {
            out.push(raw[i].as_str());
            i += 1;
        }
    }
    out
}

/// Reads and attributes one Chrome trace document.
fn load_attribution(path: &str) -> Result<flat_insight::Attribution, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    flat_insight::Attribution::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Prints one phase row of the attribution table.
fn phase_row(name: &str, stat: &flat_insight::PhaseStat, e2e_total: f64) {
    let share = if e2e_total > 0.0 {
        100.0 * stat.total_ms / e2e_total
    } else {
        0.0
    };
    println!(
        "  {:<18} {:>12.3} {:>7.1}% {:>10.3} {:>10.3} {:>10.3}",
        name, stat.total_ms, share, stat.dist.p50_ms, stat.dist.p95_ms, stat.dist.p99_ms
    );
}

/// `flat insight attr` — critical-path attribution of one traced run.
fn insight_attr(path: &str, args: &Args) -> Result<(), String> {
    let a = load_attribution(path)?;
    let metrics_path = args.get("metrics", "");
    if !metrics_path.is_empty() {
        std::fs::write(&metrics_path, a.registry().prometheus())
            .map_err(|e| format!("{metrics_path}: {e}"))?;
        eprintln!("wrote Prometheus metrics to {metrics_path}");
    }
    if args.flag("json") {
        println!("{}", a.to_json());
        return Ok(());
    }
    println!(
        "requests:    {} ({} finished, {} dropped), makespan {:.1} ms, {} preemptions",
        a.requests, a.finished, a.dropped, a.makespan_ms, a.preemptions
    );
    for d in &a.drop_reasons {
        println!("  dropped {:>5}: {}", d.count, d.reason);
    }
    println!();
    println!(
        "  {:<18} {:>12} {:>8} {:>10} {:>10} {:>10}",
        "phase", "total_ms", "share", "p50_ms", "p95_ms", "p99_ms"
    );
    let e2e_total = a.phases.e2e.total_ms;
    for (name, stat) in [
        ("queued", &a.phases.queued),
        ("prefill", &a.phases.prefill),
        ("recompute", &a.phases.recompute),
        ("decode", &a.phases.decode),
        ("collective_exposed", &a.phases.collective_exposed),
        ("other", &a.phases.other),
        ("e2e", &a.phases.e2e),
    ] {
        phase_row(name, stat, e2e_total);
    }
    if a.tenants.len() > 1 {
        println!();
        for t in &a.tenants {
            println!(
                "  tenant {}: {} finished, e2e p50/p95 {:.3}/{:.3} ms, queued p95 {:.3} ms, exposed p95 {:.3} ms",
                t.tenant,
                t.finished,
                t.breakdown.e2e.dist.p50_ms,
                t.breakdown.e2e.dist.p95_ms,
                t.breakdown.queued.dist.p95_ms,
                t.breakdown.collective_exposed.dist.p95_ms
            );
        }
    }
    Ok(())
}

/// `flat insight diff` — differential analysis of two traced runs.
fn insight_diff(path_a: &str, path_b: &str, args: &Args) -> Result<(), String> {
    let a = load_attribution(path_a)?;
    let b = load_attribution(path_b)?;
    let d = flat_insight::DiffReport::of(&a, &b);
    if args.flag("json") {
        println!("{}", d.to_json());
        return Ok(());
    }
    println!(
        "matched:     {} requests (A {} finished / B {} finished, A only {}, B only {})",
        d.matched, d.a_finished, d.b_finished, d.only_in_a, d.only_in_b
    );
    println!(
        "makespan:    A {:.1} ms -> B {:.1} ms; total e2e delta {:+.3} ms, dominant phase: {}",
        d.a_makespan_ms, d.b_makespan_ms, d.e2e_delta_ms, d.dominant_phase
    );
    println!();
    println!(
        "  {:<18} {:>12} {:>12} {:>12}",
        "phase", "A_ms", "B_ms", "delta_ms"
    );
    for p in &d.phase_deltas {
        println!(
            "  {:<18} {:>12.3} {:>12.3} {:>+12.3}",
            p.phase, p.a_ms, p.b_ms, p.delta_ms
        );
    }
    if !d.drop_shifts.is_empty() {
        println!();
        for s in &d.drop_shifts {
            println!("  drops[{}]: {} -> {}", s.reason, s.a, s.b);
        }
    }
    if !d.top_request_deltas.is_empty() && !d.zero_delta {
        println!();
        for r in &d.top_request_deltas {
            println!(
                "  request {:>5}: {:.3} -> {:.3} ms ({:+.3}, dominated by {})",
                r.id, r.a_e2e_ms, r.b_e2e_ms, r.delta_ms, r.dominant_phase
            );
        }
    }
    println!();
    println!(
        "verdict:     {}",
        if d.zero_delta {
            "runs are attribution-identical (zero delta)"
        } else {
            "runs differ"
        }
    );
    Ok(())
}

/// `flat insight bench` — the bench observatory over committed
/// `BENCH_PR*.json` snapshots.
fn insight_bench(args: &Args) -> Result<(), String> {
    let dir = args.get("dir", ".");
    let history = flat_insight::load_history(std::path::Path::new(&dir))?;
    if history.is_empty() {
        return Err(format!("no BENCH_PR*.json snapshots found in {dir}"));
    }
    let current_path = args.get("current", "");
    let (priors, current) = if current_path.is_empty() {
        let (last, rest) = history.split_last().ok_or("empty history")?;
        (rest.to_vec(), last.clone())
    } else {
        let text =
            std::fs::read_to_string(&current_path).map_err(|e| format!("{current_path}: {e}"))?;
        let snap = flat_insight::BenchSnapshot::parse(&text)
            .map_err(|e| format!("{current_path}: {e}"))?;
        (history, snap)
    };
    let check = flat_insight::check_snapshot(&priors, &current);
    if args.flag("json") {
        println!("{}", check.to_json());
    } else {
        println!(
            "observatory: {} snapshots ({} -> {}), gating {} against best-prior baselines",
            priors.len() + 1,
            priors
                .first()
                .map_or(current.tag.as_str(), |s| s.tag.as_str()),
            current.tag,
            current.tag
        );
        println!(
            "checked:     {} aligned entries, {} new, {} missing",
            check.checked,
            check.new_entries.len(),
            check.missing_entries.len()
        );
        for t in flat_insight::trajectories(&priors) {
            if let (Some(first), Some(last)) = (t.points.first(), t.points.last()) {
                if t.points.len() > 1 {
                    println!(
                        "  {:<64} {:>10.3} -> {:>10.3} ms over {} snapshots (tol {:.1}x)",
                        t.key,
                        first.mean_ms,
                        last.mean_ms,
                        t.points.len(),
                        flat_insight::group_tolerance(&t.group)
                    );
                }
            }
        }
        for r in &check.regressions {
            println!("  REGRESSION {} [{}]: {}", r.key, r.gate, r.detail);
        }
        println!(
            "verdict:     {}",
            if check.pass { "pass" } else { "regression" }
        );
    }
    if args.flag("check") && !check.pass {
        return Err(format!(
            "bench regression: {} gate failure(s) in {}",
            check.regressions.len(),
            current.tag
        ));
    }
    Ok(())
}

/// `flat insight` — trace attribution, differential run analysis, and
/// the bench observatory. `raw` is the argv tail including positional
/// operands (mode and input files), which [`Args`] does not keep.
pub fn insight(raw: &[String], args: &Args) -> Result<(), String> {
    let pos = positionals(raw);
    match pos.as_slice() {
        ["attr", path] => insight_attr(path, args),
        ["diff", a, b] => insight_diff(a, b, args),
        ["bench"] => insight_bench(args),
        _ => Err(
            "usage: flat insight attr TRACE.json | flat insight diff A.json B.json | \
             flat insight bench [--dir DIR] [--current FILE] [--check]  (note: positional \
             operands must come before --flags so they are not read as flag values)"
                .to_owned(),
        ),
    }
}

/// Parses the `--chips` comma list.
fn chips_arg(args: &Args) -> Result<Vec<usize>, String> {
    let raw = args.get("chips", "1,2,4,8");
    let chips: Vec<usize> = raw
        .split(',')
        .map(|s| s.trim().parse::<usize>().map_err(|_| ()))
        .collect::<Result<_, _>>()
        .map_err(|()| format!("--chips expects a comma list of positive integers, got {raw:?}"))?;
    if chips.is_empty() || chips.contains(&0) {
        return Err(format!("--chips entries must be positive, got {raw:?}"));
    }
    Ok(chips)
}

/// Parses `--topology` (a name, a comma list, or `all`).
fn topologies_arg(args: &Args) -> Result<Vec<Topology>, String> {
    let raw = args.get("topology", "all");
    if raw == "all" {
        return Ok(Topology::all().to_vec());
    }
    raw.split(',')
        .map(|s| Topology::by_name(s.trim()))
        .collect()
}

/// Parses `--algo` (a name, a comma list, or `all`).
fn algos_arg(args: &Args, default: &str) -> Result<Vec<CollectiveAlgo>, String> {
    let raw = args.get("algo", default);
    if raw == "all" {
        return Ok(CollectiveAlgo::all().to_vec());
    }
    raw.split(',')
        .map(|s| CollectiveAlgo::by_name(s.trim()))
        .collect()
}

/// Parses `--partition` (a name, a comma list, or `all`).
fn partitions_arg(args: &Args, default: &str) -> Result<Vec<Partition>, String> {
    let raw = args.get("partition", default);
    if raw == "all" {
        return Ok(Partition::all().to_vec());
    }
    raw.split(',')
        .map(|s| Partition::by_name(s.trim()))
        .collect()
}

/// Resolves the inter-chip link: the class matching the platform preset,
/// with `--link-gbps` / `--link-us` overrides.
fn link_arg(args: &Args, platform: &str) -> Result<Link, String> {
    let mut link = if platform == "edge" {
        Link::edge()
    } else {
        Link::cloud()
    };
    if let Some(gbps) = parse::opt_f64_arg(args, "link-gbps")? {
        if gbps <= 0.0 {
            return Err("--link-gbps must be positive".to_owned());
        }
        link.bytes_per_s = gbps * 1e9;
    }
    if let Some(us) = parse::opt_f64_arg(args, "link-us")? {
        if us < 0.0 {
            return Err("--link-us must be non-negative".to_owned());
        }
        link.latency_s = us * 1e-6;
    }
    Ok(link)
}

/// `flat dist` — the multi-accelerator execution model.
///
/// Default mode sweeps chip count × topology × partition over one
/// attention layer, re-searching the per-shard dataflow with `flat-dse`
/// at every cluster size, and reports each series' scaling knee. With
/// `--requests N` it instead serves a synthetic request stream on the
/// cluster through the `flat-serve` engine (one run per chip count).
///
/// Output is deterministic for a fixed flag set: the sweep is analytic
/// and the serving engine is seeded, so `--seed S --json` twice is
/// byte-identical.
pub fn dist(args: &Args) -> Result<(), String> {
    let setup = parse::setup(args)?;
    let chips = chips_arg(args)?;
    let topologies = topologies_arg(args)?;
    let link = link_arg(args, &setup.accel.name)?;
    let seed = parse::u64_arg(args, "seed", 0xF1A7)?;
    if let Some(requests) = parse::opt_u64_arg(args, "requests")? {
        let partitions = partitions_arg(args, "kv")?;
        return dist_serve(
            args,
            &setup,
            requests as usize,
            &chips,
            &topologies,
            &partitions,
            link,
            seed,
        );
    }
    if !args.get("trace", "").is_empty() {
        return Err("--trace applies to serving mode: add --requests N".to_owned());
    }
    let partitions = partitions_arg(args, "head")?;
    let algos = algos_arg(args, "ring")?;
    let overlap = args.flag("overlap");
    // `--sweep` is the documented name for this default mode; accept it
    // so scripts can spell the intent out.
    let _ = args.flag("sweep");
    let cfg = setup.model.config(setup.batch, setup.seq);
    let sweep = Sweep::new(setup.accel.clone(), link)
        .with_algos(algos.clone())
        .with_overlap(overlap);
    let points = sweep.run(&cfg, &chips, &topologies, &partitions);

    if args.flag("json") {
        let knees: Vec<serde_json::Value> = topologies
            .iter()
            .flat_map(|&t| algos.iter().map(move |&a| (t, a)))
            .flat_map(|(t, a)| partitions.iter().map(move |&p| (t, a, p)))
            .map(|(t, a, p)| {
                json!({
                    "topology": t.to_string(),
                    "algo": a.to_string(),
                    "partition": p.to_string(),
                    "knee_chips": scaling_knee(&series(&points, t, a, p)),
                })
            })
            .collect();
        let v = json!({
            "platform": setup.accel.name,
            "model": setup.model.to_string(),
            "batch": setup.batch,
            "seq": setup.seq,
            "seed": seed,
            "link_gbps": link.bytes_per_s / 1e9,
            "link_us": link.latency_s * 1e6,
            "overlap": overlap,
            "points": points,
            "knees": knees,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&v).expect("sweep serializes")
        );
        return Ok(());
    }

    println!("accelerator: {}", setup.accel);
    println!(
        "workload:    {} (B={}, N={})",
        setup.model, setup.batch, setup.seq
    );
    println!("link:        {link}");
    println!(
        "pricing:     {}",
        if overlap {
            "overlapped (tick = max(compute, collective))"
        } else {
            "serial (tick = compute + collective)"
        }
    );
    for &t in &topologies {
        for &a in &algos {
            for &p in &partitions {
                let s = series(&points, t, a, p);
                let knee = scaling_knee(&s);
                println!();
                match knee {
                    Some(k) => println!("{t} [{a}] × {p} (knee at {k} chips):"),
                    None => println!("{t} [{a}] × {p}:"),
                }
                println!(
                    "  {:>5}  {:<10} {:>11} {:>11} {:>11} {:>11} {:>8}  fabric%",
                    "chips",
                    "dataflow",
                    "compute ms",
                    "fabric ms",
                    "exposed ms",
                    "total ms",
                    "speedup"
                );
                for pt in &s {
                    println!(
                        "  {:>5}  {:<10} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>7.2}x  {:>6.1}%",
                        pt.chips,
                        pt.dataflow,
                        pt.compute_ms,
                        pt.collective_ms,
                        pt.exposed_ms,
                        pt.total_ms,
                        pt.speedup,
                        pt.fabric_fraction * 100.0
                    );
                }
            }
        }
    }
    Ok(())
}

/// The `--requests` branch of `flat dist`: run the serving engine on
/// clusters of each requested size.
#[allow(clippy::too_many_arguments)]
fn dist_serve(
    args: &Args,
    setup: &parse::Setup,
    requests: usize,
    chips: &[usize],
    topologies: &[Topology],
    partitions: &[Partition],
    link: Link,
    seed: u64,
) -> Result<(), String> {
    let &topology = topologies
        .first()
        .ok_or("--topology must name one topology")?;
    let &partition = partitions
        .first()
        .ok_or("--partition must name one partition")?;
    if topologies.len() > 1 || partitions.len() > 1 {
        return Err(
            "serving mode takes a single --topology and --partition (not a list/all)".to_owned(),
        );
    }
    let algos = algos_arg(args, "ring")?;
    let &algo = algos.first().ok_or("--algo must name one algorithm")?;
    if algos.len() > 1 {
        return Err("serving mode takes a single --algo (not a list/all)".to_owned());
    }
    let overlap = args.flag("overlap");
    let rate: f64 = args
        .get("arrival-rate", "64")
        .parse()
        .map_err(|_| "--arrival-rate expects a number (requests/s)".to_owned())?;
    if !(rate > 0.0 && rate.is_finite()) {
        return Err("--arrival-rate must be positive".to_owned());
    }
    let task = flat_serve::task_by_name(&args.get("task", "short-nlp"))?;
    let mut spec = flat_serve::WorkloadSpec::from_task(task, requests, rate);
    if let Some(prompt) = parse::opt_u64_arg(args, "prompt")? {
        spec.prompt_mean = prompt as usize;
    }
    if let Some(output) = parse::opt_u64_arg(args, "output")? {
        spec.output_mean = output as usize;
    }
    let mut cfg = flat_serve::EngineConfig::for_platform(&setup.accel, &setup.model, seed);
    if let Some(mib) = parse::opt_u64_arg(args, "kv-mib")? {
        cfg.kv_budget = flat_tensor::Bytes::from_mib(mib);
    }
    let workload = spec.generate(seed).map_err(|e| e.to_string())?;
    let mut trace = open_trace(args)?;
    if trace.is_some() && chips.len() > 1 {
        return Err("--trace records one cluster: pass a single --chips value".to_owned());
    }

    let mut runs = Vec::new();
    for &p in chips {
        let dcfg = flat_serve::DistServeConfig {
            chips: p,
            topology,
            link,
            partition,
            algo,
            overlap,
        };
        let metrics = match trace.take() {
            None => flat_serve::serve_dist(&setup.accel, &setup.model, &workload, &cfg, &dcfg)
                .map_err(|e| e.to_string())?,
            Some((path, mut sink)) => {
                let metrics = flat_serve::serve_dist_traced(
                    &setup.accel,
                    &setup.model,
                    &workload,
                    &cfg,
                    &dcfg,
                    &mut sink,
                )
                .map_err(|e| e.to_string())?;
                close_trace(&path, sink)?;
                metrics
            }
        };
        runs.push(metrics);
    }

    if args.flag("json") {
        let v = json!({
            "platform": setup.accel.name,
            "model": setup.model.to_string(),
            "seed": seed,
            "topology": topology.to_string(),
            "partition": partition.to_string(),
            "algo": algo.to_string(),
            "overlap": overlap,
            "runs": runs,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&v).expect("serve runs serialize")
        );
    } else {
        println!("accelerator: {}", setup.accel);
        println!(
            "cluster:     {topology} [{algo}{}] × {partition}, link {link}, {requests} requests at {rate} req/s",
            if overlap { ", overlapped" } else { "" }
        );
        println!();
        for m in &runs {
            println!(
                "{:>3} chips: {}/{} finished in {:>9.1} ms, {:>8.1} tok/s, fabric {:>8.1} ms exposed {:>8.1} ms ({:>4.1}%), peak shard KV {:.1}%",
                m.chips,
                m.serve.finished,
                m.serve.requests,
                m.serve.makespan_ms,
                m.serve.decode_tokens_per_s,
                m.fabric_busy_ms,
                m.fabric_exposed_ms,
                m.fabric_fraction * 100.0,
                m.per_shard_kv_peak_occupancy.iter().copied().fold(0.0f64, f64::max) * 100.0
            );
        }
    }
    Ok(())
}

/// `flat bw` — minimum off-chip bandwidth for a target L-A utilization.
pub fn bw(args: &Args) -> Result<(), String> {
    let setup = parse::setup(args)?;
    let target = parse::u64_arg(args, "target-milli", 950)? as f64 / 1000.0;
    for (name, df) in [
        ("Base-opt", SpaceKind::Sequential),
        ("FLAT-opt", SpaceKind::Full),
    ] {
        let need = {
            let (mut lo, mut hi) = (1.0e8f64, 1.0e14f64);
            let util_at = |bw: f64| {
                let a = setup.accel.with_offchip_bw(bw);
                Dse::new(&a, &setup.block)
                    .best_la(df, flat_dse::Objective::MaxUtil)
                    .report
                    .util()
            };
            if util_at(hi) < target {
                None
            } else {
                while hi / lo > 1.05 {
                    let mid = (lo * hi).sqrt();
                    if util_at(mid) >= target {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                Some(hi)
            }
        };
        match need {
            Some(bw) => println!("{name:9} needs {:.1} GB/s for util >= {target}", bw / 1e9),
            None => println!("{name:9} cannot reach util {target} at any bandwidth"),
        }
    }
    Ok(())
}
