//! Shared argument resolution for the CLI commands.

use flat_arch::Accelerator;
use flat_bench::args::Args;
use flat_core::BlockDataflow;
use flat_dse::Objective;
use flat_tensor::Bytes;
use flat_workloads::{AttentionBlock, Model, Scope};

/// A resolved (accelerator, workload) pair.
pub struct Setup {
    pub accel: Accelerator,
    pub model: Model,
    pub block: AttentionBlock,
    pub batch: u64,
    pub seq: u64,
}

/// Resolves the platform/model/seq/batch arguments, applying overrides.
pub fn setup(args: &Args) -> Result<Setup, String> {
    let accel = accelerator(args)?;
    let model = if let Some(path) = optional(args, "model-json") {
        model_from_json(&path)?
    } else {
        let name = args.get("model", "bert");
        Model::by_name(&name).ok_or_else(|| format!("unknown model {name:?}"))?
    };
    let batch = u64_arg(args, "batch", 64)?;
    let seq = u64_arg(args, "seq", 4096)?;
    let block = model.block(batch, seq);
    Ok(Setup {
        accel,
        model,
        block,
        batch,
        seq,
    })
}

/// Integer value of `--key` with a one-line diagnostic instead of the
/// panic `Args::get_u64` carries — CLI input must never unwind.
pub fn u64_arg(args: &Args, key: &str, default: u64) -> Result<u64, String> {
    match optional(args, key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{key} expects a non-negative integer, got {raw:?}")),
    }
}

/// Optional integer `--key`: `Ok(None)` when absent, a diagnostic when
/// present but malformed.
pub fn opt_u64_arg(args: &Args, key: &str) -> Result<Option<u64>, String> {
    match optional(args, key) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("--{key} expects a non-negative integer, got {raw:?}")),
    }
}

/// Optional float `--key`: `Ok(None)` when absent, a diagnostic when
/// present but malformed or non-finite.
pub fn opt_f64_arg(args: &Args, key: &str) -> Result<Option<f64>, String> {
    match optional(args, key) {
        None => Ok(None),
        Some(raw) => match raw.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Some(v)),
            _ => Err(format!("--{key} expects a finite number, got {raw:?}")),
        },
    }
}

/// Loads a HuggingFace-style config file: `hidden_size`,
/// `num_attention_heads`, `num_hidden_layers`, `intermediate_size`
/// (falling back to `4 * hidden_size` when absent, as HF does for models
/// that omit it).
pub fn model_from_json(path: &str) -> Result<Model, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let get = |key: &str| -> Option<u64> { v.get(key).and_then(serde_json::Value::as_u64) };
    let hidden = get("hidden_size")
        .or_else(|| get("d_model"))
        .ok_or_else(|| format!("{path}: missing hidden_size/d_model"))?;
    let heads = get("num_attention_heads")
        .or_else(|| get("num_heads"))
        .ok_or_else(|| format!("{path}: missing num_attention_heads"))?;
    let blocks = get("num_hidden_layers")
        .or_else(|| get("num_layers"))
        .ok_or_else(|| format!("{path}: missing num_hidden_layers"))?;
    let ffn = get("intermediate_size")
        .or_else(|| get("d_ff"))
        .unwrap_or(4 * hidden);
    if hidden % heads != 0 {
        return Err(format!(
            "{path}: hidden_size {hidden} not divisible by {heads} heads"
        ));
    }
    Ok(Model::custom(blocks, heads, hidden, ffn))
}

/// Resolves the accelerator: a platform preset or a JSON file, plus knob
/// overrides.
pub fn accelerator(args: &Args) -> Result<Accelerator, String> {
    let mut accel = if let Some(path) = optional(args, "accel-json") {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?
    } else {
        match args.get("platform", "edge").as_str() {
            "edge" => Accelerator::edge(),
            "cloud" => Accelerator::cloud(),
            other => return Err(format!("unknown platform {other:?} (edge|cloud)")),
        }
    };
    if let Some(kib) = optional(args, "sg-kib") {
        let kib: u64 = kib
            .parse()
            .map_err(|_| "--sg-kib expects an integer".to_owned())?;
        accel = accel.with_sg(Bytes::from_kib(kib));
    }
    if let Some(gbps) = optional(args, "offchip-gbps") {
        let gbps: f64 = gbps
            .parse()
            .map_err(|_| "--offchip-gbps expects a number".to_owned())?;
        accel = accel.with_offchip_bw(gbps * 1e9);
    }
    Ok(accel)
}

/// Parses a dataflow label (`base`, `base-m|b|h`, `flat-m|b|h`,
/// `flat-rN`, `flat-tBxHxrN`) via [`BlockDataflow`]'s `FromStr`.
pub fn dataflow(label: &str) -> Result<BlockDataflow, String> {
    label
        .parse()
        .map_err(|e: flat_core::ParseDataflowError| e.to_string())
}

/// Model-option flags shared by `cost`/`sim`/`trace`:
/// `--no-double-buffer`, `--serial-softmax`, `--softmax KIND`.
///
/// # Errors
///
/// Propagates an unrecognized `--softmax` value.
pub fn model_options(args: &Args) -> Result<flat_core::ModelOptions, String> {
    Ok(flat_core::ModelOptions {
        double_buffered: !args.flag("no-double-buffer"),
        overlap_softmax: !args.flag("serial-softmax"),
        softmax: softmax_kind(args)?,
    })
}

/// Parses `--softmax exact|flash-d|log-lut` (default `exact`).
///
/// # Errors
///
/// Lists the valid kinds when the value matches none.
pub fn softmax_kind(args: &Args) -> Result<flat_tensor::SoftmaxKind, String> {
    match optional(args, "softmax") {
        None => Ok(flat_tensor::SoftmaxKind::Exact),
        Some(s) => flat_tensor::SoftmaxKind::parse(&s),
    }
}

/// Parses `--precision fp32|bf16|fp16|int8` (default `fp32`).
///
/// # Errors
///
/// Lists the valid precisions when the value matches none.
pub fn precision(args: &Args) -> Result<flat_serve::ComputePrecision, String> {
    match optional(args, "precision") {
        None => Ok(flat_serve::ComputePrecision::F32),
        Some(s) => flat_serve::ComputePrecision::parse(&s),
    }
}

/// Parses a scope label.
pub fn scope(args: &Args) -> Result<Scope, String> {
    match args.get("scope", "la").as_str() {
        "la" | "l-a" => Ok(Scope::LogitAttend),
        "block" => Ok(Scope::Block),
        "model" => Ok(Scope::Model),
        other => Err(format!("unknown scope {other:?} (la|block|model)")),
    }
}

/// Parses an objective label.
pub fn objective(args: &Args) -> Result<Objective, String> {
    match args.get("objective", "max-util").as_str() {
        "max-util" => Ok(Objective::MaxUtil),
        "min-energy" => Ok(Objective::MinEnergy),
        "min-edp" => Ok(Objective::MinEdp),
        "min-footprint" => Ok(Objective::MinFootprint),
        "util-per-footprint" => Ok(Objective::UtilPerFootprint),
        other => Err(format!("unknown objective {other:?}")),
    }
}

fn optional(args: &Args, key: &str) -> Option<String> {
    let v = args.get(key, "\u{0}");
    if v == "\u{0}" {
        None
    } else {
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataflow_labels_parse() {
        assert_eq!(dataflow("base").unwrap().label(), "Base");
        assert_eq!(dataflow("base-h").unwrap().label(), "Base-H");
        assert_eq!(dataflow("flat-r64").unwrap().label(), "FLAT-R64");
        assert_eq!(dataflow("FLAT-M").unwrap().label(), "FLAT-M");
        assert!(dataflow("base-r64").is_err());
        assert!(dataflow("nope").is_err());
    }

    #[test]
    fn accelerator_overrides_apply() {
        let args = flat_bench::args::Args::parse_from(
            [
                "--platform",
                "cloud",
                "--sg-kib",
                "1024",
                "--offchip-gbps",
                "100",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        );
        let a = accelerator(&args).unwrap();
        assert_eq!(a.sg, Bytes::from_kib(1024));
        assert_eq!(a.mem.offchip_bytes_per_s, 100.0e9);
        assert_eq!(a.pe.count(), 65536);
    }

    #[test]
    fn hf_config_loads() {
        let path = std::env::temp_dir().join("flat_cli_test_model.json");
        std::fs::write(
            &path,
            r#"{"hidden_size": 4096, "num_attention_heads": 32, "num_hidden_layers": 32,
                "intermediate_size": 11008, "model_type": "llama"}"#,
        )
        .unwrap();
        let m = model_from_json(&path.display().to_string()).unwrap();
        assert_eq!(m.hidden(), 4096);
        assert_eq!(m.heads(), 32);
        assert_eq!(m.blocks(), 32);
        assert_eq!(m.ffn_hidden(), 11008);
    }

    #[test]
    fn hf_config_defaults_ffn_to_4x() {
        let path = std::env::temp_dir().join("flat_cli_test_model2.json");
        std::fs::write(
            &path,
            r#"{"d_model": 512, "num_heads": 8, "num_layers": 6}"#,
        )
        .unwrap();
        let m = model_from_json(&path.display().to_string()).unwrap();
        assert_eq!(m.ffn_hidden(), 2048);
    }

    #[test]
    fn malformed_numeric_args_are_diagnostics_not_panics() {
        let args = flat_bench::args::Args::parse_from(
            ["--seq", "lots", "--slo-ms", "soon"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        let err = u64_arg(&args, "seq", 1).unwrap_err();
        assert!(err.contains("--seq") && err.contains("lots"));
        assert!(!err.contains('\n'), "diagnostics are one line");
        let err = opt_f64_arg(&args, "slo-ms").unwrap_err();
        assert!(err.contains("--slo-ms"));
        assert_eq!(u64_arg(&args, "absent", 7).unwrap(), 7);
        assert_eq!(opt_u64_arg(&args, "absent").unwrap(), None);
    }

    #[test]
    fn accel_json_round_trips() {
        let a = Accelerator::edge();
        let json = serde_json::to_string(&a).unwrap();
        let path = std::env::temp_dir().join("flat_cli_test_accel.json");
        std::fs::write(&path, json).unwrap();
        let args = flat_bench::args::Args::parse_from([
            "--accel-json".to_owned(),
            path.display().to_string(),
        ]);
        let b = accelerator(&args).unwrap();
        assert_eq!(a, b);
    }
}
