//! `flat` — command-line interface to the FLAT reproduction stack.
//!
//! ```text
//! flat info
//! flat cost  --platform edge --model bert --seq 4096 --dataflow flat-r64 [--scope la|block|model] [--json]
//! flat dse   --platform cloud --model xlm --seq 16384 [--space base|base-m|fused|full] [--objective max-util] [--json]
//! flat trace --platform edge --model bert --seq 512 --dataflow flat-r64 [--width 48]
//! flat loopnest --dataflow flat-r64 [--seq N]
//! flat sim   --platform edge --model bert --seq 512 --dataflow flat-r64 [--trace-json FILE]
//! flat bw    --platform cloud --model xlm --seq 8192 [--target-milli 950]
//! flat serve --platform cloud --model bert --requests 256 --arrival-rate 64 [--slo-ms MS] [--chaos SEED]
//!            [--trace FILE] [--metrics FILE] [--json]
//! flat fleet --platform cloud --model bert --requests 512 [--chips N] [--scale MS:CHIPS,...]
//!            [--no-dedup] [--chaos SEED] [--json]   # sustained multi-tenant fleet load

//! flat dist  --platform cloud --model bert --seq 65536 [--chips 1,2,4,8] [--topology all] [--partition head] [--json]
//!            [--requests N --trace FILE]   # serve on the cluster, tracing collectives
//! flat insight attr TRACE.json [--json] [--metrics FILE]   # critical-path attribution
//! flat insight diff A.json B.json [--json]                 # differential run analysis
//! flat insight bench [--dir DIR] [--current FILE] [--check] [--json]
//! flat run   --config experiments.json [--out results.json]
//! ```
//!
//! Common overrides: `--batch N`, `--sg-kib N`, `--offchip-gbps N`,
//! `--accel-json FILE` (load a serialized [`flat_arch::Accelerator`]).

mod commands;
mod parse;

use flat_bench::args::Args;

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{}", commands::USAGE);
        std::process::exit(2);
    };
    // Keep the raw tail too: `Args` drops positional operands, which
    // `flat insight` uses for its mode and input files.
    let raw: Vec<String> = argv.collect();
    let args = Args::parse_from(raw.iter().cloned());
    let result = match command.as_str() {
        "info" => commands::info(),
        "cost" => commands::cost(&args),
        "dse" => commands::dse(&args),
        "trace" => commands::trace(&args),
        "loopnest" => commands::loopnest(&args),
        "sim" => commands::sim(&args),
        "bw" => commands::bw(&args),
        "serve" => commands::serve(&args),
        "fleet" => commands::fleet(&args),
        "dist" => commands::dist(&args),
        "insight" => commands::insight(&raw, &args),
        "run" => commands::run(&args),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => {
            eprintln!("unknown command {other:?}\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
