//! CLI smoke tests: malformed flags must come back as one-line
//! diagnostics on stderr with a nonzero exit — never a panic backtrace —
//! and a well-formed invocation must still succeed.

use std::process::{Command, Output};

fn flat(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flat"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn bad_seed_is_a_diagnostic_not_a_panic() {
    let out = flat(&["serve", "--requests", "4", "--seed", "abc"]);
    assert!(!out.status.success(), "malformed --seed must exit nonzero");
    let err = stderr(&out);
    assert!(err.contains("--seed") && err.contains("abc"), "diagnostic names the flag: {err}");
    assert!(!err.contains("panicked"), "no panic backtrace: {err}");
    assert_eq!(err.trim().lines().count(), 1, "one-line diagnostic: {err}");
}

#[test]
fn unknown_task_is_a_diagnostic() {
    let out = flat(&["serve", "--requests", "4", "--task", "mining"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("mining"), "diagnostic names the bad value: {err}");
    assert!(!err.contains("panicked"), "no panic backtrace: {err}");
}

#[test]
fn bad_slo_and_chaos_values_are_diagnostics() {
    for (flag, value) in [("--slo-ms", "soon"), ("--slo-ms", "inf"), ("--chaos", "maybe")] {
        let out = flat(&["serve", "--requests", "4", flag, value]);
        assert!(!out.status.success(), "{flag} {value} must exit nonzero");
        let err = stderr(&out);
        assert!(err.contains(flag), "diagnostic names {flag}: {err}");
        assert!(!err.contains("panicked"), "no panic backtrace: {err}");
    }
}

#[test]
fn bad_width_and_target_milli_are_diagnostics() {
    let out = flat(&["trace", "--seq", "512", "--width", "wide"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--width"));
    let out = flat(&["bw", "--seq", "512", "--target-milli", "most"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--target-milli"));
}

#[test]
fn good_serve_run_emits_json() {
    let out = flat(&[
        "serve", "--platform", "edge", "--model", "bert", "--requests", "8",
        "--arrival-rate", "200", "--prompt", "32", "--output", "4", "--seed", "3", "--json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let json = String::from_utf8_lossy(&out.stdout).replace(char::is_whitespace, "");
    assert!(json.contains("\"finished\":8"), "all requests finish: {json}");
    assert!(json.contains("\"drops\""), "drop counters are reported: {json}");
}

#[test]
fn chaos_flag_survives_end_to_end() {
    let out = flat(&[
        "serve", "--platform", "edge", "--model", "bert", "--requests", "12",
        "--arrival-rate", "200", "--prompt", "32", "--output", "4",
        "--slo-ms", "50", "--chaos", "5", "--json",
    ]);
    assert!(out.status.success(), "chaos runs must not panic: {}", stderr(&out));
    let json = String::from_utf8_lossy(&out.stdout).replace(char::is_whitespace, "");
    assert!(json.contains("\"requests\":12"), "conservation visible in JSON: {json}");
}
