//! CLI smoke tests: malformed flags must come back as one-line
//! diagnostics on stderr with a nonzero exit — never a panic backtrace —
//! and a well-formed invocation must still succeed.

use std::process::{Command, Output};

fn flat(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flat"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn bad_seed_is_a_diagnostic_not_a_panic() {
    let out = flat(&["serve", "--requests", "4", "--seed", "abc"]);
    assert!(!out.status.success(), "malformed --seed must exit nonzero");
    let err = stderr(&out);
    assert!(
        err.contains("--seed") && err.contains("abc"),
        "diagnostic names the flag: {err}"
    );
    assert!(!err.contains("panicked"), "no panic backtrace: {err}");
    assert_eq!(err.trim().lines().count(), 1, "one-line diagnostic: {err}");
}

#[test]
fn unknown_task_is_a_diagnostic() {
    let out = flat(&["serve", "--requests", "4", "--task", "mining"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("mining"),
        "diagnostic names the bad value: {err}"
    );
    assert!(!err.contains("panicked"), "no panic backtrace: {err}");
}

#[test]
fn bad_slo_and_chaos_values_are_diagnostics() {
    for (flag, value) in [
        ("--slo-ms", "soon"),
        ("--slo-ms", "inf"),
        ("--chaos", "maybe"),
    ] {
        let out = flat(&["serve", "--requests", "4", flag, value]);
        assert!(!out.status.success(), "{flag} {value} must exit nonzero");
        let err = stderr(&out);
        assert!(err.contains(flag), "diagnostic names {flag}: {err}");
        assert!(!err.contains("panicked"), "no panic backtrace: {err}");
    }
}

#[test]
fn bad_width_and_target_milli_are_diagnostics() {
    let out = flat(&["trace", "--seq", "512", "--width", "wide"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--width"));
    let out = flat(&["bw", "--seq", "512", "--target-milli", "most"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--target-milli"));
}

#[test]
fn good_serve_run_emits_json() {
    let out = flat(&[
        "serve",
        "--platform",
        "edge",
        "--model",
        "bert",
        "--requests",
        "8",
        "--arrival-rate",
        "200",
        "--prompt",
        "32",
        "--output",
        "4",
        "--seed",
        "3",
        "--json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let json = String::from_utf8_lossy(&out.stdout).replace(char::is_whitespace, "");
    assert!(
        json.contains("\"finished\":8"),
        "all requests finish: {json}"
    );
    assert!(
        json.contains("\"drops\""),
        "drop counters are reported: {json}"
    );
}

/// The distributed-sweep determinism contract: the same seed and flags
/// produce byte-identical JSON, twice.
#[test]
fn dist_json_is_byte_identical_across_runs() {
    let args = [
        "dist",
        "--platform",
        "cloud",
        "--model",
        "bert",
        "--seq",
        "2048",
        "--batch",
        "4",
        "--chips",
        "1,2",
        "--topology",
        "ring,fc",
        "--partition",
        "head",
        "--seed",
        "7",
        "--json",
    ];
    let first = flat(&args);
    let second = flat(&args);
    assert!(first.status.success(), "stderr: {}", stderr(&first));
    assert_eq!(
        first.stdout, second.stdout,
        "dist --json must be deterministic"
    );
    let json = String::from_utf8_lossy(&first.stdout).replace(char::is_whitespace, "");
    assert!(json.contains("\"points\""), "sweep points present: {json}");
    assert!(json.contains("\"knee_chips\""), "knees reported: {json}");
    assert!(json.contains("\"seed\":7"), "seed echoed: {json}");
}

/// Serving mode rides the same subcommand and stays deterministic too.
#[test]
fn dist_serve_mode_runs_and_reports_fabric_time() {
    let args = [
        "dist",
        "--platform",
        "edge",
        "--model",
        "bert",
        "--requests",
        "8",
        "--arrival-rate",
        "200",
        "--prompt",
        "32",
        "--output",
        "4",
        "--chips",
        "1,2",
        "--topology",
        "fc",
        "--seed",
        "3",
        "--json",
    ];
    let first = flat(&args);
    let second = flat(&args);
    assert!(first.status.success(), "stderr: {}", stderr(&first));
    assert_eq!(
        first.stdout, second.stdout,
        "dist serve mode must be deterministic"
    );
    let json = String::from_utf8_lossy(&first.stdout).replace(char::is_whitespace, "");
    assert!(
        json.contains("\"fabric_busy_ms\""),
        "fabric metrics present: {json}"
    );
    assert!(
        json.contains("\"per_shard_kv_peak_occupancy\""),
        "shard occupancy present: {json}"
    );
}

#[test]
fn bad_dist_flags_are_diagnostics() {
    for args in [
        ["dist", "--chips", "0,2"].as_slice(),
        &["dist", "--chips", "two"],
        &["dist", "--topology", "hypercube"],
        &["dist", "--partition", "expert"],
        &["dist", "--algo", "double-tree"],
        &["dist", "--link-gbps", "-3"],
        &["dist", "--link-us", "soon"],
    ] {
        let out = flat(args);
        assert!(!out.status.success(), "{args:?} must exit nonzero");
        let err = stderr(&out);
        assert!(!err.contains("panicked"), "no panic backtrace: {err}");
        assert_eq!(err.trim().lines().count(), 1, "one-line diagnostic: {err}");
    }
}

#[test]
fn chaos_flag_survives_end_to_end() {
    let out = flat(&[
        "serve",
        "--platform",
        "edge",
        "--model",
        "bert",
        "--requests",
        "12",
        "--arrival-rate",
        "200",
        "--prompt",
        "32",
        "--output",
        "4",
        "--slo-ms",
        "50",
        "--chaos",
        "5",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "chaos runs must not panic: {}",
        stderr(&out)
    );
    let json = String::from_utf8_lossy(&out.stdout).replace(char::is_whitespace, "");
    assert!(
        json.contains("\"requests\":12"),
        "conservation visible in JSON: {json}"
    );
}

#[test]
fn bad_sim_engine_and_tolerance_are_diagnostics() {
    let out = flat(&["sim", "--seq", "512", "--engine", "magic"]);
    assert!(!out.status.success(), "bad --engine must exit nonzero");
    let err = stderr(&out);
    assert!(
        err.contains("magic") && err.contains("analytical, event, or both"),
        "diagnostic lists the valid engines: {err}"
    );
    assert!(!err.contains("panicked"), "no panic backtrace: {err}");
    assert_eq!(err.trim().lines().count(), 1, "one-line diagnostic: {err}");

    let out = flat(&[
        "sim",
        "--seq",
        "512",
        "--engine",
        "both",
        "--tolerance",
        "lots",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--tolerance"), "{}", stderr(&out));

    let out = flat(&[
        "sim",
        "--seq",
        "512",
        "--engine",
        "both",
        "--tolerance",
        "7",
    ]);
    assert!(!out.status.success(), "tolerance > 1 must be rejected");
    assert!(stderr(&out).contains("--tolerance"), "{}", stderr(&out));

    let out = flat(&["sim", "--seq", "512", "--engine", "event", "--buffers", "0"]);
    assert!(!out.status.success(), "--buffers 0 must be rejected");
    assert!(stderr(&out).contains("--buffers"), "{}", stderr(&out));

    let out = flat(&["sim", "--seq", "512", "--sweep"]);
    assert!(
        !out.status.success(),
        "--sweep without both must be rejected"
    );
    assert!(stderr(&out).contains("--engine both"), "{}", stderr(&out));
}

/// `flat sim --engine both --json` is the CI validation smoke: it must
/// report a divergence field and agree within the default tolerance on
/// an uncontended config.
#[test]
fn sim_both_json_reports_divergence() {
    let out = flat(&[
        "sim",
        "--platform",
        "edge",
        "--model",
        "bert",
        "--seq",
        "1024",
        "--dataflow",
        "flat-r64",
        "--engine",
        "both",
        "--json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let json = String::from_utf8_lossy(&out.stdout).replace(char::is_whitespace, "");
    assert!(
        json.contains("\"divergence\":"),
        "divergence reported: {json}"
    );
    assert!(
        json.contains("\"within_tolerance\":true"),
        "uncontended config agrees: {json}"
    );
}

/// The event backend exports a Perfetto-loadable trace with per-lane
/// thread names and a counter track.
#[test]
fn sim_event_trace_is_perfetto_shaped() {
    let path = std::env::temp_dir().join("flat_cli_test_desim_trace.json");
    let path_str = path.display().to_string();
    let out = flat(&[
        "sim",
        "--seq",
        "512",
        "--dataflow",
        "flat-r64",
        "--engine",
        "event",
        "--trace-json",
        &path_str,
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let trace = std::fs::read_to_string(&path).expect("trace written");
    assert!(trace.starts_with("{\"traceEvents\":["));
    for needle in [
        "\"name\":\"flat-desim\"",
        "\"name\":\"pe\"",
        "\"name\":\"dma\"",
        "\"ph\":\"X\"",
        "\"ph\":\"C\"",
        "tiles in flight",
    ] {
        assert!(trace.contains(needle), "{needle} missing from trace");
    }
}
