//! Simulation outputs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Busy time of one simulated resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Resource name (`"pe"`, `"sfu"`, `"dram"`).
    pub name: String,
    /// Cycles spent serving jobs.
    pub busy_cycles: f64,
    /// Busy fraction of the makespan.
    pub occupancy: f64,
}

/// One recorded job, for trace export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Job label (`"L 3"`, `"FETCH 4"`, `"softmax 3"`, …).
    pub name: String,
    /// The resource that served it (`"pe"`, `"sfu"`, `"dram"`).
    pub resource: String,
    /// Start cycle.
    pub start: f64,
    /// End cycle.
    pub end: f64,
}

/// Outcome of a discrete-event simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated end-to-end runtime in cycles (extrapolated past the
    /// simulation cap when noted).
    pub cycles: f64,
    /// Ideal runtime with fully utilized PEs.
    pub ideal_cycles: f64,
    /// Per-resource usage over the simulated window.
    pub resources: Vec<ResourceUsage>,
    /// Iterations actually event-simulated.
    pub simulated_iterations: u64,
    /// Iterations the workload needs in total.
    pub total_iterations: u64,
    /// True when `cycles` extends the simulated window at the measured
    /// steady-state rate.
    pub extrapolated: bool,
    /// Recorded jobs (empty unless `SimOptions::record_trace`).
    pub trace: Vec<TraceEvent>,
}

impl SimReport {
    /// Compute-resource utilization, same definition as the analytical
    /// model (§6.1).
    #[must_use]
    pub fn util(&self) -> f64 {
        if self.cycles <= 0.0 {
            1.0
        } else {
            (self.ideal_cycles / self.cycles).clamp(0.0, 1.0)
        }
    }

    /// Renders the recorded trace as Chrome trace-event JSON (the format
    /// `chrome://tracing` and Perfetto load): complete events (`ph: "X"`)
    /// with one thread row per hardware resource and cycles as
    /// microseconds.
    ///
    /// Returns an empty event array when nothing was recorded.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in self.trace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let tid = match ev.resource.as_str() {
                "pe" => 1,
                "sfu" => 2,
                _ => 3,
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
                ev.name,
                ev.resource,
                ev.start,
                (ev.end - ev.start).max(0.001),
                tid
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} cycles (util {:.3}{}), {} of {} iterations simulated",
            self.cycles,
            self.util(),
            if self.extrapolated { ", extrapolated" } else { "" },
            self.simulated_iterations,
            self.total_iterations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn util_definition_matches_analytical() {
        let r = SimReport {
            cycles: 200.0,
            ideal_cycles: 150.0,
            resources: vec![],
            simulated_iterations: 10,
            total_iterations: 10,
            extrapolated: false,
            trace: vec![],
        };
        assert_eq!(r.util(), 0.75);
    }
}
