//! Simulation outputs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Busy time of one simulated resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Resource name (`"pe"`, `"sfu"`, `"dram"`).
    pub name: String,
    /// Cycles spent serving jobs.
    pub busy_cycles: f64,
    /// Busy fraction of the makespan.
    pub occupancy: f64,
}

/// One recorded job, for trace export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Job label (`"L 3"`, `"FETCH 4"`, `"softmax 3"`, …).
    pub name: String,
    /// The resource that served it (`"pe"`, `"sfu"`, `"dram"`).
    pub resource: String,
    /// Start cycle.
    pub start: f64,
    /// End cycle.
    pub end: f64,
}

/// Outcome of a discrete-event simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated end-to-end runtime in cycles (extrapolated past the
    /// simulation cap when noted).
    pub cycles: f64,
    /// Ideal runtime with fully utilized PEs.
    pub ideal_cycles: f64,
    /// Per-resource usage over the simulated window.
    pub resources: Vec<ResourceUsage>,
    /// Iterations actually event-simulated.
    pub simulated_iterations: u64,
    /// Iterations the workload needs in total.
    pub total_iterations: u64,
    /// True when `cycles` extends the simulated window at the measured
    /// steady-state rate.
    pub extrapolated: bool,
    /// Recorded jobs (empty unless `SimOptions::record_trace`).
    pub trace: Vec<TraceEvent>,
}

impl SimReport {
    /// Compute-resource utilization, same definition as the analytical
    /// model (§6.1).
    #[must_use]
    pub fn util(&self) -> f64 {
        if self.cycles <= 0.0 {
            1.0
        } else {
            (self.ideal_cycles / self.cycles).clamp(0.0, 1.0)
        }
    }

    /// Renders the recorded trace as Chrome trace-event JSON (the format
    /// `chrome://tracing` and Perfetto load), re-emitted through the
    /// shared `flat-telemetry` exporter: complete events (`ph: "X"`) with
    /// one named thread row per hardware resource and cycles as
    /// microseconds — the same schema the serving and DSE traces use.
    ///
    /// Returns an empty event array when nothing was recorded.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        use flat_telemetry::Event;
        let mut events = Vec::with_capacity(self.trace.len() + 4);
        if !self.trace.is_empty() {
            events.push(Event::process_name(1, "simulated accelerator"));
            events.push(Event::thread_name(1, 1, "pe"));
            events.push(Event::thread_name(1, 2, "sfu"));
            events.push(Event::thread_name(1, 3, "dram"));
        }
        for ev in &self.trace {
            let (cat, tid) = match ev.resource.as_str() {
                "pe" => ("pe", 1),
                "sfu" => ("sfu", 2),
                "dram" => ("dram", 3),
                _ => ("sim", 3),
            };
            events.push(Event::complete(
                &ev.name,
                cat,
                ev.start,
                ev.end - ev.start,
                1,
                tid,
            ));
        }
        flat_telemetry::chrome_trace_json(&events)
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} cycles (util {:.3}{}), {} of {} iterations simulated",
            self.cycles,
            self.util(),
            if self.extrapolated {
                ", extrapolated"
            } else {
                ""
            },
            self.simulated_iterations,
            self.total_iterations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn util_definition_matches_analytical() {
        let r = SimReport {
            cycles: 200.0,
            ideal_cycles: 150.0,
            resources: vec![],
            simulated_iterations: 10,
            total_iterations: 10,
            extrapolated: false,
            trace: vec![],
        };
        assert_eq!(r.util(), 0.75);
    }
}
