//! Event simulation of the fused (interleaved) FLAT execution.

use crate::{Resource, ResourceUsage, SimOptions, SimReport};
use flat_arch::Accelerator;
use flat_core::{gemm_compute, gemm_onchip_traffic, FusedDataflow, FusedSlices};
use flat_tensor::Gemm;
use flat_workloads::AttentionBlock;

/// Simulates the fused L-A execution tile by tile.
///
/// Each cross-loop iteration becomes four jobs with explicit dependencies:
///
/// * `FETCH_i` on the DRAM link — the iteration's staged inputs (Q slice
///   every iteration; K/V slices only when the head changes, since row
///   iterations reuse them in place). With double buffering, `FETCH_{i+1}`
///   may start as soon as iteration `i` begins consuming its buffer.
/// * `L_i` on the PE array — needs `FETCH_i` and a free logit-slice slot.
/// * `SM_i` on the SFU — needs `L_i`.
/// * `A_i` on the PE array — needs `SM_i`; its output write-back `WB_i`
///   follows on the DRAM link.
///
/// The PE array serves jobs in software-pipelined order (`L_0, L_1, A_0,
/// L_2, A_1, …`) when the options grant two slice buffers, or strictly
/// (`L_i, A_i`) with one. A slice that exceeds the scratchpad spills its
/// overflow across the DRAM link around the softmax, exactly as the
/// analytical model charges it.
///
/// # Example
///
/// ```
/// use flat_arch::Accelerator;
/// use flat_core::{FusedDataflow, Granularity};
/// use flat_sim::{simulate_fused, SimOptions};
/// use flat_workloads::Model;
///
/// let accel = Accelerator::edge();
/// let block = Model::bert().block(64, 512);
/// let report = simulate_fused(
///     &accel, &block, &FusedDataflow::new(Granularity::Row(64)), SimOptions::default(),
/// );
/// assert!(report.util() > 0.8);
/// ```
#[must_use]
pub fn simulate_fused(
    accel: &Accelerator,
    block: &AttentionBlock,
    df: &FusedDataflow,
    opts: SimOptions,
) -> SimReport {
    let cfg = *block.config();
    let e = cfg.dtype.size_bytes() as f64;
    let s = FusedSlices::new(df.granularity, &cfg);
    let dk = cfg.dk();

    let l_sub = Gemm::new(s.groups, s.rows, dk, cfg.seq_kv);
    let a_sub = Gemm::new(s.groups, s.rows, cfg.seq_kv, dk);
    let fill = accel.noc.fill_latency(accel.pe) as f64;
    let on_bpc = accel.onchip_bytes_per_cycle();
    let off_bpc = accel.offchip_bytes_per_cycle();

    // Stage durations: PE streaming bounded below by the stage's SG
    // traffic over the on-chip link.
    let stage = |gemm: &Gemm, stat| -> f64 {
        let comp = gemm_compute(gemm, stat, accel).steps as f64 + fill;
        let sg = gemm_onchip_traffic(gemm, stat, accel).total() as f64 * e / on_bpc;
        comp.max(sg)
    };
    let dur_l = stage(&l_sub, df.stationarity_l);
    let dur_a = stage(&a_sub, df.stationarity_a);
    let dur_sm = accel.sfu.softmax_cycles(s.intermediate) as f64;

    // Per-iteration transfer bytes.
    let q_bytes = s.query as f64 * e;
    let kv_bytes = (s.key + s.value) as f64 * e;
    let o_bytes = s.output as f64 * e;
    // Slice spill: whatever of the logit slice exceeds the SG (minus a
    // small working-set share) crosses DRAM twice per iteration.
    let slice_bytes = s.intermediate as f64 * e;
    let avail = accel.sg.as_f64() * 0.75 - kv_bytes;
    let spill_bytes = (slice_bytes - avail.max(0.0)).max(0.0).min(slice_bytes);

    let row_iters_per_head = cfg.seq_q.div_ceil(s.rows).max(1);
    let total_iters = s.iterations;
    let sim_iters = total_iters.min(opts.max_simulated_iterations.max(4));

    let mut pe = Resource::new("pe");
    let mut sfu = Resource::new("sfu");
    let mut dram = Resource::new("dram");

    let n = sim_iters as usize;
    let mut fetch_done = vec![0.0f64; n];
    let mut l_start = vec![0.0f64; n];
    let mut sm_done = vec![0.0f64; n];
    let mut a_done = vec![0.0f64; n];
    // Software pipelining needs both double buffering and a second slice
    // slot; without either, stages run strictly in order.
    let pipelined_slots = if opts.slice_buffers >= 2 && opts.double_buffered {
        2usize
    } else {
        1
    };

    let mut trace: Vec<crate::TraceEvent> = Vec::new();
    let record =
        |trace: &mut Vec<crate::TraceEvent>, name: String, resource: &str, end: f64, dur: f64| {
            // Guard: a runaway trace of a huge simulation is useless and big.
            if opts.record_trace && trace.len() < 200_000 {
                trace.push(crate::TraceEvent {
                    name,
                    resource: resource.to_owned(),
                    start: end - dur,
                    end,
                });
            }
        };

    let submit_a = |i: usize,
                    pe: &mut Resource,
                    dram: &mut Resource,
                    sm_done: &[f64],
                    a_done: &mut [f64],
                    trace: &mut Vec<crate::TraceEvent>| {
        // Spilled slice must be read back before A consumes it.
        let ready = if spill_bytes > 0.0 {
            let d = spill_bytes / off_bpc;
            let done = dram.acquire_backfill(sm_done[i], d);
            record(trace, format!("SPILL-IN {i}"), "dram", done, d);
            done
        } else {
            sm_done[i]
        };
        a_done[i] = pe.acquire(ready, dur_a);
        record(trace, format!("A {i}"), "pe", a_done[i], dur_a);
        let wb = dram.acquire_backfill(a_done[i], o_bytes / off_bpc);
        record(trace, format!("WB {i}"), "dram", wb, o_bytes / off_bpc);
    };

    for i in 0..n {
        // FETCH_i: K/V refresh only on head boundaries.
        let bytes = q_bytes
            + if (i as u64).is_multiple_of(row_iters_per_head) {
                kv_bytes
            } else {
                0.0
            };
        let release = if opts.double_buffered {
            if i >= 1 {
                l_start[i - 1]
            } else {
                0.0
            }
        } else if i >= 1 {
            a_done[i - 1]
        } else {
            0.0
        };
        fetch_done[i] = dram.acquire_backfill(release, bytes / off_bpc);
        record(
            &mut trace,
            format!("FETCH {i}"),
            "dram",
            fetch_done[i],
            bytes / off_bpc,
        );

        // L_i: needs its inputs and a free slice slot.
        let slot_free = if i >= pipelined_slots {
            a_done[i - pipelined_slots]
        } else {
            0.0
        };
        let l_done = {
            let start_ready = fetch_done[i].max(slot_free);
            let done = pe.acquire(start_ready, dur_l);
            l_start[i] = done - dur_l;
            done
        };
        record(&mut trace, format!("L {i}"), "pe", l_done, dur_l);

        // Spilled slice writes out after L.
        let l_out = if spill_bytes > 0.0 {
            let d = spill_bytes / off_bpc;
            let done = dram.acquire_backfill(l_done, d);
            record(&mut trace, format!("SPILL-OUT {i}"), "dram", done, d);
            done
        } else {
            l_done
        };
        sm_done[i] = sfu.acquire(l_out, dur_sm);
        record(&mut trace, format!("SM {i}"), "sfu", sm_done[i], dur_sm);

        // With two slots, A_{i-1} is submitted after L_i (software
        // pipelining); with one, A_i follows immediately.
        if pipelined_slots == 2 {
            if i >= 1 {
                submit_a(i - 1, &mut pe, &mut dram, &sm_done, &mut a_done, &mut trace);
            }
        } else {
            submit_a(i, &mut pe, &mut dram, &sm_done, &mut a_done, &mut trace);
        }
    }
    if pipelined_slots == 2 && n >= 1 {
        submit_a(n - 1, &mut pe, &mut dram, &sm_done, &mut a_done, &mut trace);
    }

    let sim_end = pe.next_free().max(sfu.next_free()).max(dram.next_free());

    // Extrapolate the steady state when the workload exceeds the cap.
    let (cycles, extrapolated) = if total_iters > sim_iters {
        let half = (n / 2).max(1);
        let rate = (sim_end - a_done[half - 1]) / (n - half).max(1) as f64;
        (sim_end + rate * (total_iters - sim_iters) as f64, true)
    } else {
        (sim_end, false)
    };

    let scale = total_iters as f64 / sim_iters as f64;
    let ideal = (2 * cfg.batch * cfg.seq_q * cfg.seq_kv * cfg.hidden) as f64
        / accel.peak_macs_per_cycle() as f64;
    SimReport {
        cycles,
        ideal_cycles: ideal,
        resources: [&pe, &sfu, &dram]
            .into_iter()
            .map(|r| ResourceUsage {
                name: r.name().to_owned(),
                busy_cycles: r.busy_cycles() * scale,
                occupancy: r.occupancy(sim_end),
            })
            .collect(),
        simulated_iterations: sim_iters,
        total_iterations: total_iters,
        extrapolated,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_core::Granularity;
    use flat_workloads::Model;

    #[test]
    fn trace_records_every_job_kind() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(1, 64);
        let r = simulate_fused(
            &accel,
            &block,
            &FusedDataflow::new(Granularity::Row(16)),
            SimOptions {
                record_trace: true,
                ..SimOptions::default()
            },
        );
        assert!(!r.trace.is_empty());
        for kind in ["FETCH", "L ", "SM", "A ", "WB"] {
            assert!(
                r.trace.iter().any(|e| e.name.starts_with(kind)),
                "missing {kind} events"
            );
        }
        // Events never run backwards, and the Chrome export is valid JSON.
        for e in &r.trace {
            assert!(e.end >= e.start);
        }
        let json = r.to_chrome_trace();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("traceEvents"));
        assert!(
            json.contains("\"thread_name\""),
            "resource lanes must be named via the shared exporter"
        );
    }

    #[test]
    fn trace_is_empty_by_default() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(1, 64);
        let r = simulate_fused(
            &accel,
            &block,
            &FusedDataflow::new(Granularity::Row(16)),
            SimOptions::default(),
        );
        assert!(r.trace.is_empty());
    }

    #[test]
    fn compute_bound_case_tracks_ideal() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let r = simulate_fused(
            &accel,
            &block,
            &FusedDataflow::new(Granularity::Row(64)),
            SimOptions::default(),
        );
        assert!(r.util() > 0.85, "util = {}", r.util());
        assert!(r.cycles >= r.ideal_cycles);
    }

    #[test]
    fn single_slice_buffer_exposes_softmax() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let two = simulate_fused(
            &accel,
            &block,
            &FusedDataflow::new(Granularity::Row(16)),
            SimOptions::default(),
        );
        let one = simulate_fused(
            &accel,
            &block,
            &FusedDataflow::new(Granularity::Row(16)),
            SimOptions {
                slice_buffers: 1,
                ..SimOptions::default()
            },
        );
        assert!(one.cycles >= two.cycles, "{} < {}", one.cycles, two.cycles);
    }

    #[test]
    fn no_double_buffering_serializes_fetches() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        // Fully simulate (no extrapolation) so the comparison is exact.
        let opts = SimOptions {
            max_simulated_iterations: 10_000,
            ..SimOptions::default()
        };
        let with = simulate_fused(
            &accel,
            &block,
            &FusedDataflow::new(Granularity::Row(64)),
            opts,
        );
        let without = simulate_fused(
            &accel,
            &block,
            &FusedDataflow::new(Granularity::Row(64)),
            SimOptions {
                double_buffered: false,
                ..opts
            },
        );
        assert!(!with.extrapolated);
        assert!(
            without.cycles > with.cycles,
            "{} <= {}",
            without.cycles,
            with.cycles
        );
    }

    #[test]
    fn extrapolation_kicks_in_beyond_cap() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 4096);
        let r = simulate_fused(
            &accel,
            &block,
            &FusedDataflow::new(Granularity::Row(4)),
            SimOptions {
                max_simulated_iterations: 256,
                ..SimOptions::default()
            },
        );
        assert!(r.extrapolated);
        assert_eq!(r.simulated_iterations, 256);
        assert!(r.total_iterations > 256);
        assert!(r.cycles > 0.0);
    }

    #[test]
    fn resource_occupancies_are_sane() {
        let accel = Accelerator::cloud();
        let block = Model::xlm().block(64, 4096);
        let r = simulate_fused(
            &accel,
            &block,
            &FusedDataflow::new(Granularity::Row(1024)),
            SimOptions::default(),
        );
        for u in &r.resources {
            assert!(
                (0.0..=1.0).contains(&u.occupancy),
                "{}: {}",
                u.name,
                u.occupancy
            );
        }
        // The PE array dominates in this compute-friendly regime.
        let pe = r.resources.iter().find(|u| u.name == "pe").unwrap();
        assert!(pe.occupancy > 0.5);
    }
}
