//! Block-level simulation: the fused L-A pipeline plus the sequential
//! projections and FFN, end to end — the simulator counterpart of
//! `CostModel::block_cost` and the Figure 11 breakdown.

use crate::{simulate_fused, simulate_sequential, SimOptions, SimReport};
use flat_arch::Accelerator;
use flat_core::{gemm_compute, gemm_onchip_traffic, BlockDataflow, LaExecution, Stationarity};
use flat_workloads::{AttentionBlock, OpCategory};

/// Simulates one non-fused operator as a fetch/compute/write-back pipeline
/// at whole-operator granularity (projections and FCs are weight-reuse
/// friendly; slice-level detail changes little).
fn simulate_operator(
    accel: &Accelerator,
    op: &flat_workloads::Operator,
    e: f64,
    opts: SimOptions,
) -> f64 {
    let gemm = op.gemm;
    let fill = accel.noc.fill_latency(accel.pe) as f64;
    let comp = gemm_compute(&gemm, Stationarity::Weight, accel).steps as f64 + fill;
    let sg = gemm_onchip_traffic(&gemm, Stationarity::Weight, accel).total() as f64 * e
        / accel.onchip_bytes_per_cycle();
    let dur = comp.max(sg);
    let t_in = (gemm.a_elements() + gemm.b_elements()) as f64 * e / accel.offchip_bytes_per_cycle();
    let t_out = gemm.c_elements() as f64 * e / accel.offchip_bytes_per_cycle();
    // With double buffering the transfers overlap the streaming compute;
    // without it, the three stages serialize.
    if opts.double_buffered {
        dur.max(t_in).max(t_out) + fill
    } else {
        t_in + dur + t_out
    }
}

/// Per-category simulated cycles for one attention block — the Figure 11
/// stack, from the event simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSim {
    /// The L-A pair's simulation.
    pub logit_attend: SimReport,
    /// Simulated cycles of the four projections.
    pub projection_cycles: f64,
    /// Simulated cycles of the FFN pair.
    pub feed_forward_cycles: f64,
}

impl BlockSim {
    /// Total block cycles.
    #[must_use]
    pub fn total_cycles(&self) -> f64 {
        self.logit_attend.cycles + self.projection_cycles + self.feed_forward_cycles
    }
}

/// Simulates a whole block under `df`: the L-A pair through the fused or
/// sequential pipeline simulator, everything else as operator pipelines.
///
/// # Example
///
/// ```
/// use flat_arch::Accelerator;
/// use flat_core::{BlockDataflow, CostModel, Granularity};
/// use flat_sim::{simulate_block, SimOptions};
/// use flat_workloads::Model;
///
/// let accel = Accelerator::edge();
/// let block = Model::bert().block(64, 512);
/// let df = BlockDataflow::flat(Granularity::Row(64));
/// let sim = simulate_block(&accel, &block, &df, SimOptions::default());
/// let model = CostModel::new(&accel).block_cost(&block, &df).total();
/// let ratio = sim.total_cycles() / model.cycles;
/// assert!(ratio > 0.6 && ratio < 1.6, "block-level agreement: {ratio}");
/// ```
#[must_use]
pub fn simulate_block(
    accel: &Accelerator,
    block: &AttentionBlock,
    df: &BlockDataflow,
    opts: SimOptions,
) -> BlockSim {
    let e = block.config().dtype.size_bytes() as f64;
    let logit_attend = match &df.la {
        LaExecution::Fused(fused) => simulate_fused(accel, block, fused, opts),
        LaExecution::Sequential { .. } => simulate_sequential(accel, block, opts),
    };
    let sum = |cat: OpCategory| -> f64 {
        block
            .operators_in_category(cat)
            .map(|op| simulate_operator(accel, op, e, opts))
            .sum()
    };
    BlockSim {
        logit_attend,
        projection_cycles: sum(OpCategory::Projection),
        feed_forward_cycles: sum(OpCategory::FeedForward),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_core::{CostModel, Granularity};
    use flat_workloads::Model;

    #[test]
    fn block_sim_tracks_block_cost() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        for df in [
            BlockDataflow::base(),
            BlockDataflow::flat(Granularity::Row(64)),
        ] {
            let sim = simulate_block(&accel, &block, &df, SimOptions::default());
            let model = CostModel::new(&accel).block_cost(&block, &df).total();
            let ratio = sim.total_cycles() / model.cycles;
            assert!((0.5..2.0).contains(&ratio), "{}: ratio {ratio}", df.label());
        }
    }

    #[test]
    fn la_dominates_block_sim_at_long_seq() {
        let accel = Accelerator::cloud();
        let block = Model::xlm().block(64, 16_384);
        let sim = simulate_block(
            &accel,
            &block,
            &BlockDataflow::base(),
            SimOptions::default(),
        );
        assert!(sim.logit_attend.cycles > 2.0 * (sim.projection_cycles + sim.feed_forward_cycles));
    }

    #[test]
    fn fused_block_beats_base_block() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 4096);
        let base = simulate_block(
            &accel,
            &block,
            &BlockDataflow::base(),
            SimOptions::default(),
        );
        let flat = simulate_block(
            &accel,
            &block,
            &BlockDataflow::flat(Granularity::Row(64)),
            SimOptions::default(),
        );
        assert!(flat.total_cycles() < base.total_cycles());
    }
}
