//! Shared hardware resources with reservation-based scheduling.

use serde::{Deserialize, Serialize};

/// A hardware unit (PE array, SFU, a memory link) that serves one job at a
/// time.
///
/// Two acquisition modes:
///
/// * [`Resource::acquire`] — strict FIFO: a job starts no earlier than
///   every previously submitted job has finished. Right for an in-order
///   execution unit like the PE array.
/// * [`Resource::acquire_backfill`] — first-fit: the job takes the
///   earliest idle gap at or after its ready time, even if later jobs are
///   already reserved. Right for a memory controller, which reorders
///   requests — without it, a write-back reserved far in the future would
///   artificially block the next tile's fetch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    name: &'static str,
    /// Busy intervals, sorted by start, non-overlapping.
    intervals: Vec<(f64, f64)>,
    busy: f64,
}

impl Resource {
    /// A fresh, idle resource.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Resource {
            name,
            intervals: Vec::new(),
            busy: 0.0,
        }
    }

    /// FIFO reservation: starts at `max(ready, last completion)`. Returns
    /// the completion time.
    ///
    /// # Panics
    ///
    /// Panics on negative duration.
    pub fn acquire(&mut self, ready: f64, duration: f64) -> f64 {
        assert!(duration >= 0.0, "negative duration on {}", self.name);
        let start = ready.max(self.next_free());
        self.intervals.push((start, start + duration));
        self.busy += duration;
        start + duration
    }

    /// First-fit reservation: occupies the earliest gap of `duration`
    /// cycles at or after `ready`. Returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics on negative duration.
    pub fn acquire_backfill(&mut self, ready: f64, duration: f64) -> f64 {
        assert!(duration >= 0.0, "negative duration on {}", self.name);
        self.busy += duration;
        // Find the first gap that fits, scanning intervals in start order.
        let mut cursor = ready;
        let mut insert_at = self.intervals.len();
        for (idx, &(start, end)) in self.intervals.iter().enumerate() {
            if end <= cursor {
                continue;
            }
            if start >= cursor + duration {
                insert_at = idx;
                break;
            }
            cursor = cursor.max(end);
        }
        // The scan leaves `cursor` past every interval that ends before
        // the chosen gap, so `insert_at` is the sorted position.
        self.intervals.insert(
            insert_at.min(self.intervals.len()),
            (cursor, cursor + duration),
        );
        cursor + duration
    }

    /// The resource's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total cycles the resource spent serving jobs.
    #[must_use]
    pub fn busy_cycles(&self) -> f64 {
        self.busy
    }

    /// When the last reserved job completes.
    #[must_use]
    pub fn next_free(&self) -> f64 {
        self.intervals.iter().map(|&(_, e)| e).fold(0.0, f64::max)
    }

    /// Fraction of `[0, makespan]` the resource was busy.
    #[must_use]
    pub fn occupancy(&self, makespan: f64) -> f64 {
        if makespan <= 0.0 {
            0.0
        } else {
            (self.busy / makespan).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_jobs_serialize_in_order() {
        let mut r = Resource::new("pe");
        assert_eq!(r.acquire(0.0, 10.0), 10.0);
        assert_eq!(r.acquire(5.0, 10.0), 20.0);
        assert_eq!(r.acquire(100.0, 5.0), 105.0);
        assert_eq!(r.busy_cycles(), 25.0);
    }

    #[test]
    fn backfill_uses_idle_gaps() {
        let mut r = Resource::new("dram");
        // A write-back reserved far in the future...
        assert_eq!(r.acquire_backfill(1000.0, 10.0), 1010.0);
        // ...does not delay an earlier fetch.
        assert_eq!(r.acquire_backfill(0.0, 100.0), 100.0);
        // A job that doesn't fit in the gap goes after.
        assert_eq!(r.acquire_backfill(50.0, 950.0), 1960.0);
        // A small job still backfills between 100 and 1000.
        assert_eq!(r.acquire_backfill(100.0, 50.0), 150.0);
    }

    #[test]
    fn backfill_respects_ready_time() {
        let mut r = Resource::new("dram");
        r.acquire_backfill(0.0, 10.0);
        assert_eq!(r.acquire_backfill(500.0, 10.0), 510.0);
    }

    #[test]
    fn occupancy_is_bounded() {
        let mut r = Resource::new("dram");
        r.acquire(0.0, 50.0);
        assert_eq!(r.occupancy(100.0), 0.5);
        assert_eq!(r.occupancy(0.0), 0.0);
        assert_eq!(r.occupancy(10.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_duration_rejected() {
        let mut r = Resource::new("pe");
        let _ = r.acquire(0.0, -1.0);
    }
}
