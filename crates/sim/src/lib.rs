//! Discrete-event pipeline simulator for FLAT dataflows.
//!
//! The analytical cost model in `flat-core` aggregates execution into
//! closed-form phase maxima; this crate *executes* the same dataflows as a
//! job graph over serially shared resources (PE array, SFU, DRAM link)
//! with explicit dependencies, double-buffer slots, and link arbitration —
//! the SCALE-Sim-class counterpart the paper's cost-model family is built
//! on. Cross-validating the two (see `tests/` and the `sim_vs_model`
//! bench) is the repository's answer to "why should I trust the
//! closed-form numbers?".
//!
//! # Example
//!
//! ```
//! use flat_arch::Accelerator;
//! use flat_core::{CostModel, FusedDataflow, Granularity};
//! use flat_sim::{simulate_fused, SimOptions};
//! use flat_workloads::Model;
//!
//! let accel = Accelerator::edge();
//! let block = Model::bert().block(64, 512);
//! let df = FusedDataflow::new(Granularity::Row(64));
//!
//! let simulated = simulate_fused(&accel, &block, &df, SimOptions::default());
//! let analytical = CostModel::new(&accel).fused_la_cost(&block, &df);
//!
//! let ratio = simulated.cycles / analytical.cycles;
//! assert!(ratio > 0.7 && ratio < 1.4, "the two models agree: {ratio}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod block;
mod fused;
mod report;
mod resource;
mod sequential;

pub use backend::{agreement, agreement_sweep, Agreement, AgreementRow, SimBackend};
pub use block::{simulate_block, BlockSim};
pub use fused::simulate_fused;
pub use report::{ResourceUsage, SimReport, TraceEvent};
pub use resource::Resource;
pub use sequential::simulate_sequential;

// Re-exported so `flat sim --engine event` callers configure and read
// the event backend without a direct `flat-desim` dependency.
pub use flat_desim::{simulate_la_event, EngineError, EventOptions, EventReport};

use serde::{Deserialize, Serialize};

/// Simulation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Overlap the next tile's fetch with the current tile's execution.
    pub double_buffered: bool,
    /// Logit-slice buffers in the SG: 2 lets the SFU softmax tile `i`
    /// while the PE array computes `L_{i+1}`; 1 serializes the stages
    /// strictly.
    pub slice_buffers: u32,
    /// Event-simulation cap; longer workloads extrapolate the measured
    /// steady-state rate.
    pub max_simulated_iterations: u64,
    /// Record every job into [`SimReport::trace`] (for Chrome trace
    /// export). Off by default — traces of long runs are large.
    pub record_trace: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            double_buffered: true,
            slice_buffers: 2,
            max_simulated_iterations: 4096,
            record_trace: false,
        }
    }
}
