//! Simulation backend selection and the analytical/event agreement
//! harness.
//!
//! `flat sim` historically ran one engine: the job-graph simulator in
//! this crate. The `flat-desim` event backend adds a second,
//! independently-built execution of the same dataflow, and this module
//! is where the two meet: [`SimBackend`] names the engine, [`agreement`]
//! runs an analytical pricing and an event simulation of one
//! configuration and reports their relative divergence, and
//! [`agreement_sweep`] does so across the seq-len × dataflow grid the
//! validation suite and `flat sim --engine both --sweep` report.

use flat_arch::Accelerator;
use flat_core::{
    CostModel, FusedDataflow, Granularity, LaExecution, OperatorDataflow, Stationarity,
};
use flat_desim::{simulate_la_event, EngineError, EventOptions};
use flat_workloads::{AttentionBlock, Model};

/// Which engine `flat sim` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimBackend {
    /// The closed-form cost model only (the historical default).
    Analytical,
    /// The `flat-desim` discrete-event backend only.
    Event,
    /// Both, reporting per-configuration relative divergence.
    Both,
}

impl SimBackend {
    /// Parses a `--engine` value.
    ///
    /// # Errors
    ///
    /// Returns a one-line diagnostic naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "analytical" => Ok(SimBackend::Analytical),
            "event" => Ok(SimBackend::Event),
            "both" => Ok(SimBackend::Both),
            other => Err(format!(
                "unknown engine '{other}' (expected analytical, event, or both)"
            )),
        }
    }
}

impl std::fmt::Display for SimBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimBackend::Analytical => "analytical",
            SimBackend::Event => "event",
            SimBackend::Both => "both",
        })
    }
}

/// One analytical-vs-event comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agreement {
    /// Cycles priced by the closed-form model.
    pub analytical_cycles: f64,
    /// Cycles measured by the event simulation.
    pub event_cycles: f64,
    /// Signed relative divergence
    /// `(event - analytical) / analytical`: positive means the event
    /// backend found the machine slower than the model's fold assumes.
    pub divergence: f64,
}

impl Agreement {
    /// Whether the two backends agree to within `tolerance` (relative,
    /// two-sided).
    #[must_use]
    pub fn within(&self, tolerance: f64) -> bool {
        self.divergence.abs() <= tolerance
    }
}

/// Runs both backends on one L-A configuration.
///
/// # Errors
///
/// Returns [`EngineError`] if the event executor's wiring livelocks or
/// deadlocks (an executor bug — never a property of valid inputs).
pub fn agreement(
    accel: &Accelerator,
    block: &AttentionBlock,
    la: &LaExecution,
    opts: EventOptions,
) -> Result<Agreement, EngineError> {
    let analytical = CostModel::with_options(accel, opts.model)
        .la_cost(block, la)
        .cycles;
    let event = simulate_la_event(accel, block, la, opts)?.cycles;
    Ok(Agreement {
        analytical_cycles: analytical,
        event_cycles: event,
        divergence: (event - analytical) / analytical,
    })
}

/// One row of an [`agreement_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct AgreementRow {
    /// Dataflow label (`"flat-r64"`, `"base"`, …).
    pub dataflow: String,
    /// Sequence length of the configuration.
    pub seq_len: u64,
    /// The comparison.
    pub agreement: Agreement,
}

/// The seq-len × dataflow grid of the validation sweep: FLAT at row,
/// coarse-row, and head granularity plus the sequential baseline, each
/// at every `seq_lens` entry, on a BERT-Base block.
///
/// # Errors
///
/// Propagates the first [`EngineError`] (executor bug), never a
/// data-dependent failure.
pub fn agreement_sweep(
    accel: &Accelerator,
    seq_lens: &[u64],
    opts: EventOptions,
) -> Result<Vec<AgreementRow>, EngineError> {
    let base_op = OperatorDataflow::baseline(Stationarity::Weight);
    let configs: [(&str, LaExecution); 4] = [
        (
            "flat-r64",
            LaExecution::Fused(FusedDataflow::new(Granularity::Row(64))),
        ),
        (
            "flat-r256",
            LaExecution::Fused(FusedDataflow::new(Granularity::Row(256))),
        ),
        (
            "flat-head",
            LaExecution::Fused(FusedDataflow::new(Granularity::Head)),
        ),
        (
            "base",
            LaExecution::Sequential {
                logit: base_op,
                attend: base_op,
            },
        ),
    ];
    let mut rows = Vec::with_capacity(seq_lens.len() * configs.len());
    for &seq in seq_lens {
        let block = Model::bert().block(64, seq);
        for (label, la) in &configs {
            rows.push(AgreementRow {
                dataflow: (*label).to_owned(),
                seq_len: seq,
                agreement: agreement(accel, &block, la, opts)?,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parses_all_three_engines() {
        assert_eq!(SimBackend::parse("analytical"), Ok(SimBackend::Analytical));
        assert_eq!(SimBackend::parse("event"), Ok(SimBackend::Event));
        assert_eq!(SimBackend::parse("both"), Ok(SimBackend::Both));
        let err = SimBackend::parse("magic").expect_err("rejects");
        assert!(err.contains("analytical, event, or both"), "{err}");
    }

    #[test]
    fn agreement_reports_signed_divergence() {
        let a = Agreement {
            analytical_cycles: 100.0,
            event_cycles: 104.0,
            divergence: 0.04,
        };
        assert!(a.within(0.05));
        assert!(!a.within(0.03));
    }

    #[test]
    fn sweep_covers_the_grid() {
        let accel = Accelerator::edge();
        let rows = agreement_sweep(&accel, &[512, 1024], EventOptions::default()).expect("runs");
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().any(|r| r.dataflow == "base"));
        assert!(rows.iter().all(|r| r.agreement.analytical_cycles > 0.0));
    }
}
