//! Event simulation of the sequential (baseline) L → softmax → A
//! execution, at head-slice granularity.

use crate::{Resource, ResourceUsage, SimOptions, SimReport};
use flat_arch::Accelerator;
use flat_core::{gemm_compute, gemm_onchip_traffic, Stationarity};
use flat_tensor::Gemm;
use flat_workloads::AttentionBlock;

/// Simulates the streamed sequential baseline: the whole L operator runs
/// (one job set per (batch, head) slice), then the softmax pass, then the
/// whole A operator — the strict phase structure of Figure 4(a).
///
/// Per slice and phase: a DRAM fetch of the slice's inputs, a PE (or SFU)
/// job, and a DRAM write-back of its outputs. The intermediate tensor
/// round-trips DRAM between phases because a sequential execution cannot
/// retain more than a scratchpad's worth of it.
///
/// # Example
///
/// ```
/// use flat_arch::Accelerator;
/// use flat_sim::{simulate_sequential, SimOptions};
/// use flat_workloads::Model;
///
/// let accel = Accelerator::edge();
/// let block = Model::bert().block(64, 512);
/// let report = simulate_sequential(&accel, &block, SimOptions::default());
/// assert!(report.util() < 0.9, "the baseline stalls on the logit round trip");
/// ```
#[must_use]
pub fn simulate_sequential(
    accel: &Accelerator,
    block: &AttentionBlock,
    opts: SimOptions,
) -> SimReport {
    let cfg = *block.config();
    let e = cfg.dtype.size_bytes() as f64;
    let dk = cfg.dk();
    let groups = cfg.batch * cfg.heads;
    let on_bpc = accel.onchip_bytes_per_cycle();
    let off_bpc = accel.offchip_bytes_per_cycle();
    let fill = accel.noc.fill_latency(accel.pe) as f64;

    // Per-(batch, head) sub-GEMMs.
    let l_sub = Gemm::new(1, cfg.seq_q, dk, cfg.seq_kv);
    let a_sub = Gemm::new(1, cfg.seq_q, cfg.seq_kv, dk);
    let stage = |gemm: &Gemm, stat: Stationarity| -> f64 {
        let comp = gemm_compute(gemm, stat, accel).steps as f64 + fill;
        let sg = gemm_onchip_traffic(gemm, stat, accel).total() as f64 * e / on_bpc;
        comp.max(sg)
    };
    let dur_l = stage(&l_sub, Stationarity::Output);
    let dur_a = stage(&a_sub, Stationarity::Input);

    let logit_slice = (cfg.seq_q * cfg.seq_kv) as f64 * e;
    let qk_bytes = ((cfg.seq_q + cfg.seq_kv) * dk) as f64 * e;
    let v_bytes = (cfg.seq_kv * dk) as f64 * e;
    let o_bytes = (cfg.seq_q * dk) as f64 * e;
    let dur_sm = accel.sfu.softmax_cycles(cfg.seq_q * cfg.seq_kv) as f64;

    let total_iters = groups;
    let sim_iters = total_iters.min(opts.max_simulated_iterations.max(4));
    let n = sim_iters as usize;

    let mut pe = Resource::new("pe");
    let mut sfu = Resource::new("sfu");
    let mut dram = Resource::new("dram");

    let mut trace: Vec<crate::TraceEvent> = Vec::new();

    // Each phase runs to completion over all slices before the next
    // starts; within a phase, the next slice's fetch overlaps the current
    // slice's compute when double-buffered.
    let phase = |unit: &mut Resource,
                 dram: &mut Resource,
                 trace: &mut Vec<crate::TraceEvent>,
                 label: &str,
                 barrier: f64,
                 in_bytes: f64,
                 dur: f64,
                 out_bytes: f64|
     -> f64 {
        let mut done = vec![barrier; n];
        let mut fetch_done = vec![barrier; n];
        for i in 0..n {
            let release = if opts.double_buffered {
                if i >= 1 {
                    fetch_done[i - 1].max(barrier)
                } else {
                    barrier
                }
            } else if i >= 1 {
                done[i - 1]
            } else {
                barrier
            };
            fetch_done[i] = dram.acquire_backfill(release, in_bytes / off_bpc);
            done[i] = unit.acquire(fetch_done[i], dur);
            if opts.record_trace && trace.len() < 200_000 {
                trace.push(crate::TraceEvent {
                    name: format!("{label}-FETCH {i}"),
                    resource: "dram".to_owned(),
                    start: fetch_done[i] - in_bytes / off_bpc,
                    end: fetch_done[i],
                });
                trace.push(crate::TraceEvent {
                    name: format!("{label} {i}"),
                    resource: unit.name().to_owned(),
                    start: done[i] - dur,
                    end: done[i],
                });
            }
            if out_bytes > 0.0 {
                let wb = dram.acquire_backfill(done[i], out_bytes / off_bpc);
                if opts.record_trace && trace.len() < 200_000 {
                    trace.push(crate::TraceEvent {
                        name: format!("{label}-WB {i}"),
                        resource: "dram".to_owned(),
                        start: wb - out_bytes / off_bpc,
                        end: wb,
                    });
                }
            }
        }
        done[n - 1].max(dram.next_free())
    };

    // Phase 1: L — fetch Q,K; compute; write the logit slice out.
    let l_end = phase(
        &mut pe,
        &mut dram,
        &mut trace,
        "L",
        0.0,
        qk_bytes,
        dur_l,
        logit_slice,
    );
    // Phase 2: softmax — read the slice, rewrite it.
    let sm_end = phase(
        &mut sfu,
        &mut dram,
        &mut trace,
        "SM",
        l_end,
        logit_slice,
        dur_sm,
        logit_slice,
    );
    // Phase 3: A — fetch the softmaxed slice and V; compute; write O.
    let a_end = phase(
        &mut pe,
        &mut dram,
        &mut trace,
        "A",
        sm_end,
        logit_slice + v_bytes,
        dur_a,
        o_bytes,
    );

    let sim_end = a_end.max(dram.next_free());
    let (cycles, extrapolated) = if total_iters > sim_iters {
        (sim_end * total_iters as f64 / sim_iters as f64, true)
    } else {
        (sim_end, false)
    };

    let scale = total_iters as f64 / sim_iters as f64;
    let ideal = (2 * cfg.batch * cfg.seq_q * cfg.seq_kv * cfg.hidden) as f64
        / accel.peak_macs_per_cycle() as f64;
    SimReport {
        cycles,
        ideal_cycles: ideal,
        resources: [&pe, &sfu, &dram]
            .into_iter()
            .map(|r| ResourceUsage {
                name: r.name().to_owned(),
                busy_cycles: r.busy_cycles() * scale,
                occupancy: r.occupancy(sim_end),
            })
            .collect(),
        simulated_iterations: sim_iters,
        total_iterations: total_iters,
        extrapolated,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_core::{FusedDataflow, Granularity};
    use flat_workloads::Model;

    #[test]
    fn baseline_is_slower_than_fused_sim() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let base = simulate_sequential(&accel, &block, SimOptions::default());
        let fused = crate::simulate_fused(
            &accel,
            &block,
            &FusedDataflow::new(Granularity::Row(64)),
            SimOptions::default(),
        );
        assert!(
            base.cycles > fused.cycles,
            "{} <= {}",
            base.cycles,
            fused.cycles
        );
    }

    #[test]
    fn dram_dominates_the_baseline_at_long_seq() {
        let accel = Accelerator::cloud();
        let block = Model::xlm().block(64, 16_384);
        let r = simulate_sequential(&accel, &block, SimOptions::default());
        let dram = r.resources.iter().find(|u| u.name == "dram").unwrap();
        let pe = r.resources.iter().find(|u| u.name == "pe").unwrap();
        assert!(
            dram.occupancy > pe.occupancy,
            "dram {} vs pe {}",
            dram.occupancy,
            pe.occupancy
        );
        assert!(r.util() < 0.5);
    }

    #[test]
    fn extrapolates_past_the_cap() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let r = simulate_sequential(
            &accel,
            &block,
            SimOptions {
                max_simulated_iterations: 16,
                ..SimOptions::default()
            },
        );
        assert!(r.extrapolated);
        assert!(r.cycles > 0.0);
    }
}
