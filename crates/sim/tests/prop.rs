//! Property tests for the event simulator, including its agreement band
//! with the analytical model.

use flat_arch::Accelerator;
use flat_core::{CostModel, FusedDataflow, Granularity};
use flat_sim::{simulate_fused, simulate_sequential, Resource, SimOptions};
use flat_workloads::Model;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FIFO resources serve jobs in order and never overlap them.
    #[test]
    fn fifo_resource_laws(durations in proptest::collection::vec(0.0f64..1e6, 1..64)) {
        let mut r = Resource::new("x");
        let mut last_end = 0.0;
        let mut total = 0.0;
        for &d in &durations {
            let end = r.acquire(0.0, d);
            prop_assert!(end >= last_end + d - 1e-9);
            last_end = end;
            total += d;
        }
        prop_assert!((r.busy_cycles() - total).abs() < 1e-6);
        prop_assert!((r.next_free() - total).abs() < 1e-6);
    }

    /// Backfill never finishes a job earlier than an empty resource could,
    /// never loses busy time, and respects ready times.
    #[test]
    fn backfill_laws(jobs in proptest::collection::vec((0.0f64..1e5, 0.1f64..1e4), 1..48)) {
        let mut r = Resource::new("x");
        let mut total = 0.0;
        for &(ready, dur) in &jobs {
            let end = r.acquire_backfill(ready, dur);
            prop_assert!(end >= ready + dur - 1e-9, "finished before ready+dur");
            total += dur;
        }
        prop_assert!((r.busy_cycles() - total).abs() < 1e-3);
        // Makespan is at least the total work (one server).
        prop_assert!(r.next_free() >= total * (1.0 - 1e-9) || r.next_free() >= total - 1e-3);
    }

    /// The simulator and the analytical model agree within a band across
    /// random compute-friendly operating points, and both exceed ideal.
    #[test]
    fn sim_tracks_model(
        seq in prop::sample::select(vec![256u64, 512, 1024, 2048]),
        r in prop::sample::select(vec![16u64, 32, 64]),
        batch in prop::sample::select(vec![8u64, 32, 64]),
    ) {
        let accel = Accelerator::edge();
        let block = Model::bert().block(batch, seq);
        let df = FusedDataflow::new(Granularity::Row(r.min(seq)));
        let analytical = CostModel::new(&accel).fused_la_cost(&block, &df);
        let simulated = simulate_fused(&accel, &block, &df, SimOptions::default());
        let ratio = simulated.cycles / analytical.cycles;
        prop_assert!((0.7..1.5).contains(&ratio), "ratio {ratio}");
        prop_assert!(simulated.cycles >= simulated.ideal_cycles * (1.0 - 1e-9));
    }

    /// Sequential simulation is slower than fused simulation wherever the
    /// logit tensor dwarfs the scratchpad.
    #[test]
    fn sim_agrees_on_the_winner(
        seq in prop::sample::select(vec![512u64, 1024, 2048]),
        batch in prop::sample::select(vec![16u64, 64]),
    ) {
        let accel = Accelerator::edge();
        let block = Model::bert().block(batch, seq);
        let fused = simulate_fused(
            &accel,
            &block,
            &FusedDataflow::new(Granularity::Row(64.min(seq))),
            SimOptions::default(),
        );
        let base = simulate_sequential(&accel, &block, SimOptions::default());
        prop_assert!(base.cycles > fused.cycles);
    }
}
