//! Live-memory footprint algebra — the Table 2 formulas.

use crate::{FusedDataflow, Granularity};
use flat_tensor::Bytes;
use flat_workloads::AttentionConfig;
use serde::{Deserialize, Serialize};

/// Per-iteration slice sizes (in elements) of the five tensors touched by
/// the fused L-A operator at a given granularity.
///
/// # Example
///
/// ```
/// use flat_core::{FusedSlices, Granularity};
/// use flat_workloads::AttentionConfig;
///
/// let cfg = AttentionConfig::self_attention(64, 16, 512, 1024, 4096);
/// let s = FusedSlices::new(Granularity::Row(64), &cfg);
/// assert_eq!(s.query, 64 * 64);          // R x dk
/// assert_eq!(s.intermediate, 64 * 512);  // R x N
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusedSlices {
    /// Query slice elements (input A of the Logit stage).
    pub query: u64,
    /// Key slice elements (input B of the Logit stage).
    pub key: u64,
    /// Value slice elements (input B of the Attend stage).
    pub value: u64,
    /// Attended-output slice elements.
    pub output: u64,
    /// Intermediate (logit) slice elements.
    pub intermediate: u64,
    /// Cross-loop iterations to cover the whole workload.
    pub iterations: u64,
    /// Batches × heads covered per iteration (the batch count of the
    /// per-iteration sub-GEMMs).
    pub groups: u64,
    /// Query rows covered per iteration per (batch, head).
    pub rows: u64,
}

impl FusedSlices {
    /// Computes slice sizes for `granularity` over `cfg`.
    #[must_use]
    pub fn new(granularity: Granularity, cfg: &AttentionConfig) -> Self {
        let rows = granularity.rows_per_slice(cfg);
        let heads = granularity.heads_per_slice(cfg);
        let batches = granularity.batches_per_slice(cfg);
        let groups = batches * heads;
        let dk = cfg.dk();
        FusedSlices {
            query: groups * rows * dk,
            key: groups * cfg.seq_kv * dk,
            value: groups * cfg.seq_kv * dk,
            output: groups * rows * dk,
            intermediate: granularity.slice_logit_elements(cfg),
            iterations: granularity.iterations(cfg),
            groups,
            rows,
        }
    }
}

/// The live-memory footprint of the fused L-A operator (Table 2): the
/// DRAM-facing FLAT-tiles are double-buffered; the intermediate slice is
/// not, because it never interacts with off-chip memory (§4.4).
///
/// Only *enabled* tensors contribute — disabling a FLAT-tile trades
/// footprint for bandwidth (§4.2.2).
///
/// # Example
///
/// ```
/// use flat_core::{fused_footprint, FusedDataflow, Granularity};
/// use flat_workloads::AttentionConfig;
///
/// let cfg = AttentionConfig::self_attention(64, 16, 512, 1024, 4096);
/// let r = fused_footprint(&FusedDataflow::new(Granularity::Row(64)), &cfg);
/// let h = fused_footprint(&FusedDataflow::new(Granularity::Head), &cfg);
/// assert!(r < h);
/// ```
#[must_use]
pub fn fused_footprint(df: &FusedDataflow, cfg: &AttentionConfig) -> Bytes {
    Bytes::new(fused_footprint_elems(df, cfg) * cfg.dtype.size_bytes())
}

/// [`fused_footprint`] in elements rather than bytes.
#[must_use]
pub fn fused_footprint_elems(df: &FusedDataflow, cfg: &AttentionConfig) -> u64 {
    let s = FusedSlices::new(df.granularity, cfg);
    let e = df.enables;
    let mut elems = 0;
    if e.query {
        elems += 2 * s.query;
    }
    if e.key {
        elems += 2 * s.key;
    }
    if e.value {
        elems += 2 * s.value;
    }
    if e.output {
        elems += 2 * s.output;
    }
    if e.intermediate {
        elems += s.intermediate;
    }
    elems
}

#[must_use]
fn fused_footprint_elems_at(g: Granularity, cfg: &AttentionConfig) -> u64 {
    fused_footprint_elems(&FusedDataflow::new(g), cfg)
}

/// The four Table 2 rows, in elements, for a configuration (fully enabled
/// FLAT-tiles). Returned in `[M, B, H, R(rows)]` order.
#[must_use]
pub fn table2_row_elems(cfg: &AttentionConfig, rows: u64) -> [u64; 4] {
    [
        fused_footprint_elems_at(Granularity::BatchMultiHead, cfg),
        fused_footprint_elems_at(Granularity::Batch, cfg),
        fused_footprint_elems_at(Granularity::Head, cfg),
        fused_footprint_elems_at(Granularity::Row(rows), cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AttentionConfig {
        AttentionConfig::self_attention(64, 16, 512, 1024, 4096)
    }

    /// Table 2, R-Gran: `O(4·R·dk + 4·N·dk + R·N)`.
    #[test]
    fn r_gran_matches_closed_form() {
        let cfg = cfg();
        let (r, dk, n) = (64u64, cfg.dk(), cfg.seq_kv);
        let expect = 4 * r * dk + 4 * n * dk + r * n;
        assert_eq!(fused_footprint_elems_at(Granularity::Row(r), &cfg), expect);
    }

    /// Table 2, H-Gran: `O(8·N·dk + N²)`.
    #[test]
    fn h_gran_matches_closed_form() {
        let cfg = cfg();
        let (dk, n) = (cfg.dk(), cfg.seq_kv);
        assert_eq!(
            fused_footprint_elems_at(Granularity::Head, &cfg),
            8 * n * dk + n * n
        );
    }

    /// Table 2, B-Gran: `O(8·D·N + H·N²)`.
    #[test]
    fn b_gran_matches_closed_form() {
        let cfg = cfg();
        let (d, h, n) = (cfg.hidden, cfg.heads, cfg.seq_kv);
        assert_eq!(
            fused_footprint_elems_at(Granularity::Batch, &cfg),
            8 * d * n + h * n * n
        );
    }

    /// Table 2, M-Gran: `O(8·B·D·N + B·H·N²)`.
    #[test]
    fn m_gran_matches_closed_form() {
        let cfg = cfg();
        let (b, d, h, n) = (cfg.batch, cfg.hidden, cfg.heads, cfg.seq_kv);
        assert_eq!(
            fused_footprint_elems_at(Granularity::BatchMultiHead, &cfg),
            8 * b * d * n + b * h * n * n
        );
    }

    /// R-Gran footprint is O(N); coarser granularities are Ω(N²).
    #[test]
    fn r_gran_scales_linearly_with_sequence() {
        let short = cfg();
        let long = short.with_seq(short.seq_q * 4);
        let r = |c: &AttentionConfig| fused_footprint_elems_at(Granularity::Row(64), c);
        let h = |c: &AttentionConfig| fused_footprint_elems_at(Granularity::Head, c);
        // Linear growth: x4 seq -> ~x4 footprint.
        assert!(r(&long) <= 5 * r(&short));
        // Quadratic growth: x4 seq -> >x8 footprint.
        assert!(h(&long) >= 8 * h(&short));
    }

    #[test]
    fn disabling_tiles_reduces_footprint() {
        let cfg = cfg();
        let mut df = FusedDataflow::new(Granularity::Row(64));
        let full = fused_footprint(&df, &cfg);
        df.enables.key = false;
        df.enables.value = false;
        let partial = fused_footprint(&df, &cfg);
        assert!(partial < full);
    }

    #[test]
    fn slices_cover_tensor_exactly() {
        let cfg = cfg();
        for g in [Granularity::Batch, Granularity::Head, Granularity::Row(128)] {
            let s = FusedSlices::new(g, &cfg);
            assert_eq!(s.iterations * s.intermediate, cfg.logit_elements(), "{g}");
            assert_eq!(
                s.iterations * s.query,
                cfg.batch * cfg.heads * cfg.seq_q * cfg.dk()
            );
        }
    }
}
