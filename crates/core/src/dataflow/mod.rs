//! Dataflow configuration: everything Figure 6(a) lists under "Dataflow".
//!
//! A dataflow is the combination of
//!
//! * a cross-operator [`Granularity`] (M/B/H/R — how much of the logit
//!   tensor one FLAT-/L3-tile covers),
//! * per-tensor staging [`OperandEnables`] / [`FusedEnables`],
//! * an intra-operator [`Stationarity`] per GEMM stage,
//! * and the fused-vs-sequential execution choice ([`LaExecution`]).
//!
//! [`BlockDataflow`] bundles these for a whole attention block and provides
//! the named baselines of Figure 7(b).

mod config;
mod enables;
mod granularity;
mod label;
mod stationary;

pub use config::{
    BlockDataflow, FusedDataflow, FusedExecution, L3Config, LaExecution, OperatorDataflow,
};
pub use enables::{FusedEnables, OperandEnables};
pub use granularity::Granularity;
pub use label::ParseDataflowError;
pub use stationary::Stationarity;
