//! Selective enabling of L3-/FLAT-tiles per tensor (§4.2.2, "Selectively
//! Enabled FLAT-tile").

use serde::{Deserialize, Serialize};

/// Which tensors of a *single* (non-fused) operator get staged in the
/// global scratchpad at the L3-tile granularity.
///
/// A disabled tensor "follows the baseline dataflow which has higher BW
/// requirements" — it streams from DRAM with the full intra-operator reuse
/// multiplier, but costs no SG footprint.
///
/// # Example
///
/// ```
/// use flat_core::OperandEnables;
///
/// let all = OperandEnables::all();
/// assert_eq!(all.count_enabled(), 3);
/// assert_eq!(OperandEnables::none().count_enabled(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OperandEnables {
    /// Stage the `A` operand (input activation).
    pub input_a: bool,
    /// Stage the `B` operand (weight or second activation).
    pub input_b: bool,
    /// Stage the output.
    pub output: bool,
}

impl OperandEnables {
    /// Every tensor staged.
    #[must_use]
    pub const fn all() -> Self {
        OperandEnables {
            input_a: true,
            input_b: true,
            output: true,
        }
    }

    /// Nothing staged: pure baseline streaming.
    #[must_use]
    pub const fn none() -> Self {
        OperandEnables {
            input_a: false,
            input_b: false,
            output: false,
        }
    }

    /// Number of staged tensors.
    #[must_use]
    pub const fn count_enabled(&self) -> u32 {
        self.input_a as u32 + self.input_b as u32 + self.output as u32
    }

    /// All 2³ enable combinations, for DSE.
    #[must_use]
    pub fn enumerate() -> Vec<OperandEnables> {
        let mut out = Vec::with_capacity(8);
        for bits in 0u8..8 {
            out.push(OperandEnables {
                input_a: bits & 1 != 0,
                input_b: bits & 2 != 0,
                output: bits & 4 != 0,
            });
        }
        out
    }
}

impl Default for OperandEnables {
    /// Defaults to staging everything (the common best choice when the
    /// buffer allows it).
    fn default() -> Self {
        OperandEnables::all()
    }
}

/// Which tensors of the *fused* L-A operator get a FLAT-tile.
///
/// §4.3: the fused operator has 2⁵ enable/disable choices — the two inputs
/// of L (Q, K), the second input of A (V), the output of A, and the
/// intermediate (logit) tensor between them. Disabling the intermediate
/// FLAT-tile degrades the fusion to a DRAM round trip and is almost never
/// profitable, but it is part of the paper's design space, so it is part of
/// ours.
///
/// # Example
///
/// ```
/// use flat_core::FusedEnables;
///
/// assert_eq!(FusedEnables::enumerate().len(), 32);
/// assert!(FusedEnables::all().intermediate);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FusedEnables {
    /// Stage the query slice (input A of L).
    pub query: bool,
    /// Stage the key slice (input B of L).
    pub key: bool,
    /// Stage the value slice (input B of A).
    pub value: bool,
    /// Stage the attended-output slice (output of A).
    pub output: bool,
    /// Keep the intermediate logit slice on-chip between L and A — the
    /// essence of FLAT.
    pub intermediate: bool,
}

impl FusedEnables {
    /// Every FLAT-tile enabled.
    #[must_use]
    pub const fn all() -> Self {
        FusedEnables {
            query: true,
            key: true,
            value: true,
            output: true,
            intermediate: true,
        }
    }

    /// Only the intermediate tensor staged (the Figure 4(b) walk-through
    /// configuration).
    #[must_use]
    pub const fn intermediate_only() -> Self {
        FusedEnables {
            query: false,
            key: false,
            value: false,
            output: false,
            intermediate: true,
        }
    }

    /// Number of staged tensors.
    #[must_use]
    pub const fn count_enabled(&self) -> u32 {
        self.query as u32
            + self.key as u32
            + self.value as u32
            + self.output as u32
            + self.intermediate as u32
    }

    /// All 2⁵ enable combinations, for DSE.
    #[must_use]
    pub fn enumerate() -> Vec<FusedEnables> {
        let mut out = Vec::with_capacity(32);
        for bits in 0u8..32 {
            out.push(FusedEnables {
                query: bits & 1 != 0,
                key: bits & 2 != 0,
                value: bits & 4 != 0,
                output: bits & 8 != 0,
                intermediate: bits & 16 != 0,
            });
        }
        out
    }
}

impl Default for FusedEnables {
    fn default() -> Self {
        FusedEnables::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_enumeration_is_exhaustive_and_distinct() {
        let combos = OperandEnables::enumerate();
        assert_eq!(combos.len(), 8);
        let mut seen = std::collections::HashSet::new();
        for c in combos {
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn fused_enumeration_is_exhaustive_and_distinct() {
        let combos = FusedEnables::enumerate();
        assert_eq!(combos.len(), 32);
        let mut seen = std::collections::HashSet::new();
        for c in combos {
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn counts_match_flags() {
        assert_eq!(FusedEnables::all().count_enabled(), 5);
        assert_eq!(FusedEnables::intermediate_only().count_enabled(), 1);
        assert_eq!(OperandEnables::none().count_enabled(), 0);
    }
}
