//! Assembled dataflow configurations — the rows of Figure 7(b).

use crate::dataflow::{FusedEnables, Granularity, OperandEnables, Stationarity};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dataflow for one non-fused operator.
///
/// Combines an intra-operator dataflow (the [`Stationarity`] choice, which
/// fixes L1/L2 tiling against the PE array) with an optional L3 staging
/// tier: a [`Granularity`] and per-tensor [`OperandEnables`]. `l3: None` is
/// the plain baseline that streams every L2 tile from DRAM.
///
/// # Example
///
/// ```
/// use flat_core::{Granularity, OperatorDataflow, Stationarity};
///
/// let base = OperatorDataflow::baseline(Stationarity::Weight);
/// assert!(base.l3.is_none());
/// let staged = OperatorDataflow::staged(Stationarity::Weight, Granularity::Batch);
/// assert!(staged.l3.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OperatorDataflow {
    /// Which operand the PE array holds resident.
    pub stationarity: Stationarity,
    /// Optional L3 staging tier.
    pub l3: Option<L3Config>,
}

/// The L3 staging tier of a non-fused operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct L3Config {
    /// Slice size of the staged tensors.
    pub granularity: Granularity,
    /// Which tensors are staged.
    pub enables: OperandEnables,
}

impl OperatorDataflow {
    /// Plain baseline: no L3 tier, stream everything (the `Base` row of
    /// Figure 7(b)).
    #[must_use]
    pub const fn baseline(stationarity: Stationarity) -> Self {
        OperatorDataflow {
            stationarity,
            l3: None,
        }
    }

    /// Baseline with an L3 tier at `granularity`, all tensors staged
    /// (the `Base-X` rows of Figure 7(b)).
    #[must_use]
    pub const fn staged(stationarity: Stationarity, granularity: Granularity) -> Self {
        OperatorDataflow {
            stationarity,
            l3: Some(L3Config {
                granularity,
                enables: OperandEnables::all(),
            }),
        }
    }
}

impl fmt::Display for OperatorDataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.l3 {
            None => write!(f, "base/{}", self.stationarity),
            Some(l3) => write!(f, "staged-{}/{}", l3.granularity, self.stationarity),
        }
    }
}

/// How the two stages of the fused operator share the PE array (§5.1,
/// feature 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FusedExecution {
    /// Temporal pipelining: all PEs compute the L stage of a FLAT-tile,
    /// then all PEs compute its A stage — the paper's chosen
    /// implementation.
    #[default]
    Interleaved,
    /// Spatial pipelining: half the array runs L while the other half
    /// runs A of the previous tile. Pays per-tile fill/drain, halves the
    /// prefetch window, and (outside this operator) leaves a split array
    /// for non-fused work — the §5.1 downsides, modeled so they can be
    /// measured.
    Pipelined,
}

/// Dataflow for the fused L-A operator (the FLAT contribution, §4.2).
///
/// # Example
///
/// ```
/// use flat_core::{FusedDataflow, Granularity};
///
/// let flat_r64 = FusedDataflow::new(Granularity::Row(64));
/// assert!(flat_r64.enables.intermediate);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FusedDataflow {
    /// FLAT-tile granularity (M/B/H/R).
    pub granularity: Granularity,
    /// Which tensors get FLAT-tiles.
    pub enables: FusedEnables,
    /// Intra-operator dataflow of the Logit stage.
    pub stationarity_l: Stationarity,
    /// Intra-operator dataflow of the Attend stage.
    pub stationarity_a: Stationarity,
    /// Interleaved (temporal) or pipelined (spatial) stage execution.
    pub execution: FusedExecution,
}

impl FusedDataflow {
    /// A fused dataflow at `granularity` with every FLAT-tile enabled.
    ///
    /// The default stage dataflows are output-stationary for L and
    /// input-stationary for A: both keep the array's spatial dimensions on
    /// the large `rows × N` extents instead of the small per-head `dk`,
    /// which is the right call for every workload in the suite (DSE
    /// explores the alternatives).
    #[must_use]
    pub const fn new(granularity: Granularity) -> Self {
        FusedDataflow {
            granularity,
            enables: FusedEnables::all(),
            stationarity_l: Stationarity::Output,
            stationarity_a: Stationarity::Input,
            execution: FusedExecution::Interleaved,
        }
    }

    /// The same dataflow under spatially pipelined execution.
    #[must_use]
    pub const fn pipelined(granularity: Granularity) -> Self {
        let mut df = FusedDataflow::new(granularity);
        df.execution = FusedExecution::Pipelined;
        df
    }
}

impl fmt::Display for FusedDataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FLAT-{}", self.granularity)
    }
}

/// How the L-A pair is executed: sequentially (all baselines) or fused
/// (FLAT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaExecution {
    /// Run L to completion, softmax the whole tensor, then run A.
    Sequential {
        /// Dataflow of the Logit operator.
        logit: OperatorDataflow,
        /// Dataflow of the Attend operator.
        attend: OperatorDataflow,
    },
    /// Interleave L and A per FLAT-tile.
    Fused(FusedDataflow),
}

impl LaExecution {
    /// True for the fused (FLAT) execution.
    #[must_use]
    pub const fn is_fused(&self) -> bool {
        matches!(self, LaExecution::Fused(_))
    }
}

/// A complete dataflow assignment for an attention block: how L-A runs and
/// how every non-fused operator (Q/K/V/O/FC1/FC2) runs.
///
/// The named constructors produce the comparison rows of Figure 7(b); the
/// `*-opt` rows come out of `flat-dse`.
///
/// # Example
///
/// ```
/// use flat_core::{BlockDataflow, Granularity};
///
/// let base = BlockDataflow::base();
/// assert!(!base.la.is_fused());
/// let flat = BlockDataflow::flat(Granularity::Row(64));
/// assert!(flat.la.is_fused());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockDataflow {
    /// Execution strategy for the Logit-Attend pair.
    pub la: LaExecution,
    /// Dataflow for every other (non-fused) operator.
    pub others: OperatorDataflow,
}

impl BlockDataflow {
    /// `Base`: sequential execution, no L3 tier anywhere.
    #[must_use]
    pub const fn base() -> Self {
        let op = OperatorDataflow::baseline(Stationarity::Weight);
        BlockDataflow {
            la: LaExecution::Sequential {
                logit: op,
                attend: op,
            },
            others: op,
        }
    }

    /// `Base-X`: sequential execution with an L3 tier at `granularity` on
    /// the L and A operators (and M-Gran staging for the rest).
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is row-level — a sequential dataflow cannot
    /// exploit row slices (§4.2.2).
    #[must_use]
    pub fn base_staged(granularity: Granularity) -> Self {
        assert!(
            !granularity.requires_fusion(),
            "sequential (Base-X) dataflows cannot use row granularity"
        );
        let op = OperatorDataflow::staged(Stationarity::Weight, granularity);
        BlockDataflow {
            la: LaExecution::Sequential {
                logit: op,
                attend: op,
            },
            others: OperatorDataflow::staged(Stationarity::Weight, Granularity::BatchMultiHead),
        }
    }

    /// `FLAT-X` / `FLAT-Rx`: fused L-A at `granularity`, all FLAT-tiles
    /// enabled; other operators staged at M-Gran.
    #[must_use]
    pub const fn flat(granularity: Granularity) -> Self {
        BlockDataflow {
            la: LaExecution::Fused(FusedDataflow::new(granularity)),
            others: OperatorDataflow::staged(Stationarity::Weight, Granularity::BatchMultiHead),
        }
    }

    /// Short label for reports (`Base`, `Base-B`, `FLAT-R64`, …).
    #[must_use]
    pub fn label(&self) -> String {
        match &self.la {
            LaExecution::Sequential { logit, .. } => match logit.l3 {
                None => "Base".to_owned(),
                Some(l3) => format!("Base-{}", l3.granularity),
            },
            LaExecution::Fused(fused) => format!("FLAT-{}", fused.granularity),
        }
    }
}

impl fmt::Display for BlockDataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure_7b() {
        assert_eq!(BlockDataflow::base().label(), "Base");
        assert_eq!(
            BlockDataflow::base_staged(Granularity::Batch).label(),
            "Base-B"
        );
        assert_eq!(BlockDataflow::flat(Granularity::Head).label(), "FLAT-H");
        assert_eq!(
            BlockDataflow::flat(Granularity::Row(128)).label(),
            "FLAT-R128"
        );
    }

    #[test]
    #[should_panic(expected = "row granularity")]
    fn base_cannot_use_row_granularity() {
        let _ = BlockDataflow::base_staged(Granularity::Row(4));
    }

    #[test]
    fn base_has_no_l3_on_la() {
        match BlockDataflow::base().la {
            LaExecution::Sequential { logit, attend } => {
                assert!(logit.l3.is_none());
                assert!(attend.l3.is_none());
            }
            LaExecution::Fused(_) => panic!("base is sequential"),
        }
    }

    #[test]
    fn fused_defaults_enable_everything() {
        match BlockDataflow::flat(Granularity::Row(64)).la {
            LaExecution::Fused(f) => assert_eq!(f.enables.count_enabled(), 5),
            LaExecution::Sequential { .. } => panic!("flat is fused"),
        }
    }
}
