//! Cross-operator tiling granularity (§4.2.2).

use flat_workloads::AttentionConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How much of the intermediate (logit) tensor one FLAT-tile / L3-tile
/// covers.
///
/// The ladder from coarsest to finest (Figure 3(b), Table 2):
///
/// * [`Granularity::BatchMultiHead`] (*M-Gran*) — the entire tensor: all
///   batches, all heads. The "naive" choice when the buffer is huge.
/// * [`Granularity::Batch`] (*B-Gran*) — one batch sample, all its heads.
/// * [`Granularity::Head`] (*H-Gran*) — one (batch, head) pair.
/// * [`Granularity::Row`] (*R-Gran*) — `R` logit rows of one head: the
///   finest legal unit, because softmax reduces along a full key row. Only
///   a *fused* dataflow can exploit R-Gran — a sequential baseline must
///   finish all of L before A starts, so slicing rows buys it nothing.
///
/// # Example
///
/// ```
/// use flat_core::Granularity;
/// use flat_workloads::AttentionConfig;
///
/// let cfg = AttentionConfig::self_attention(64, 16, 512, 1024, 4096);
/// // One R-Gran slice holds 4 rows x N columns of logits for one head.
/// assert_eq!(Granularity::Row(4).slice_logit_elements(&cfg), 4 * 512);
/// // An M-Gran slice holds the whole B x H x N x N tensor.
/// assert_eq!(
///     Granularity::BatchMultiHead.slice_logit_elements(&cfg),
///     cfg.logit_elements()
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// M-Gran: the entire batched multi-head tensor at once.
    BatchMultiHead,
    /// B-Gran: one batch sample (all heads).
    Batch,
    /// H-Gran: one (batch, head) pair.
    Head,
    /// R-Gran: `R` logit rows of one (batch, head) pair.
    Row(u64),
    /// The general FLAT-tile of §4.2.2: `B_t` batch samples × `H_t` heads
    /// × `R` logit rows per slice. The named granularities are corners of
    /// this space (`M = (B, H, N)`, `B = (1, H, N)`, `H = (1, 1, N)`,
    /// `R = (1, 1, r)`); composite tiles trade head-level parallelism
    /// against slice footprint, which matters when `dk` underfills a wide
    /// PE array.
    Composite {
        /// Batch samples per slice (`B_t`).
        batch_t: u64,
        /// Heads per slice (`H_t`).
        head_t: u64,
        /// Logit rows per slice per (batch, head) (`R`).
        rows: u64,
    },
}

impl Granularity {
    /// Short name used in the paper's plots (`M`, `B`, `H`, `R64`,
    /// `T2x4xR64`, …).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Granularity::BatchMultiHead => "M".to_owned(),
            Granularity::Batch => "B".to_owned(),
            Granularity::Head => "H".to_owned(),
            Granularity::Row(r) => format!("R{r}"),
            Granularity::Composite {
                batch_t,
                head_t,
                rows,
            } => {
                format!("T{batch_t}x{head_t}xR{rows}")
            }
        }
    }

    /// Number of cross-loop iterations the fused operator makes over the
    /// whole workload at this granularity.
    ///
    /// # Panics
    ///
    /// Panics if a row or tile extent is zero.
    #[must_use]
    pub fn iterations(&self, cfg: &AttentionConfig) -> u64 {
        match *self {
            Granularity::BatchMultiHead => 1,
            Granularity::Batch => cfg.batch,
            Granularity::Head => cfg.batch * cfg.heads,
            Granularity::Row(r) => {
                assert!(r > 0, "row granularity must be positive");
                cfg.batch * cfg.heads * cfg.seq_q.div_ceil(r)
            }
            Granularity::Composite {
                batch_t,
                head_t,
                rows,
            } => {
                assert!(
                    batch_t > 0 && head_t > 0 && rows > 0,
                    "composite tile extents must be positive"
                );
                cfg.batch.div_ceil(batch_t) * cfg.heads.div_ceil(head_t) * cfg.seq_q.div_ceil(rows)
            }
        }
    }

    /// Query rows covered by one iteration's slice (per covered head).
    #[must_use]
    pub fn rows_per_slice(&self, cfg: &AttentionConfig) -> u64 {
        match *self {
            Granularity::Row(r) | Granularity::Composite { rows: r, .. } => r.min(cfg.seq_q),
            _ => cfg.seq_q,
        }
    }

    /// Heads covered by one iteration's slice (per covered batch).
    #[must_use]
    pub fn heads_per_slice(&self, cfg: &AttentionConfig) -> u64 {
        match *self {
            Granularity::BatchMultiHead | Granularity::Batch => cfg.heads,
            Granularity::Head | Granularity::Row(_) => 1,
            Granularity::Composite { head_t, .. } => head_t.min(cfg.heads),
        }
    }

    /// Batch samples covered by one iteration's slice.
    #[must_use]
    pub fn batches_per_slice(&self, cfg: &AttentionConfig) -> u64 {
        match *self {
            Granularity::BatchMultiHead => cfg.batch,
            Granularity::Composite { batch_t, .. } => batch_t.min(cfg.batch),
            _ => 1,
        }
    }

    /// True when consecutive iterations at this granularity revisit the
    /// same key/value slice (row slicing within a head), letting a fused
    /// dataflow keep K/V resident without a second buffer.
    #[must_use]
    pub fn reuses_kv_across_iterations(&self, cfg: &AttentionConfig) -> bool {
        self.rows_per_slice(cfg) < cfg.seq_q
    }

    /// Elements of the intermediate (logit) tensor in one slice.
    #[must_use]
    pub fn slice_logit_elements(&self, cfg: &AttentionConfig) -> u64 {
        self.batches_per_slice(cfg)
            * self.heads_per_slice(cfg)
            * self.rows_per_slice(cfg)
            * cfg.seq_kv
    }

    /// True when this granularity requires cross-operator fusion to be
    /// useful (row slices are meaningless for a run-L-to-completion
    /// baseline).
    #[must_use]
    pub const fn requires_fusion(&self) -> bool {
        matches!(self, Granularity::Row(_) | Granularity::Composite { .. })
    }

    /// The coarse granularities available to both baseline (Base-X) and
    /// FLAT dataflows.
    #[must_use]
    pub const fn coarse() -> [Granularity; 3] {
        [
            Granularity::BatchMultiHead,
            Granularity::Batch,
            Granularity::Head,
        ]
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AttentionConfig {
        AttentionConfig::self_attention(64, 16, 512, 1024, 4096)
    }

    #[test]
    fn iterations_times_slice_covers_tensor() {
        let cfg = cfg();
        for g in [
            Granularity::BatchMultiHead,
            Granularity::Batch,
            Granularity::Head,
            Granularity::Row(64),
            Granularity::Row(512),
        ] {
            assert_eq!(
                g.iterations(&cfg) * g.slice_logit_elements(&cfg),
                cfg.logit_elements(),
                "{g}"
            );
        }
    }

    #[test]
    fn row_granularity_rounds_up_iterations() {
        let cfg = cfg();
        // 512 rows in slices of 100 -> 6 slices per head.
        assert_eq!(Granularity::Row(100).iterations(&cfg), 64 * 16 * 6);
    }

    #[test]
    fn row_slice_clamps_to_seq() {
        let cfg = cfg();
        assert_eq!(Granularity::Row(10_000).rows_per_slice(&cfg), 512);
    }

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(Granularity::BatchMultiHead.label(), "M");
        assert_eq!(Granularity::Row(64).label(), "R64");
    }

    #[test]
    fn only_rows_require_fusion() {
        assert!(Granularity::Row(1).requires_fusion());
        for g in Granularity::coarse() {
            assert!(!g.requires_fusion());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rows_rejected() {
        let _ = Granularity::Row(0).iterations(&cfg());
    }

    #[test]
    fn composite_tiles_cover_tensor_exactly() {
        let cfg = cfg();
        for g in [
            Granularity::Composite {
                batch_t: 1,
                head_t: 4,
                rows: 64,
            },
            Granularity::Composite {
                batch_t: 2,
                head_t: 1,
                rows: 128,
            },
            Granularity::Composite {
                batch_t: 64,
                head_t: 16,
                rows: 512,
            },
        ] {
            assert_eq!(
                g.iterations(&cfg) * g.slice_logit_elements(&cfg),
                cfg.logit_elements(),
                "{g}"
            );
        }
    }

    #[test]
    fn named_granularities_are_composite_corners() {
        let cfg = cfg();
        let corner = |b, h, r| Granularity::Composite {
            batch_t: b,
            head_t: h,
            rows: r,
        };
        for (named, composite) in [
            (Granularity::BatchMultiHead, corner(64, 16, 512)),
            (Granularity::Batch, corner(1, 16, 512)),
            (Granularity::Head, corner(1, 1, 512)),
            (Granularity::Row(64), corner(1, 1, 64)),
        ] {
            assert_eq!(named.iterations(&cfg), composite.iterations(&cfg));
            assert_eq!(
                named.slice_logit_elements(&cfg),
                composite.slice_logit_elements(&cfg)
            );
        }
    }

    #[test]
    fn kv_reuse_iff_rows_sliced() {
        let cfg = cfg();
        assert!(Granularity::Row(64).reuses_kv_across_iterations(&cfg));
        assert!(Granularity::Composite {
            batch_t: 1,
            head_t: 2,
            rows: 64
        }
        .reuses_kv_across_iterations(&cfg));
        assert!(!Granularity::Head.reuses_kv_across_iterations(&cfg));
        assert!(!Granularity::Row(512).reuses_kv_across_iterations(&cfg));
    }

    #[test]
    fn composite_label_is_distinct() {
        assert_eq!(
            Granularity::Composite {
                batch_t: 2,
                head_t: 4,
                rows: 64
            }
            .label(),
            "T2x4xR64"
        );
    }
}
