//! Parsing dataflow labels (`"base-h"`, `"flat-r64"`, `"flat-t2x4xr64"`).

use crate::{BlockDataflow, Granularity};
use std::fmt;
use std::str::FromStr;

/// Error returned when a dataflow label does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDataflowError {
    input: String,
}

impl ParseDataflowError {
    fn new(input: &str) -> Self {
        ParseDataflowError {
            input: input.to_owned(),
        }
    }

    /// The label that failed to parse.
    #[must_use]
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseDataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown dataflow {:?} (expected base, base-m|b|h, flat-m|b|h, flat-rN, or flat-tBxHxrN)",
            self.input
        )
    }
}

impl std::error::Error for ParseDataflowError {}

fn parse_granularity(s: &str) -> Option<Granularity> {
    match s {
        "m" => Some(Granularity::BatchMultiHead),
        "b" => Some(Granularity::Batch),
        "h" => Some(Granularity::Head),
        _ => {
            if let Some(r) = s.strip_prefix('r') {
                return r.parse().ok().filter(|&r| r > 0).map(Granularity::Row);
            }
            // Composite: tBxHxrR.
            let t = s.strip_prefix('t')?;
            let mut parts = t.split('x');
            let batch_t: u64 = parts.next()?.parse().ok()?;
            let head_t: u64 = parts.next()?.parse().ok()?;
            let rows: u64 = parts.next()?.strip_prefix('r')?.parse().ok()?;
            if parts.next().is_some() || batch_t == 0 || head_t == 0 || rows == 0 {
                return None;
            }
            Some(Granularity::Composite {
                batch_t,
                head_t,
                rows,
            })
        }
    }
}

impl FromStr for BlockDataflow {
    type Err = ParseDataflowError;

    /// Parses the labels the evaluation uses (case-insensitive):
    /// `base`, `base-m|b|h`, `flat-m|b|h`, `flat-rN`, `flat-tBxHxrN`.
    ///
    /// # Example
    ///
    /// ```
    /// use flat_core::BlockDataflow;
    ///
    /// let df: BlockDataflow = "flat-r64".parse()?;
    /// assert_eq!(df.label(), "FLAT-R64");
    /// # Ok::<(), flat_core::ParseDataflowError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_lowercase();
        if lower == "base" {
            return Ok(BlockDataflow::base());
        }
        if let Some(g) = lower.strip_prefix("base-") {
            let g = parse_granularity(g).ok_or_else(|| ParseDataflowError::new(s))?;
            if g.requires_fusion() {
                return Err(ParseDataflowError::new(s));
            }
            return Ok(BlockDataflow::base_staged(g));
        }
        if let Some(g) = lower.strip_prefix("flat-") {
            let g = parse_granularity(g).ok_or_else(|| ParseDataflowError::new(s))?;
            return Ok(BlockDataflow::flat(g));
        }
        Err(ParseDataflowError::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_labels_round_trip() {
        for label in [
            "Base", "Base-M", "Base-B", "Base-H", "FLAT-M", "FLAT-B", "FLAT-H", "FLAT-R64",
            "FLAT-R1",
        ] {
            let df: BlockDataflow = label.parse().unwrap();
            assert_eq!(df.label(), label, "round trip of {label}");
        }
    }

    #[test]
    fn composite_labels_parse() {
        let df: BlockDataflow = "flat-t2x4xr64".parse().unwrap();
        assert_eq!(df.label(), "FLAT-T2x4xR64");
    }

    #[test]
    fn case_insensitive() {
        let a: BlockDataflow = "FLAT-r64".parse().unwrap();
        let b: BlockDataflow = "flat-R64".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_labels_error_with_context() {
        for bad in [
            "",
            "nope",
            "base-r64",
            "flat-",
            "flat-r0",
            "flat-t1x1",
            "flat-t0x1xr4",
        ] {
            let err = bad.parse::<BlockDataflow>().unwrap_err();
            assert_eq!(err.input(), bad);
            assert!(err.to_string().contains("unknown dataflow"));
        }
    }

    #[test]
    fn error_type_is_well_behaved() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ParseDataflowError>();
    }
}
