//! Intra-operator dataflow: which operand stays resident in the PE array.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The classic stationary-operand taxonomy of intra-operator dataflows.
///
/// For a GEMM `C = A·B`, the PE array holds an L1/L2 tile of one operand
/// resident while the others stream through (§5.3.1: *"The compute array can
/// support any intra-operator dataflow (weight/input/output stationary)"*).
/// The choice fixes both the spatial mapping (which two GEMM dimensions
/// spread across the array) and the per-operand reuse multipliers the
/// traffic model charges:
///
/// | dataflow           | array holds     | spatial dims | streams        |
/// |--------------------|-----------------|--------------|----------------|
/// | `Weight` (TPU)     | `B[k, n]` tile  | `k × n`      | `A` rows, `C`  |
/// | `Input`            | `A[m, k]` tile  | `m × k`      | `B` cols, `C`  |
/// | `Output` (ShiDianNao) | `C[m, n]` tile | `m × n`   | `A`, `B`       |
///
/// # Example
///
/// ```
/// use flat_core::Stationarity;
/// assert_eq!(Stationarity::all().len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stationarity {
    /// Hold the `B` operand (the weight in activation-weight GEMMs).
    Weight,
    /// Hold the `A` operand (the input activation).
    Input,
    /// Hold the `C` accumulators; stream both inputs.
    Output,
}

impl Stationarity {
    /// All three choices, for DSE sweeps.
    #[must_use]
    pub const fn all() -> [Stationarity; 3] {
        [
            Stationarity::Weight,
            Stationarity::Input,
            Stationarity::Output,
        ]
    }
}

impl fmt::Display for Stationarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stationarity::Weight => "weight-stationary",
            Stationarity::Input => "input-stationary",
            Stationarity::Output => "output-stationary",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_are_distinct() {
        let all = Stationarity::all();
        assert_eq!(all.len(), 3);
        assert_ne!(all[0], all[1]);
        assert_ne!(all[1], all[2]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Stationarity::Weight.to_string(), "weight-stationary");
    }
}
