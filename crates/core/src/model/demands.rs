//! Per-lane demand decomposition of the analytical model.
//!
//! The closed-form cost functions ([`CostModel::fused_la_cost`],
//! [`CostModel::sequential_la_cost`]) fold the work each hardware lane
//! performs — PE array, SFU, on-chip SG port, L2 link, off-chip DRAM
//! link — into a single `max` (double-buffered) or sum (serialized) per
//! iteration. The structures here expose that decomposition *before* the
//! fold, so an execution-driven backend (the `flat-desim` event
//! simulator) can replay exactly the work the analytical model priced and
//! the two can be compared number-for-number.
//!
//! The invariant, pinned by tests in this module: re-folding a demand
//! struct reproduces the analytical cycle count bit-for-bit.
//!
//! [`CostModel::fused_la_cost`]: crate::CostModel::fused_la_cost
//! [`CostModel::sequential_la_cost`]: crate::CostModel::sequential_la_cost

use serde::{Deserialize, Serialize};

/// Per-iteration lane demands of the fused (FLAT) L-A execution.
///
/// One iteration is one FLAT-tile pass of the §4.3 walk: stage L computes
/// a logit slice, the SFU softmaxes it, stage A consumes it, while the
/// next tile's operands prefetch. Every field is *per iteration* except
/// [`warmup_cycles`], charged once.
///
/// [`warmup_cycles`]: FusedLaneDemands::warmup_cycles
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusedLaneDemands {
    /// Number of cross-loop iterations (FLAT-tile passes).
    pub iterations: u64,
    /// PE-array cycles per iteration: both stages' systolic steps plus
    /// the exposed NoC fill/switch overheads of the execution mode.
    pub compute_cycles: f64,
    /// The stage-L share of [`compute_cycles`](Self::compute_cycles).
    pub logit_compute_cycles: f64,
    /// The stage-A share (`compute_cycles - logit_compute_cycles`).
    pub attend_compute_cycles: f64,
    /// SFU cycles per iteration (softmax of one logit slice).
    pub sfu_cycles: f64,
    /// On-chip (SG-port) bytes moved per iteration.
    pub onchip_bytes: f64,
    /// Off-chip (DRAM) bytes moved per iteration, fetch and writeback.
    pub offchip_bytes: f64,
    /// Off-chip window penalty: 1 for interleaved fusion (the prefetch
    /// hides behind both stages), 2 for spatial pipelining (§5.1).
    pub offchip_window_penalty: f64,
    /// Second-level buffer link cycles per iteration (0 without an L2).
    pub l2_cycles: f64,
    /// One-time cold-start cycles: the first tile's operand fetch.
    pub warmup_cycles: f64,
    /// SG-port bandwidth of the priced accelerator (bytes/cycle).
    pub onchip_bytes_per_cycle: f64,
    /// DRAM bandwidth of the priced accelerator (bytes/cycle).
    pub offchip_bytes_per_cycle: f64,
    /// Whether the demands were priced with double buffering: lanes
    /// overlap (`max`) when true, serialize (sum) when false.
    pub double_buffered: bool,
}

impl FusedLaneDemands {
    /// Off-chip link cycles per iteration, window penalty included.
    #[must_use]
    pub fn offchip_cycles(&self) -> f64 {
        self.offchip_bytes * self.offchip_window_penalty / self.offchip_bytes_per_cycle
    }

    /// On-chip (SG-port) cycles per iteration.
    #[must_use]
    pub fn onchip_cycles(&self) -> f64 {
        self.onchip_bytes / self.onchip_bytes_per_cycle
    }

    /// Re-folds the lane demands exactly the way the analytical model
    /// does: overlapped lanes take the slowest (`max`), serialized lanes
    /// sum, the L2 link binds from below in both modes.
    #[must_use]
    pub fn per_iteration_cycles(&self) -> f64 {
        let t_on = self.onchip_cycles();
        let t_off = self.offchip_cycles();
        let base = if self.double_buffered {
            self.compute_cycles.max(t_on).max(t_off)
        } else {
            self.compute_cycles + t_on + t_off
        };
        let gated = base.max(self.l2_cycles);
        if self.double_buffered {
            gated.max(self.sfu_cycles)
        } else {
            gated + self.sfu_cycles
        }
    }

    /// Total analytical cycles: `iterations x per-iteration + warmup`.
    /// Equals [`CostReport::cycles`](crate::CostReport) of the pricing
    /// these demands were derived from, bit-for-bit.
    #[must_use]
    pub fn total_cycles(&self) -> f64 {
        self.iterations as f64 * self.per_iteration_cycles() + self.warmup_cycles
    }
}

/// Whole-phase lane demands of one sequential-pipeline phase (Logit,
/// softmax, or Attend). Unlike [`FusedLaneDemands`] these are *phase
/// totals*: a sequential dataflow runs each phase to completion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseLaneDemands {
    /// Phase label (`"logit"`, `"softmax"`, `"attend"`).
    pub label: &'static str,
    /// PE-array cycles for the whole phase (0 for the softmax phase).
    pub compute_cycles: f64,
    /// SFU cycles for the whole phase (0 for the GEMM phases).
    pub sfu_cycles: f64,
    /// On-chip bytes moved over the whole phase.
    pub onchip_bytes: f64,
    /// Off-chip bytes moved over the whole phase.
    pub offchip_bytes: f64,
    /// Cold-start cycles charged once at phase start.
    pub warmup_cycles: f64,
}

/// Lane demands of the sequential L → softmax → A execution, one entry
/// per phase, plus the composition rules the analytical model applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SequentialLaneDemands {
    /// The Logit GEMM phase.
    pub logit: PhaseLaneDemands,
    /// The softmax pass.
    pub softmax: PhaseLaneDemands,
    /// The Attend GEMM phase.
    pub attend: PhaseLaneDemands,
    /// Whether the model lets softmax pipeline into the Attend phase
    /// (row-ordered consumption): when true and double-buffered, the two
    /// phases overlap; otherwise softmax is its own serial phase.
    pub overlap_softmax: bool,
    /// Whether transfers overlap compute within a phase.
    pub double_buffered: bool,
    /// SG-port bandwidth of the priced accelerator (bytes/cycle).
    pub onchip_bytes_per_cycle: f64,
    /// DRAM bandwidth of the priced accelerator (bytes/cycle).
    pub offchip_bytes_per_cycle: f64,
}

impl SequentialLaneDemands {
    /// Phases in execution order.
    #[must_use]
    pub fn phases(&self) -> [&PhaseLaneDemands; 3] {
        [&self.logit, &self.softmax, &self.attend]
    }
}

#[cfg(test)]
mod tests {
    use crate::Stationarity;
    use crate::{CostModel, FusedDataflow, Granularity, ModelOptions, OperatorDataflow};
    use flat_arch::Accelerator;
    use flat_workloads::Model;

    /// The load-bearing invariant: demands re-fold to the priced cycles
    /// exactly, for every option combination.
    #[test]
    fn fused_demands_refold_bit_exact() {
        for accel in [Accelerator::edge(), Accelerator::cloud()] {
            for seq in [512u64, 4096] {
                for g in [
                    Granularity::Row(64),
                    Granularity::Head,
                    Granularity::BatchMultiHead,
                ] {
                    for db in [true, false] {
                        let block = Model::bert().block(64, seq);
                        let opts = ModelOptions {
                            double_buffered: db,
                            ..Default::default()
                        };
                        let cm = CostModel::with_options(&accel, opts);
                        let df = FusedDataflow::new(g);
                        let report = cm.fused_la_cost(&block, &df);
                        let demands = cm.fused_lane_demands(&block, &df);
                        assert_eq!(
                            demands.total_cycles().to_bits(),
                            report.cycles.to_bits(),
                            "{} seq={seq} {g:?} db={db}",
                            accel.name
                        );
                        assert_eq!(demands.double_buffered, db);
                        assert!(
                            (demands.logit_compute_cycles + demands.attend_compute_cycles
                                - demands.compute_cycles)
                                .abs()
                                < 1e-9
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pipelined_execution_halves_the_prefetch_window() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let cm = CostModel::new(&accel);
        let inter = cm.fused_lane_demands(&block, &FusedDataflow::new(Granularity::Row(64)));
        let pipe = cm.fused_lane_demands(&block, &FusedDataflow::pipelined(Granularity::Row(64)));
        assert_eq!(inter.offchip_window_penalty, 1.0);
        assert_eq!(pipe.offchip_window_penalty, 2.0);
    }

    #[test]
    fn sequential_demands_cover_all_three_phases() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let cm = CostModel::new(&accel);
        let df = OperatorDataflow::baseline(Stationarity::Weight);
        let d = cm.sequential_lane_demands(&block, &df, &df);
        assert!(d.logit.compute_cycles > 0.0);
        assert_eq!(d.logit.sfu_cycles, 0.0);
        assert!(d.softmax.sfu_cycles > 0.0);
        assert_eq!(d.softmax.compute_cycles, 0.0);
        assert!(d.attend.compute_cycles > 0.0);
        assert!(d.attend.offchip_bytes > 0.0);
    }

    /// The sequential demand totals bound the analytical phase pricing:
    /// re-folding each phase with the model's own combine rule and
    /// summing reproduces the non-overlapped serial composition.
    #[test]
    fn sequential_demands_refold_to_serial_composition() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let opts = ModelOptions {
            overlap_softmax: false,
            ..Default::default()
        };
        let cm = CostModel::with_options(&accel, opts);
        let df = OperatorDataflow::baseline(Stationarity::Weight);
        let d = cm.sequential_lane_demands(&block, &df, &df);
        let refold = |p: &crate::PhaseLaneDemands| -> f64 {
            let unit = p.compute_cycles.max(p.sfu_cycles) + p.compute_cycles.min(p.sfu_cycles);
            let t_on = p.onchip_bytes / d.onchip_bytes_per_cycle;
            let t_off = p.offchip_bytes / d.offchip_bytes_per_cycle;
            unit.max(t_on).max(t_off) + p.warmup_cycles
        };
        let total: f64 = d.phases().iter().map(|p| refold(p)).sum();
        let report = cm.sequential_la_cost(&block, &df, &df);
        let ratio = total / report.cycles;
        assert!(
            (0.999..1.001).contains(&ratio),
            "refold {total} vs report {}",
            report.cycles
        );
    }
}
