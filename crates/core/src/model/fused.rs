//! Fused, interleaved L-A execution — the FLAT dataflow itself (§4).

use crate::footprint::FusedSlices;
use crate::model::compute::{gemm_compute, gemm_onchip_traffic};
use crate::model::l2::{choose_l2_tiling, dram_traffic};
use crate::model::staging::{offchip_elems, Staging};
use crate::model::{CostModel, Traffic};
use crate::{CostReport, FusedDataflow};
use flat_arch::ActivityCounts;
use flat_tensor::{Bytes, Gemm};
use flat_workloads::AttentionBlock;

impl CostModel<'_> {
    /// Cost of the fused L-A operator under a FLAT dataflow.
    ///
    /// Execution follows the §4.3 walk-through: per cross-loop iteration,
    /// stage-L computes one FLAT-tile of logits into the SG, the SFU
    /// softmaxes it in place, stage-A consumes it; the off-chip prefetch
    /// for the next iteration overlaps the *entire* current iteration
    /// (§5.1's interleaved double-buffering advantage).
    ///
    /// # Example
    ///
    /// ```
    /// use flat_arch::Accelerator;
    /// use flat_core::{CostModel, FusedDataflow, Granularity};
    /// use flat_workloads::Model;
    ///
    /// let accel = Accelerator::edge();
    /// let block = Model::bert().block(64, 512);
    /// let cm = CostModel::new(&accel);
    /// let report = cm.fused_la_cost(&block, &FusedDataflow::new(Granularity::Row(64)));
    /// assert!(report.util() > 0.5);
    /// ```
    #[must_use]
    pub fn fused_la_cost(&self, block: &AttentionBlock, df: &FusedDataflow) -> CostReport {
        self.fused_cost_demands(block, df).0
    }

    /// The per-iteration lane demands behind [`CostModel::fused_la_cost`]:
    /// what each hardware lane (PE array, SFU, SG port, L2 link, DRAM
    /// link) must serve per FLAT-tile pass, before the analytical fold.
    /// `demands.total_cycles()` reproduces the priced cycles bit-for-bit;
    /// the `flat-desim` event backend executes the same demands instead
    /// of folding them.
    #[must_use]
    pub fn fused_lane_demands(
        &self,
        block: &AttentionBlock,
        df: &FusedDataflow,
    ) -> crate::FusedLaneDemands {
        self.fused_cost_demands(block, df).1
    }

    fn fused_cost_demands(
        &self,
        block: &AttentionBlock,
        df: &FusedDataflow,
    ) -> (CostReport, crate::FusedLaneDemands) {
        let cfg = *block.config();
        let dtype = cfg.dtype;
        let e = dtype.size_bytes();
        let dk = cfg.dk();
        let s = FusedSlices::new(df.granularity, &cfg);

        // Per-iteration sub-GEMMs: L computes [rows, dk] x [dk, Nkv] per
        // covered (batch, head); A computes [rows, Nkv] x [Nkv, dk].
        let l_sub = Gemm::new(s.groups, s.rows, dk, cfg.seq_kv);
        let a_sub = Gemm::new(s.groups, s.rows, cfg.seq_kv, dk);

        let budget = self.l2_budget_elems(true, dtype);
        let tiling_l = choose_l2_tiling(&l_sub, df.stationarity_l, budget);
        let tiling_a = choose_l2_tiling(&a_sub, df.stationarity_a, budget);
        let ws = Bytes::new(tiling_l.working_set_elems.max(tiling_a.working_set_elems) * e);

        // FLAT-tile footprint. DRAM-facing slices are double-buffered,
        // with one refinement over the flat Table 2 accounting: at row
        // granularity the key/value slices are *reused in place* across
        // every row-group iteration of a head (the next head's prefetch
        // amortizes over ⌈Nq/R⌉ iterations), so they need no second
        // buffer. The intermediate slice never touches DRAM and is always
        // single-buffered (§4.4).
        let dbm = self.db_mult();
        let kv_mult = if df.granularity.reuses_kv_across_iterations(&cfg) {
            1
        } else {
            dbm
        };
        let en = df.enables;
        let demands = [
            (en.intermediate, s.intermediate),
            (en.key, kv_mult * s.key),
            (en.value, kv_mult * s.value),
            (en.query, dbm * s.query),
            (en.output, dbm * s.output),
        ];
        let req_elems: u64 = demands.iter().filter(|(on, _)| *on).map(|(_, d)| d).sum();
        let req = Bytes::new(req_elems * e);

        // Priority allocation (a real mapper pins the cheapest, hottest
        // tensors first): intermediate, then K, V, Q, O. Each tensor gets
        // a resident fraction in the SG and — when the accelerator has a
        // second-level buffer (§3.1 multi-level hierarchy) — an overflow
        // fraction there. L2-resident data never touches DRAM but its
        // per-iteration re-reads ride the (slower) L2 link.
        let mut remaining = self.accel.sg.saturating_sub(ws).as_u64() / e;
        let mut l2_remaining = self.accel.l2_sram.map_or(0, |l2| l2.capacity.as_u64() / e);
        let mut sg_fractions = [0.0f64; 5];
        let mut l2_fractions = [0.0f64; 5];
        for (i, (enabled, demand)) in demands.iter().enumerate() {
            if !enabled {
                continue;
            }
            if *demand == 0 {
                sg_fractions[i] = 1.0;
                continue;
            }
            let got = remaining.min(*demand);
            sg_fractions[i] = got as f64 / *demand as f64;
            remaining -= got;
            let overflow = *demand - got;
            let l2_got = l2_remaining.min(overflow);
            l2_fractions[i] = l2_got as f64 / *demand as f64;
            l2_remaining -= l2_got;
        }
        // Residency for DRAM-avoidance purposes is SG + L2.
        let fractions: [f64; 5] =
            std::array::from_fn(|i| (sg_fractions[i] + l2_fractions[i]).min(1.0));
        let [f_int, f_k, f_v, f_q, f_o] = fractions;

        // Per-iteration traffic over the L2 link: the L2-resident portion
        // of K/V is re-read every iteration; of the logit slice, written
        // and read back around the softmax; Q/O cross it once each.
        let l2_elems_per_iter = l2_fractions[1] * s.key as f64
            + l2_fractions[2] * s.value as f64
            + l2_fractions[0] * s.intermediate as f64 * 4.0
            + l2_fractions[3] * s.query as f64
            + l2_fractions[4] * s.output as f64;

        // --- Off-chip traffic ---
        let iters = s.iterations;
        let dl = dram_traffic(
            &l_sub,
            df.stationarity_l,
            tiling_l.tm,
            tiling_l.tk,
            tiling_l.tn,
        );
        let da = dram_traffic(
            &a_sub,
            df.stationarity_a,
            tiling_a.tm,
            tiling_a.tk,
            tiling_a.tn,
        );
        let q_total = cfg.batch * cfg.heads * cfg.seq_q * dk;
        let kv_total = cfg.batch * cfg.heads * cfg.seq_kv * dk;
        let o_total = q_total;
        let int_total = cfg.logit_elements();

        let pick = |enabled: bool, f: f64| -> Staging {
            if enabled {
                Staging::Staged { fraction: f }
            } else {
                Staging::Streamed
            }
        };
        // A streamed (non-staged) tensor is refetched every iteration that
        // needs it: K and V pay iterations x their per-iteration traffic —
        // staging them is what makes large R profitable (§4.2.1).
        let off_q = offchip_elems(q_total, iters * dl.a, pick(en.query, f_q));
        let off_k = offchip_elems(kv_total, iters * dl.b, pick(en.key, f_k));
        let off_v = offchip_elems(kv_total, iters * da.b, pick(en.value, f_v));
        let off_o = offchip_elems(o_total, iters * da.c, pick(en.output, f_o));
        // The intermediate tensor: with its FLAT-tile enabled and fitting
        // it NEVER crosses the link. A spilled fraction (or a disabled
        // tile) round-trips once — the walk-through (§4.3) streams each
        // completed slice through the SFU, so what leaves the chip is
        // already softmaxed: one write by stage L, one read by stage A.
        let off_int = if en.intermediate {
            (1.0 - f_int.min(1.0)) * 2.0 * int_total as f64
        } else {
            2.0 * int_total as f64
        };
        let off_elems = off_q + off_k + off_v + off_o + off_int;
        let offchip_bytes = off_elems * e as f64;

        // --- On-chip traffic ---
        let on_l = gemm_onchip_traffic(&l_sub, df.stationarity_l, self.accel).total();
        let on_a = gemm_onchip_traffic(&a_sub, df.stationarity_a, self.accel).total();
        let sfu_traffic = 2 * int_total;
        let on_elems = (iters * (on_l + on_a) + sfu_traffic) as f64 + off_elems;
        let onchip_bytes = on_elems * e as f64;

        // --- Compute ---
        let pipelined = df.execution == crate::FusedExecution::Pipelined;
        // Spatial pipelining splits the array between the stages; the L
        // and A sub-GEMMs of one FLAT-tile do identical work, so an even
        // row split is balanced.
        let stage_accel = if pipelined {
            let mut a = self.accel.clone();
            a.pe = flat_arch::PeArray::new((a.pe.rows / 2).max(1), a.pe.cols);
            a
        } else {
            self.accel.clone()
        };
        let cl = gemm_compute(&l_sub, df.stationarity_l, &stage_accel);
        let ca = gemm_compute(&a_sub, df.stationarity_a, &stage_accel);
        let compute_per_iter = if pipelined {
            // Stages overlap across consecutive tiles, but every tile pays
            // the split array's fill AND drain on the critical path (§5.1:
            // "the pipelined array incurs fill and drain latencies").
            cl.steps.max(ca.steps) + stage_accel.noc.tile_switch_overhead(stage_accel.pe)
        } else if self.opts.double_buffered {
            // One exposed fill per stage; drains overlap the next stage's
            // fill under interleaved double buffering.
            cl.steps + ca.steps + 2 * self.accel.noc.fill_latency(self.accel.pe)
        } else {
            cl.steps
                + ca.steps
                + (cl.switches + ca.switches) * self.accel.noc.tile_switch_overhead(self.accel.pe)
        } as f64;
        // Stage-L's share of the per-iteration compute (for the demand
        // decomposition; the analytical fold only needs the sum).
        let logit_compute = if pipelined {
            compute_per_iter / 2.0
        } else if self.opts.double_buffered {
            (cl.steps + self.accel.noc.fill_latency(self.accel.pe)) as f64
        } else {
            (cl.steps + cl.switches * self.accel.noc.tile_switch_overhead(self.accel.pe)) as f64
        }
        .min(compute_per_iter);
        // The SFU is its own unit: it softmaxes FLAT-tile i while the PE
        // array runs L of tile i+1 (no dependency between them), so it
        // only binds when slower than the array.
        let sfu_per_iter = self.sfu_cycles(s.intermediate) as f64;

        // --- Per-iteration phase combination ---
        // Interleaved double buffering hides the next tile's fetch behind
        // BOTH stages (§5.1, feature 2); spatial pipelining only has one
        // stage's duration to hide it in, so its effective off-chip
        // window halves.
        let it = iters as f64;
        let off_window_penalty = if pipelined { 2.0 } else { 1.0 };
        // The L2 link, when present, is one more shared resource the
        // iteration cannot outrun.
        let l2_cycles_per_iter = self.accel.l2_sram.map_or(0.0, |l2| {
            l2_elems_per_iter * e as f64 / l2.bytes_per_cycle(self.accel.clock_hz)
        });
        let warmup_bytes = (dbm * (s.query + s.key + s.value) * e) as f64;
        let warmup = warmup_bytes.min(offchip_bytes) / self.accel.offchip_bytes_per_cycle();
        // The fold itself lives on the demand struct so the event-driven
        // backend executes exactly what the closed form prices.
        let demands = crate::FusedLaneDemands {
            iterations: iters,
            compute_cycles: compute_per_iter,
            logit_compute_cycles: logit_compute,
            attend_compute_cycles: compute_per_iter - logit_compute,
            sfu_cycles: sfu_per_iter,
            onchip_bytes: onchip_bytes / it,
            offchip_bytes: offchip_bytes / it,
            offchip_window_penalty: off_window_penalty,
            l2_cycles: l2_cycles_per_iter,
            warmup_cycles: warmup,
            onchip_bytes_per_cycle: self.accel.onchip_bytes_per_cycle(),
            offchip_bytes_per_cycle: self.accel.offchip_bytes_per_cycle(),
            double_buffered: self.opts.double_buffered,
        };
        let cycles = demands.total_cycles();

        // Useful MACs are the exact algorithmic count; a ragged tail tile
        // (rows not dividing Nq, heads not dividing H) still occupies a
        // full tile pass in the cycle estimate above, but its idle lanes
        // do no useful (or energy-costing) work.
        let macs = 2 * cfg.batch * cfg.seq_q * cfg.seq_kv * cfg.hidden;
        debug_assert!(iters * (cl.macs + ca.macs) >= macs);
        // L2 accesses are charged at twice the SG rate by folding 2x their
        // element count into the SG counter (the table has no separate
        // L2 entry; the 2x ratio matches a larger, slower SRAM).
        let l2_total_elems = (l2_elems_per_iter * it) as u64;
        let activity = ActivityCounts {
            macs,
            sl_accesses: 2 * macs,
            sg_accesses: on_elems as u64 + 2 * l2_total_elems,
            dram_accesses: off_elems as u64,
            sfu_elements: int_total,
        };
        let report = CostReport {
            cycles,
            ideal_cycles: macs as f64 / self.accel.peak_macs_per_cycle() as f64,
            traffic: Traffic {
                onchip: Bytes::new(onchip_bytes as u64),
                offchip: Bytes::new(offchip_bytes as u64),
            },
            activity,
            footprint: ws + req,
            energy: self.energy_table(dtype).energy(&activity),
        };
        (report, demands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Granularity, OperatorDataflow, Stationarity};
    use flat_arch::Accelerator;
    use flat_workloads::Model;

    fn fused(accel: &Accelerator, seq: u64, g: Granularity) -> CostReport {
        let block = Model::bert().block(64, seq);
        CostModel::new(accel).fused_la_cost(&block, &FusedDataflow::new(g))
    }

    /// The headline: on the edge platform FLAT at row granularity fits the
    /// 512 KiB SG and reaches high utilization where the baseline stalls.
    #[test]
    fn flat_r_beats_sequential_base_on_edge() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let cm = CostModel::new(&accel);
        let base = cm.sequential_la_cost(
            &block,
            &OperatorDataflow::baseline(Stationarity::Weight),
            &OperatorDataflow::baseline(Stationarity::Weight),
        );
        let flat = cm.fused_la_cost(&block, &FusedDataflow::new(Granularity::Row(64)));
        assert!(
            flat.util() > base.util(),
            "{} <= {}",
            flat.util(),
            base.util()
        );
        assert!(flat.traffic.offchip < base.traffic.offchip);
    }

    /// FLAT-R keeps high utilization at sequence lengths where the buffer
    /// still holds its O(N) working set, and degrades gracefully (not
    /// catastrophically) beyond — while coarse granularities collapse.
    /// Figure 12(b) documents the same knee: even ATTACC needs more
    /// bandwidth past ~8K on the 32 MiB cloud part.
    #[test]
    fn row_granularity_scales_to_long_sequences() {
        let accel = Accelerator::cloud();
        let mid = fused(&accel, 4096, Granularity::Row(1024));
        assert!(mid.util() > 0.85, "FLAT-R util at 4K = {}", mid.util());

        let long = 65_536;
        let r = fused(&accel, long, Granularity::Row(256));
        let m = fused(&accel, long, Granularity::BatchMultiHead);
        assert!(r.util() > m.util(), "R {} <= M {}", r.util(), m.util());
        // And it still crushes the sequential baseline at the same point.
        let block = Model::bert().block(64, long);
        let base = CostModel::new(&accel).sequential_la_cost(
            &block,
            &OperatorDataflow::baseline(Stationarity::Weight),
            &OperatorDataflow::baseline(Stationarity::Weight),
        );
        assert!(
            r.util() > 2.0 * base.util(),
            "R {} vs base {}",
            r.util(),
            base.util()
        );
    }

    /// The fused intermediate tensor never crosses the off-chip link when
    /// its FLAT-tile fits.
    #[test]
    fn intermediate_traffic_eliminated() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let cfg = *block.config();
        let cm = CostModel::new(&accel);
        let enabled = cm.fused_la_cost(&block, &FusedDataflow::new(Granularity::Row(32)));
        let mut df = FusedDataflow::new(Granularity::Row(32));
        df.enables.intermediate = false;
        let disabled = cm.fused_la_cost(&block, &df);
        let delta = disabled.traffic.offchip.as_f64() - enabled.traffic.offchip.as_f64();
        // Disabling the intermediate tile adds a DRAM round trip (write
        // softmaxed + read back) of the whole logit tensor.
        let logit_bytes = cfg.logit_size().as_f64();
        assert!(
            delta > 1.8 * logit_bytes,
            "delta {delta} vs logit {logit_bytes}"
        );
    }

    /// Larger R means fewer iterations and less per-iteration overhead —
    /// until the footprint stops fitting.
    #[test]
    fn footprint_grows_with_r() {
        let accel = Accelerator::edge();
        let r16 = fused(&accel, 512, Granularity::Row(16));
        let r256 = fused(&accel, 512, Granularity::Row(256));
        assert!(r16.footprint < r256.footprint);
    }

    /// Key/value FLAT-tiles are what make row slicing cheap: disabling
    /// them forces a K refetch per row group.
    #[test]
    fn disabling_key_tile_costs_refetches() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let cm = CostModel::new(&accel);
        let with = cm.fused_la_cost(&block, &FusedDataflow::new(Granularity::Row(16)));
        let mut df = FusedDataflow::new(Granularity::Row(16));
        df.enables.key = false;
        df.enables.value = false;
        let without = cm.fused_la_cost(&block, &df);
        assert!(without.traffic.offchip > with.traffic.offchip);
    }

    /// §5.1's interleaved-vs-pipelined argument, quantified: the spatially
    /// pipelined fusion pays per-tile fill/drain on a split array and a
    /// halved prefetch window, so interleaving wins.
    #[test]
    fn interleaved_beats_pipelined() {
        for (accel, seq, r) in [
            (Accelerator::edge(), 4096u64, 64u64),
            (Accelerator::cloud(), 16_384, 1024),
        ] {
            let block = Model::bert().block(64, seq);
            let cm = CostModel::new(&accel);
            let inter = cm.fused_la_cost(&block, &FusedDataflow::new(Granularity::Row(r)));
            let pipe = cm.fused_la_cost(&block, &FusedDataflow::pipelined(Granularity::Row(r)));
            assert!(
                inter.cycles <= pipe.cycles,
                "{}: interleaved {} > pipelined {}",
                accel.name,
                inter.cycles,
                pipe.cycles
            );
        }
    }

    /// §4.2.2's composite FLAT-tile: on the wide cloud array, packing
    /// several heads into one slice recovers the spatial parallelism a
    /// small per-head row count cannot provide alone.
    #[test]
    fn composite_tiles_help_wide_arrays() {
        let accel = Accelerator::cloud();
        let block = Model::bert().block(64, 4096);
        let cm = CostModel::new(&accel);
        // R=16 alone: a 16-row slice underfills 256 array rows.
        let thin = cm.fused_la_cost(&block, &FusedDataflow::new(Granularity::Row(16)));
        // Same rows, 4 heads per slice: 4x the spatial work per iteration.
        let packed = cm.fused_la_cost(
            &block,
            &FusedDataflow::new(Granularity::Composite {
                batch_t: 1,
                head_t: 4,
                rows: 16,
            }),
        );
        assert!(
            packed.util() > thin.util(),
            "packed {} <= thin {}",
            packed.util(),
            thin.util()
        );
    }

    /// §3.1's multi-level hierarchy: a second-level buffer extends the
    /// sequence-length reach of a small SG — overflow staging never
    /// beats first-level residency, but it crushes spilling to DRAM.
    #[test]
    fn l2_sram_extends_reach() {
        let stock = Accelerator::edge();
        let mut two_level = Accelerator::edge();
        two_level.l2_sram = Some(flat_arch::L2Sram::new(
            flat_tensor::Bytes::from_mib(8),
            200.0e9,
        ));
        let big_sg = Accelerator::edge().with_sg(flat_tensor::Bytes::from_mib(9));

        let block = Model::bert().block(64, 16_384);
        let df = FusedDataflow::new(Granularity::Row(64));
        let u = |a: &Accelerator| CostModel::new(a).fused_la_cost(&block, &df).util();

        let (u1, u2, u3) = (u(&stock), u(&two_level), u(&big_sg));
        assert!(u2 > u1 + 0.1, "L2 must help: {u2} vs {u1}");
        assert!(u2 <= u3 + 1e-9, "L2 never beats first-level residency");
        assert!(u2 > 0.9 * u3, "and recovers most of it: {u2} vs {u3}");
    }

    /// A starved L2 link becomes the binding resource rather than a free
    /// capacity tier.
    #[test]
    fn slow_l2_link_binds() {
        let mut fast = Accelerator::edge();
        fast.l2_sram = Some(flat_arch::L2Sram::new(
            flat_tensor::Bytes::from_mib(8),
            400.0e9,
        ));
        let mut slow = fast.clone();
        slow.l2_sram = Some(flat_arch::L2Sram::new(
            flat_tensor::Bytes::from_mib(8),
            10.0e9,
        ));
        let block = Model::bert().block(64, 16_384);
        let df = FusedDataflow::new(Granularity::Row(64));
        let fast_u = CostModel::new(&fast).fused_la_cost(&block, &df).util();
        let slow_u = CostModel::new(&slow).fused_la_cost(&block, &df).util();
        assert!(fast_u > slow_u, "{fast_u} <= {slow_u}");
    }

    #[test]
    fn ideal_cycles_match_macs() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let cfg = *block.config();
        let r =
            CostModel::new(&accel).fused_la_cost(&block, &FusedDataflow::new(Granularity::Head));
        let total_macs = 2 * cfg.batch * cfg.seq_q * cfg.seq_kv * cfg.hidden;
        assert_eq!(r.activity.macs, total_macs);
    }
}
