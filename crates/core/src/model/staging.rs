//! Per-tensor staging states and the partial-fit traffic law.

use serde::{Deserialize, Serialize};

/// How a tensor reaches (or avoids) the off-chip link during one operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Staging {
    /// Already resident in the SG from a neighboring operator (e.g. the
    /// logit tensor between a fully-staged sequential L and A): zero DRAM
    /// traffic.
    Resident,
    /// L3-/FLAT-staged with `fraction` of the staged working set actually
    /// fitting in the SG (1.0 = fits entirely).
    Staged {
        /// Resident fraction of the staged slices, in `[0, 1]`.
        fraction: f64,
    },
    /// Baseline streaming: every L2 tile pass refetches from DRAM.
    Streamed,
}

impl Staging {
    /// A fully-fitting staged tensor.
    #[must_use]
    pub const fn staged() -> Self {
        Staging::Staged { fraction: 1.0 }
    }
}

/// Off-chip traffic (elements) of one tensor under its staging state.
///
/// * `Resident` — never crosses the link.
/// * `Staged { 1.0 }` — compulsory traffic only: each element once.
/// * `Staged { f < 1 }` — the paper's partial-fit rule (§6.2.1): the
///   resident fraction moves once *plus one extra pass* (the staging
///   attempt that gets evicted), the remainder streams at the baseline
///   multiplier: `f·2·size + (1−f)·streamed`. At `f → 0` this degrades to
///   `Base`; just below the fit point it costs ~2× compulsory — which is
///   exactly why `Base-M` *underperforms* `Base` until the buffer is
///   adequate, then leaps ahead.
/// * `Streamed` — the full L2 refetch traffic.
#[must_use]
pub fn offchip_elems(size: u64, streamed: u64, staging: Staging) -> f64 {
    // A streamed path never moves less than compulsory traffic.
    let streamed = streamed.max(size) as f64;
    match staging {
        Staging::Resident => 0.0,
        Staging::Staged { fraction } => {
            let f = fraction.clamp(0.0, 1.0);
            if f >= 1.0 {
                size as f64
            } else {
                f * 2.0 * size as f64 + (1.0 - f) * streamed
            }
        }
        Staging::Streamed => streamed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_is_free() {
        assert_eq!(offchip_elems(1000, 5000, Staging::Resident), 0.0);
    }

    #[test]
    fn fully_staged_is_compulsory() {
        assert_eq!(offchip_elems(1000, 5000, Staging::staged()), 1000.0);
    }

    #[test]
    fn streamed_pays_the_multiplier() {
        assert_eq!(offchip_elems(1000, 5000, Staging::Streamed), 5000.0);
    }

    #[test]
    fn streamed_never_below_compulsory() {
        // Degenerate multiplier inputs are clamped up to size.
        assert_eq!(offchip_elems(1000, 1, Staging::Streamed), 1000.0);
    }

    #[test]
    fn partial_fit_interpolates_with_extra_pass() {
        let at = |f: f64| offchip_elems(1000, 8000, Staging::Staged { fraction: f });
        assert_eq!(at(0.0), 8000.0, "no residency = Base");
        assert_eq!(at(1.0), 1000.0, "fits = compulsory");
        // Just below fitting: ~2x compulsory (one extra pass), far better
        // than Base but worse than fitting.
        let near = at(0.999);
        assert!(near > 1900.0 && near < 2100.0, "{near}");
        // The penalty makes partial staging worse than Base when the
        // streamed multiplier is small.
        let low_mult = offchip_elems(1000, 1000, Staging::Staged { fraction: 0.5 });
        assert!(low_mult > 1000.0);
    }

    #[test]
    fn fraction_is_clamped() {
        assert_eq!(
            offchip_elems(10, 10, Staging::Staged { fraction: 7.0 }),
            10.0
        );
        assert_eq!(
            offchip_elems(10, 50, Staging::Staged { fraction: -3.0 }),
            50.0
        );
    }
}
