//! Cost assembly for one (non-fused) operator.

use crate::model::compute::{gemm_compute, gemm_onchip_traffic};
use crate::model::l2::{choose_l2_tiling, dram_traffic, L2Tiling};
use crate::model::staging::{offchip_elems, Staging};
use crate::model::{CostModel, Traffic};
use crate::{CostReport, Granularity, OperatorDataflow, Stationarity};
use flat_arch::ActivityCounts;
use flat_tensor::{ceil_div, Bytes, DataType, Gemm};
use flat_workloads::{AttentionConfig, Operator};

/// Staging states of a GEMM's three tensors.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TensorStates {
    pub a: Staging,
    pub b: Staging,
    pub c: Staging,
}

impl TensorStates {
    pub(crate) const STREAMED: TensorStates = TensorStates {
        a: Staging::Streamed,
        b: Staging::Streamed,
        c: Staging::Streamed,
    };
}

/// L3-slice sizes (elements) of a single operator at a granularity.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpSlices {
    pub a: u64,
    pub b: u64,
    pub c: u64,
}

impl OpSlices {
    /// Slices the GEMM's batch dimension by the granularity's iteration
    /// count. Projections (batch = B) see H-Gran degrade to B-Gran; a
    /// sequential dataflow cannot use row slices, so `Row` is clamped to
    /// head granularity here.
    pub(crate) fn new(g: Granularity, gemm: &Gemm, cfg: &AttentionConfig) -> Self {
        let iterations = match g {
            Granularity::BatchMultiHead => 1,
            Granularity::Batch => cfg.batch.min(gemm.batch),
            Granularity::Head | Granularity::Row(_) | Granularity::Composite { .. } => {
                (cfg.batch * cfg.heads).min(gemm.batch)
            }
        };
        let gb = ceil_div(gemm.batch, iterations);
        OpSlices {
            a: gb * gemm.m * gemm.k,
            b: if gemm.weight_shared {
                gemm.k * gemm.n
            } else {
                gb * gemm.k * gemm.n
            },
            c: gb * gemm.m * gemm.n,
        }
    }
}

impl CostModel<'_> {
    /// SG budget (elements) the L2 tile chooser may claim: the whole
    /// scratchpad when nothing is staged, half when an L3/FLAT tier shares
    /// it.
    pub(crate) fn l2_budget_elems(&self, staging_present: bool, dtype: DataType) -> u64 {
        let total = self.accel.sg.as_u64() / dtype.size_bytes();
        if staging_present {
            total / 2
        } else {
            total
        }
    }

    /// Double-buffer multiplier for DRAM-facing staged slices.
    pub(crate) fn db_mult(&self) -> u64 {
        if self.opts.double_buffered {
            2
        } else {
            1
        }
    }

    /// Combines compute and transfer demands into phase cycles. With
    /// double buffering the three streams overlap (the phase takes the
    /// slowest); without it they serialize.
    pub(crate) fn combine_cycles(
        &self,
        compute_cycles: f64,
        onchip_bytes: f64,
        offchip_bytes: f64,
    ) -> f64 {
        let t_on = onchip_bytes / self.accel.onchip_bytes_per_cycle();
        let t_off = offchip_bytes / self.accel.offchip_bytes_per_cycle();
        if self.opts.double_buffered {
            compute_cycles.max(t_on).max(t_off)
        } else {
            compute_cycles + t_on + t_off
        }
    }

    /// Full cost of one GEMM phase given resolved staging states.
    ///
    /// `staging_footprint` is the SG demand of this op's staged slices
    /// (plus any tensors the caller is keeping resident on its behalf);
    /// `tiling` is the L2 tiling the streamed-traffic model uses.
    pub(crate) fn gemm_phase(
        &self,
        gemm: &Gemm,
        stat: Stationarity,
        states: TensorStates,
        staging_footprint: Bytes,
        tiling: L2Tiling,
        dtype: DataType,
    ) -> CostReport {
        self.gemm_phase_demands(gemm, stat, states, staging_footprint, tiling, dtype)
            .0
    }

    /// [`gemm_phase`](Self::gemm_phase) plus the lane-demand
    /// decomposition its cycle count folds: what the PE array, SG port,
    /// and DRAM link each serve over the whole phase.
    pub(crate) fn gemm_phase_demands(
        &self,
        gemm: &Gemm,
        stat: Stationarity,
        states: TensorStates,
        staging_footprint: Bytes,
        tiling: L2Tiling,
        dtype: DataType,
    ) -> (CostReport, crate::PhaseLaneDemands) {
        let e = dtype.size_bytes();
        let streamed = dram_traffic(gemm, stat, tiling.tm, tiling.tk, tiling.tn);

        let off_a = offchip_elems(gemm.a_elements(), streamed.a, states.a);
        let off_b = offchip_elems(gemm.b_elements(), streamed.b, states.b);
        let off_c = offchip_elems(gemm.c_elements(), streamed.c, states.c);
        let off_elems = off_a + off_b + off_c;
        let offchip_bytes = off_elems * e as f64;

        // Everything arriving from DRAM passes through the SG once more.
        let on = gemm_onchip_traffic(gemm, stat, self.accel);
        let on_elems = on.total() as f64 + off_elems;
        let onchip_bytes = on_elems * e as f64;

        let comp = gemm_compute(gemm, stat, self.accel);
        let compute_cycles = if self.opts.double_buffered {
            comp.cycles_double_buffered(self.accel, 1)
        } else {
            comp.cycles_unbuffered(self.accel)
        } as f64;

        // Cold-start: the first tile's operands cannot be overlapped.
        let first_tile_bytes = ((tiling.tm * tiling.tk + tiling.tk * tiling.tn) * e) as f64;
        let warmup = first_tile_bytes.min(offchip_bytes) / self.accel.offchip_bytes_per_cycle();

        let cycles = self.combine_cycles(compute_cycles, onchip_bytes, offchip_bytes) + warmup;

        let activity = ActivityCounts {
            macs: comp.macs,
            sl_accesses: 2 * comp.macs,
            sg_accesses: on_elems as u64,
            dram_accesses: off_elems as u64,
            sfu_elements: 0,
        };
        let report = CostReport {
            cycles,
            ideal_cycles: comp.ideal_cycles(self.accel),
            traffic: Traffic {
                onchip: Bytes::new(onchip_bytes as u64),
                offchip: Bytes::new(offchip_bytes as u64),
            },
            activity,
            footprint: Bytes::new(tiling.working_set_elems * e) + staging_footprint,
            energy: self.energy_table(dtype).energy(&activity),
        };
        let demands = crate::PhaseLaneDemands {
            label: "gemm",
            compute_cycles,
            sfu_cycles: 0.0,
            onchip_bytes,
            offchip_bytes,
            warmup_cycles: warmup,
        };
        (report, demands)
    }

    /// Cost of one standalone operator under its dataflow.
    ///
    /// # Example
    ///
    /// ```
    /// use flat_arch::Accelerator;
    /// use flat_core::{CostModel, OperatorDataflow, Stationarity};
    /// use flat_workloads::{Model, OpKind, Operator};
    ///
    /// let accel = Accelerator::edge();
    /// let cm = CostModel::new(&accel);
    /// let block = Model::bert().block(64, 512);
    /// let cfg = *block.config();
    /// let q = block.operator(OpKind::Query);
    /// let report = cm.operator_cost(q, &OperatorDataflow::baseline(Stationarity::Weight), &cfg);
    /// assert!(report.util() > 0.0 && report.util() <= 1.0);
    /// ```
    #[must_use]
    pub fn operator_cost(
        &self,
        op: &Operator,
        df: &OperatorDataflow,
        cfg: &AttentionConfig,
    ) -> CostReport {
        let dtype = cfg.dtype;
        let e = dtype.size_bytes();
        let gemm = op.gemm;
        match df.l3 {
            None => {
                let budget = self.l2_budget_elems(false, dtype);
                let tiling = choose_l2_tiling(&gemm, df.stationarity, budget);
                self.gemm_phase(
                    &gemm,
                    df.stationarity,
                    TensorStates::STREAMED,
                    Bytes::ZERO,
                    tiling,
                    dtype,
                )
            }
            Some(l3) => {
                let budget = self.l2_budget_elems(true, dtype);
                let tiling = choose_l2_tiling(&gemm, df.stationarity, budget);
                let slices = OpSlices::new(l3.granularity, &gemm, cfg);
                let dbm = self.db_mult();
                let mut req_elems = 0u64;
                if l3.enables.input_a {
                    req_elems += dbm * slices.a;
                }
                if l3.enables.input_b {
                    req_elems += dbm * slices.b;
                }
                if l3.enables.output {
                    req_elems += dbm * slices.c;
                }
                let req = Bytes::new(req_elems * e);
                let ws = Bytes::new(tiling.working_set_elems * e);
                let avail = self.accel.sg.saturating_sub(ws);
                let f = if req.is_zero() {
                    1.0
                } else {
                    (avail.as_f64() / req.as_f64()).min(1.0)
                };
                let pick = |enabled: bool| -> Staging {
                    if enabled {
                        Staging::Staged { fraction: f }
                    } else {
                        Staging::Streamed
                    }
                };
                let states = TensorStates {
                    a: pick(l3.enables.input_a),
                    b: pick(l3.enables.input_b),
                    c: pick(l3.enables.output),
                };
                self.gemm_phase(&gemm, df.stationarity, states, req, tiling, dtype)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Granularity;
    use flat_arch::Accelerator;
    use flat_workloads::{Model, OpKind};

    fn setup() -> (Accelerator, flat_workloads::AttentionBlock) {
        (Accelerator::edge(), Model::bert().block(64, 512))
    }

    #[test]
    fn op_slices_cover_whole_tensors_at_m_gran() {
        let block = Model::bert().block(64, 512);
        let cfg = *block.config();
        let l = block.operator(OpKind::Logit).gemm;
        let s = OpSlices::new(Granularity::BatchMultiHead, &l, &cfg);
        assert_eq!(s.a, l.a_elements());
        assert_eq!(s.c, l.c_elements());
    }

    #[test]
    fn op_slices_shrink_with_finer_granularity() {
        let block = Model::bert().block(64, 512);
        let cfg = *block.config();
        let l = block.operator(OpKind::Logit).gemm;
        let m = OpSlices::new(Granularity::BatchMultiHead, &l, &cfg);
        let b = OpSlices::new(Granularity::Batch, &l, &cfg);
        let h = OpSlices::new(Granularity::Head, &l, &cfg);
        assert!(m.c > b.c);
        assert!(b.c > h.c);
        assert_eq!(h.c, 512 * 512, "one head's logit slice");
    }

    #[test]
    fn projection_cost_is_reasonable_on_edge() {
        let (accel, block) = setup();
        let cm = CostModel::new(&accel);
        let cfg = *block.config();
        let q = block.operator(OpKind::Query);
        let r = cm.operator_cost(q, &OperatorDataflow::baseline(Stationarity::Weight), &cfg);
        // A batched projection has plenty of weight reuse: util well above
        // the memory-bound floor.
        assert!(r.util() > 0.3, "util = {}", r.util());
        assert!(r.traffic.offchip >= q.gemm.b_size(cfg.dtype));
    }

    #[test]
    fn staging_reduces_offchip_traffic_when_it_fits() {
        let (accel, block) = setup();
        // Give the edge platform a huge SG so staging definitely fits.
        let big = accel.with_sg(Bytes::from_gib(4));
        let cm = CostModel::new(&big);
        let cfg = *block.config();
        let logit = block.operator(OpKind::Logit);
        let base = cm.operator_cost(
            logit,
            &OperatorDataflow::baseline(Stationarity::Weight),
            &cfg,
        );
        let staged = cm.operator_cost(
            logit,
            &OperatorDataflow::staged(Stationarity::Weight, Granularity::Head),
            &cfg,
        );
        assert!(staged.traffic.offchip <= base.traffic.offchip);
    }

    #[test]
    fn insufficient_buffer_makes_staging_counterproductive() {
        let (accel, block) = setup();
        // Tiny SG: staging attempts cost the extra pass.
        let tiny = accel.with_sg(Bytes::from_kib(24));
        let cm = CostModel::new(&tiny);
        let cfg = *block.config();
        let logit = block.operator(OpKind::Logit);
        let base = cm.operator_cost(
            logit,
            &OperatorDataflow::baseline(Stationarity::Weight),
            &cfg,
        );
        let staged_m = cm.operator_cost(
            logit,
            &OperatorDataflow::staged(Stationarity::Weight, Granularity::BatchMultiHead),
            &cfg,
        );
        assert!(
            staged_m.traffic.offchip >= base.traffic.offchip,
            "staging without capacity must not beat streaming: {} vs {}",
            staged_m.traffic.offchip,
            base.traffic.offchip
        );
    }

    #[test]
    fn double_buffering_improves_runtime() {
        let (accel, block) = setup();
        let cfg = *block.config();
        let q = block.operator(OpKind::Query);
        let df = OperatorDataflow::baseline(Stationarity::Weight);
        let with = CostModel::new(&accel).operator_cost(q, &df, &cfg);
        let without = CostModel::with_options(
            &accel,
            crate::ModelOptions {
                double_buffered: false,
                ..Default::default()
            },
        )
        .operator_cost(q, &df, &cfg);
        assert!(with.cycles < without.cycles);
    }

    #[test]
    fn util_never_exceeds_one() {
        let (accel, block) = setup();
        let cm = CostModel::new(&accel);
        let cfg = *block.config();
        for op in block.operators() {
            for stat in Stationarity::all() {
                let r = cm.operator_cost(op, &OperatorDataflow::baseline(stat), &cfg);
                assert!(
                    r.util() > 0.0 && r.util() <= 1.0,
                    "{}: {}",
                    op.kind,
                    r.util()
                );
            }
        }
    }
}
