//! Sequential L → softmax → A execution (all the `Base*` dataflows).

use crate::model::l2::choose_l2_tiling;
use crate::model::single::{OpSlices, TensorStates};
use crate::model::staging::Staging;
use crate::model::{CostModel, Traffic};
use crate::{CostReport, OperatorDataflow};
use flat_arch::ActivityCounts;
use flat_tensor::Bytes;
use flat_workloads::{AttentionBlock, OpKind};

impl CostModel<'_> {
    /// Cost of the softmax pass over `elements` logits. When the logit
    /// tensor is SG-resident the SFU reads and writes on-chip; otherwise
    /// both passes cross the off-chip link.
    pub(crate) fn softmax_phase(
        &self,
        elements: u64,
        resident: bool,
        dtype: flat_tensor::DataType,
    ) -> CostReport {
        let e = dtype.size_bytes();
        let sfu_cycles = self.sfu_cycles(elements) as f64;
        let moved = Bytes::new(2 * elements * e);
        let (onchip, offchip) = if resident {
            (moved, Bytes::ZERO)
        } else {
            // DRAM round trip, streamed through the SFU's row buffer.
            (moved, moved)
        };
        let cycles = self.combine_cycles(sfu_cycles, onchip.as_f64(), offchip.as_f64());
        let activity = ActivityCounts {
            macs: 0,
            sl_accesses: 0,
            sg_accesses: onchip.as_u64() / e,
            dram_accesses: offchip.as_u64() / e,
            sfu_elements: elements,
        };
        CostReport {
            cycles,
            ideal_cycles: 0.0,
            traffic: Traffic { onchip, offchip },
            activity,
            footprint: Bytes::ZERO,
            energy: self.energy_table(dtype).energy(&activity),
        }
    }

    /// Cost of the sequential Logit → softmax → Attend execution.
    ///
    /// The intermediate tensor is SG-resident between the two operators
    /// only when *all* of it fits alongside the working sets — a
    /// sequential dataflow finishes every L slice before A starts, so
    /// partial slices cannot be retained (this is the structural limit
    /// FLAT removes).
    #[must_use]
    pub fn sequential_la_cost(
        &self,
        block: &AttentionBlock,
        logit_df: &OperatorDataflow,
        attend_df: &OperatorDataflow,
    ) -> CostReport {
        self.sequential_cost_demands(block, logit_df, attend_df).0
    }

    /// The per-phase lane demands behind
    /// [`CostModel::sequential_la_cost`]: what the PE array, SFU, SG
    /// port, and DRAM link each serve in the Logit, softmax, and Attend
    /// phases, before the analytical fold. The `flat-desim` event
    /// backend executes these instead of folding them.
    #[must_use]
    pub fn sequential_lane_demands(
        &self,
        block: &AttentionBlock,
        logit_df: &OperatorDataflow,
        attend_df: &OperatorDataflow,
    ) -> crate::SequentialLaneDemands {
        self.sequential_cost_demands(block, logit_df, attend_df).1
    }

    fn sequential_cost_demands(
        &self,
        block: &AttentionBlock,
        logit_df: &OperatorDataflow,
        attend_df: &OperatorDataflow,
    ) -> (CostReport, crate::SequentialLaneDemands) {
        let cfg = *block.config();
        let dtype = cfg.dtype;
        let e = dtype.size_bytes();
        let l_gemm = block.operator(OpKind::Logit).gemm;
        let a_gemm = block.operator(OpKind::Attend).gemm;
        let staging_present = logit_df.l3.is_some() || attend_df.l3.is_some();
        let budget = self.l2_budget_elems(staging_present, dtype);
        let tiling_l = choose_l2_tiling(&l_gemm, logit_df.stationarity, budget);
        let tiling_a = choose_l2_tiling(&a_gemm, attend_df.stationarity, budget);
        let ws = Bytes::new(tiling_l.working_set_elems.max(tiling_a.working_set_elems) * e);

        let dbm = self.db_mult();
        let full_logit = Bytes::new(l_gemm.c_elements() * e);

        // Input-staging demand of each phase.
        let l_slices = logit_df
            .l3
            .map(|l3| OpSlices::new(l3.granularity, &l_gemm, &cfg));
        let a_slices = attend_df
            .l3
            .map(|l3| OpSlices::new(l3.granularity, &a_gemm, &cfg));
        let l_input_req = logit_df.l3.map_or(0, |l3| {
            let s = l_slices.expect("slices follow l3");
            (l3.enables.input_a as u64 * s.a + l3.enables.input_b as u64 * s.b) * dbm
        });
        let a_side_req = attend_df.l3.map_or(0, |l3| {
            let s = a_slices.expect("slices follow l3");
            (l3.enables.input_b as u64 * s.b + l3.enables.output as u64 * s.c) * dbm
        });
        let l_input_req = Bytes::new(l_input_req * e);
        let a_side_req = Bytes::new(a_side_req * e);

        // Residency test: the whole logit tensor plus the busier phase's
        // staging must fit next to the L2 working set.
        let wants_residency = logit_df.l3.is_some_and(|l3| l3.enables.output)
            && attend_df.l3.is_some_and(|l3| l3.enables.input_a);
        let resident =
            wants_residency && ws + l_input_req.max(a_side_req) + full_logit <= self.accel.sg;

        let frac = |req: Bytes, extra: Bytes| -> f64 {
            if req.is_zero() {
                return 1.0;
            }
            let avail = self.accel.sg.saturating_sub(ws + extra);
            (avail.as_f64() / req.as_f64()).min(1.0)
        };

        // --- Logit phase ---
        let logit_resident_charge = if resident { full_logit } else { Bytes::ZERO };
        let f_l = frac(l_input_req, logit_resident_charge);
        let staged = |on: bool, f: f64| -> Staging {
            if on {
                Staging::Staged { fraction: f }
            } else {
                Staging::Streamed
            }
        };
        let l_states = TensorStates {
            a: staged(logit_df.l3.is_some_and(|l3| l3.enables.input_a), f_l),
            b: staged(logit_df.l3.is_some_and(|l3| l3.enables.input_b), f_l),
            c: if resident {
                Staging::Resident
            } else {
                staged(logit_df.l3.is_some_and(|l3| l3.enables.output), f_l)
            },
        };
        let (l_report, mut l_demands) = self.gemm_phase_demands(
            &l_gemm,
            logit_df.stationarity,
            l_states,
            l_input_req + logit_resident_charge,
            tiling_l,
            dtype,
        );
        l_demands.label = "logit";

        // --- Softmax phase ---
        let softmax = self.softmax_phase(l_gemm.c_elements(), resident, dtype);
        let sm_demands = crate::PhaseLaneDemands {
            label: "softmax",
            compute_cycles: 0.0,
            sfu_cycles: self.sfu_cycles(l_gemm.c_elements()) as f64,
            onchip_bytes: softmax.traffic.onchip.as_f64(),
            offchip_bytes: softmax.traffic.offchip.as_f64(),
            warmup_cycles: 0.0,
        };

        // --- Attend phase ---
        let f_a = frac(a_side_req, logit_resident_charge);
        let a_states = TensorStates {
            a: if resident {
                Staging::Resident
            } else {
                staged(attend_df.l3.is_some_and(|l3| l3.enables.input_a), f_a)
            },
            b: staged(attend_df.l3.is_some_and(|l3| l3.enables.input_b), f_a),
            c: staged(attend_df.l3.is_some_and(|l3| l3.enables.output), f_a),
        };
        let (a_report, mut a_demands) = self.gemm_phase_demands(
            &a_gemm,
            attend_df.stationarity,
            a_states,
            a_side_req + logit_resident_charge,
            tiling_a,
            dtype,
        );
        a_demands.label = "attend";
        let demands = crate::SequentialLaneDemands {
            logit: l_demands,
            softmax: sm_demands,
            attend: a_demands,
            overlap_softmax: self.opts.overlap_softmax,
            double_buffered: self.opts.double_buffered,
            onchip_bytes_per_cycle: self.accel.onchip_bytes_per_cycle(),
            offchip_bytes_per_cycle: self.accel.offchip_bytes_per_cycle(),
        };

        // Softmax is a row operation and A consumes rows in order, so even
        // a strictly sequential baseline may pipeline the softmax pass
        // with A's execution (softmax of row r completes just before A
        // ingests row r). With double buffering the two phases overlap —
        // the softmax's SFU time and memory traffic bind only if slower
        // than A; without it, they serialize.
        if self.opts.double_buffered && self.opts.overlap_softmax {
            let traffic = a_report.traffic + softmax.traffic;
            // The units overlap, but the two memory links are shared
            // resources: the combined phase can be no faster than either
            // unit alone or either link moving both phases' traffic.
            let cycles = a_report
                .cycles
                .max(softmax.cycles)
                .max(traffic.offchip.as_f64() / self.accel.offchip_bytes_per_cycle())
                .max(traffic.onchip.as_f64() / self.accel.onchip_bytes_per_cycle());
            let a_sm = CostReport {
                cycles,
                ideal_cycles: a_report.ideal_cycles,
                traffic,
                activity: a_report.activity + softmax.activity,
                footprint: a_report.footprint.max(softmax.footprint),
                energy: a_report.energy + softmax.energy,
            };
            (l_report.then(&a_sm), demands)
        } else {
            (l_report.then(&softmax).then(&a_report), demands)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Granularity, Stationarity};
    use flat_arch::Accelerator;
    use flat_workloads::Model;

    fn la(accel: &Accelerator, seq: u64, df: &OperatorDataflow) -> CostReport {
        let block = Model::bert().block(64, seq);
        CostModel::new(accel).sequential_la_cost(&block, df, df)
    }

    #[test]
    fn base_is_memory_bound_on_edge() {
        let accel = Accelerator::edge();
        let r = la(
            &accel,
            512,
            &OperatorDataflow::baseline(Stationarity::Weight),
        );
        assert!(
            r.util() < 0.8,
            "Base L-A should be memory bound: {}",
            r.util()
        );
        assert!(r.util() > 0.1);
    }

    /// With an enormous buffer and M-Gran staging, the logits stay
    /// resident and utilization approaches the compute bound.
    #[test]
    fn staged_m_with_huge_buffer_beats_base() {
        let accel = Accelerator::edge().with_sg(Bytes::from_gib(2));
        let base = la(
            &accel,
            512,
            &OperatorDataflow::baseline(Stationarity::Weight),
        );
        let staged = la(
            &accel,
            512,
            &OperatorDataflow::staged(Stationarity::Weight, Granularity::BatchMultiHead),
        );
        assert!(
            staged.util() > base.util(),
            "{} <= {}",
            staged.util(),
            base.util()
        );
        assert!(staged.traffic.offchip < base.traffic.offchip);
    }

    /// With the real 512 KiB edge buffer, M-Gran staging of a 400 MB logit
    /// tensor is counterproductive (the paper's Base-M < Base regime).
    #[test]
    fn staged_m_with_small_buffer_loses_to_base() {
        let accel = Accelerator::edge();
        let base = la(
            &accel,
            512,
            &OperatorDataflow::baseline(Stationarity::Weight),
        );
        let staged = la(
            &accel,
            512,
            &OperatorDataflow::staged(Stationarity::Weight, Granularity::BatchMultiHead),
        );
        assert!(
            staged.cycles >= base.cycles * 0.95,
            "{} vs {}",
            staged.cycles,
            base.cycles
        );
    }

    #[test]
    fn longer_sequences_lower_sequential_utilization() {
        let accel = Accelerator::cloud();
        let df = OperatorDataflow::staged(Stationarity::Weight, Granularity::Head);
        let short = la(&accel, 4096, &df);
        let long = la(&accel, 65_536, &df);
        assert!(
            long.util() < short.util(),
            "{} vs {}",
            long.util(),
            short.util()
        );
    }

    #[test]
    fn softmax_phase_accounts_both_passes() {
        let accel = Accelerator::edge();
        let cm = CostModel::new(&accel);
        let on = cm.softmax_phase(1_000_000, true, flat_tensor::DataType::Fp16);
        let off = cm.softmax_phase(1_000_000, false, flat_tensor::DataType::Fp16);
        assert_eq!(on.traffic.offchip, Bytes::ZERO);
        assert_eq!(off.traffic.offchip, Bytes::new(4_000_000));
        assert!(off.cycles > on.cycles);
        assert_eq!(on.activity.sfu_elements, 1_000_000);
    }
}
