//! The analytical cost model (§5.3): workload × dataflow × hardware →
//! runtime, utilization, traffic, and energy.
//!
//! The model prices three execution shapes:
//!
//! * a standalone operator ([`CostModel::operator_cost`]),
//! * the sequential L → softmax → A pipeline
//!   ([`CostModel::sequential_la_cost`]) used by every `Base*` dataflow,
//! * the fused, interleaved FLAT execution ([`CostModel::fused_la_cost`]),
//!
//! and aggregates them to blocks and models ([`CostModel::block_cost`],
//! [`CostModel::model_cost`]).
//!
//! Mechanisms modeled, each traceable to §5.3.1:
//!
//! * PE-array occupancy per stationarity with edge effects, and NoC
//!   fill/drain exposure per tile switch (or per segment when
//!   double-buffered) — [`compute`],
//! * SG-budgeted L2 tiling and the DRAM refetch multipliers of streamed
//!   tensors — [`l2`],
//! * L3-/FLAT-tile staging with the partial-fit extra-pass rule —
//!   [`staging`],
//! * softmax on the critical path, on- or off-chip depending on residency,
//! * shared, finite on-chip and off-chip bandwidth pools; with double
//!   buffering the compute/on-chip/off-chip demands overlap (max), without
//!   it they serialize (sum),
//! * Accelergy-style activity-count energy.

mod block;
mod compute;
mod demands;
mod fused;
mod l2;
mod report;
mod sequential;
mod single;
mod staging;

pub use block::BlockCost;
pub use compute::{gemm_compute, gemm_onchip_traffic, ComputeCost, OnchipTraffic};
pub use demands::{FusedLaneDemands, PhaseLaneDemands, SequentialLaneDemands};
pub use l2::{choose_l2_tiling, dram_traffic, DramTraffic, L2Tiling};
pub use report::{CostReport, Traffic};
pub use staging::{offchip_elems, Staging};

use flat_arch::Accelerator;
use flat_tensor::SoftmaxKind;
use serde::{Deserialize, Serialize};

/// Model toggles for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelOptions {
    /// Double-buffer DRAM-facing tiles: overlapped transfers and hidden
    /// tile switches, at 2× staging footprint. Matches the paper's chosen
    /// implementation (§5.1); disable to quantify its contribution.
    pub double_buffered: bool,
    /// Let the sequential baseline pipeline its softmax pass with the
    /// Attend operator's execution (softmax of a row completes just before
    /// A ingests it). This is dependency-legal and our default; disabling
    /// it charges softmax as its own serial phase between L and A, which
    /// is how the paper's baseline behaves and widens FLAT's advantage.
    pub overlap_softmax: bool,
    /// Which softmax family member the SFU runs: the exact two-pass
    /// (max + exp + divide, the default and the paper's configuration),
    /// FLASH-D (division folded into the accumulate recurrence), or the
    /// H-FA log-LUT variant (no exp, no divider). Prices both SFU cycles
    /// and SFU energy.
    pub softmax: SoftmaxKind,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            double_buffered: true,
            overlap_softmax: true,
            softmax: SoftmaxKind::Exact,
        }
    }
}

/// The cost model, bound to an accelerator.
///
/// # Example
///
/// ```
/// use flat_arch::Accelerator;
/// use flat_core::{BlockDataflow, CostModel, Granularity};
/// use flat_workloads::Model;
///
/// let accel = Accelerator::cloud();
/// let cm = CostModel::new(&accel);
/// let block = Model::xlm().block(64, 16_384);
/// let base = cm.block_cost(&block, &BlockDataflow::base()).total();
/// let flat = cm.block_cost(&block, &BlockDataflow::flat(Granularity::Row(512))).total();
/// assert!(flat.cycles < base.cycles);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    pub(crate) accel: &'a Accelerator,
    pub(crate) opts: ModelOptions,
}

impl<'a> CostModel<'a> {
    /// A cost model with default options (double buffering on).
    #[must_use]
    pub fn new(accel: &'a Accelerator) -> Self {
        CostModel {
            accel,
            opts: ModelOptions::default(),
        }
    }

    /// A cost model with explicit options.
    #[must_use]
    pub fn with_options(accel: &'a Accelerator, opts: ModelOptions) -> Self {
        CostModel { accel, opts }
    }

    /// The accelerator this model prices against.
    #[must_use]
    pub fn accelerator(&self) -> &'a Accelerator {
        self.accel
    }

    /// The model options in effect.
    #[must_use]
    pub fn options(&self) -> ModelOptions {
        self.opts
    }

    /// SFU cycles for `elements` logits under the selected softmax kind.
    pub(crate) fn sfu_cycles(&self, elements: u64) -> u64 {
        self.accel
            .sfu
            .softmax_cycles_kind(elements, self.opts.softmax)
    }

    /// The per-action energy table in effect: the accelerator's, rescaled
    /// for the element width and the selected softmax family member.
    pub(crate) fn energy_table(&self, dtype: flat_tensor::DataType) -> flat_arch::EnergyTable {
        self.accel
            .energy
            .scaled_for(dtype)
            .scaled_for_softmax(self.opts.softmax)
    }
}
