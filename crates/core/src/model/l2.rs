//! L2 tiling: how much of each operand the global scratchpad stages per
//! pass, and the DRAM refetch multipliers that follow.
//!
//! The SG is the only defense against DRAM refetches for a *streamed*
//! (non-L3-staged) tensor: each L2 tile is fetched from DRAM once per pass
//! that needs it, so the loop structure over L2 tiles fixes the off-chip
//! traffic. We model the three canonical one-level tiled-GEMM loop orders,
//! keyed to the same [`Stationarity`] knob as the array mapping:
//!
//! * **Output-reuse** (`Output`): psum block resident, contraction
//!   innermost — `A: m·k·⌈n/tn⌉`, `B: k·n·⌈m/tm⌉`, `C: m·n` (write once).
//! * **B-reuse** (`Weight`): weight block resident —
//!   `A: m·k·⌈n/tn⌉`, `B: k·n` (once), `C: m·n·(2·⌈k/tk⌉−1)` (psum spill).
//! * **A-reuse** (`Input`): `A: m·k` (once), `B: k·n·⌈m/tm⌉`,
//!   `C: m·n·(2·⌈k/tk⌉−1)`.
//!
//! [`choose_l2_tiling`] picks `(tm, tk, tn)` to minimize total DRAM traffic
//! subject to the SG working-set budget — this is why the paper's `Base`
//! curve climbs with buffer size even without any L3 tier.

use crate::Stationarity;
use flat_tensor::{ceil_div, Gemm};

/// A chosen L2 tiling with its SG working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Tiling {
    /// Tile extent along `m`.
    pub tm: u64,
    /// Tile extent along `k`.
    pub tk: u64,
    /// Tile extent along `n`.
    pub tn: u64,
    /// SG elements the tiling needs resident (double-buffered operand
    /// tiles plus a psum/output block).
    pub working_set_elems: u64,
}

/// DRAM traffic (elements) for one GEMM's three tensors when *streamed*
/// through the SG at a given L2 tiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramTraffic {
    /// `A`-operand elements crossing the off-chip link.
    pub a: u64,
    /// `B`-operand elements.
    pub b: u64,
    /// Output (and spilled partial-sum) elements.
    pub c: u64,
}

impl DramTraffic {
    /// Total off-chip elements.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.a + self.b + self.c
    }
}

/// SG working set of a tiling, in elements: double-buffered `A` and `B`
/// tiles plus a psum/output block (psums held at accumulator precision
/// when the contraction is tiled).
#[must_use]
pub fn working_set_elems(gemm: &Gemm, tm: u64, tk: u64, tn: u64) -> u64 {
    let psum_factor = if ceil_div(gemm.k, tk) > 1 { 4 } else { 2 };
    2 * (tm * tk + tk * tn) + psum_factor * tm * tn
}

/// DRAM traffic of a streamed GEMM at tiling `(tm, tk, tn)` under `stat`.
#[must_use]
pub fn dram_traffic(gemm: &Gemm, stat: Stationarity, tm: u64, tk: u64, tn: u64) -> DramTraffic {
    let g = gemm.batch;
    let (m, k, n) = (gemm.m, gemm.k, gemm.n);
    let im = ceil_div(m, tm);
    let ik = ceil_div(k, tk);
    let in_ = ceil_div(n, tn);
    // A weight shared across the batch behaves like a single GEMM with
    // m_total = G·m rows for the purpose of B refetches.
    let b_refetch = |mult: u64| -> u64 {
        if gemm.weight_shared {
            k * n * ceil_div(g * m, tm).min(g * mult)
        } else {
            g * k * n * mult
        }
    };
    match stat {
        Stationarity::Output => DramTraffic {
            a: g * m * k * in_,
            b: b_refetch(im),
            c: g * m * n,
        },
        Stationarity::Weight => DramTraffic {
            a: g * m * k * in_,
            b: if gemm.weight_shared { k * n } else { g * k * n },
            c: g * m * n * (2 * ik - 1),
        },
        Stationarity::Input => DramTraffic {
            a: g * m * k,
            b: b_refetch(im),
            c: g * m * n * (2 * ik - 1),
        },
    }
}

/// Picks the L2 tiling that minimizes streamed DRAM traffic within an SG
/// budget of `budget_elems`.
///
/// Candidates are powers of two up to each dimension (plus the dimension
/// itself), which covers the workloads' power-of-two-dominated shapes and
/// keeps the search a few hundred points.
#[must_use]
pub fn choose_l2_tiling(gemm: &Gemm, stat: Stationarity, budget_elems: u64) -> L2Tiling {
    let cands = |dim: u64| -> Vec<u64> {
        let mut v = Vec::new();
        let mut t = 1u64;
        while t < dim {
            v.push(t);
            t *= 2;
        }
        v.push(dim);
        v
    };
    let mut best: Option<(u64, L2Tiling)> = None;
    for &tm in &cands(gemm.m) {
        for &tk in &cands(gemm.k) {
            for &tn in &cands(gemm.n) {
                let ws = working_set_elems(gemm, tm, tk, tn);
                if ws > budget_elems && (tm, tk, tn) != (1, 1, 1) {
                    continue;
                }
                let traffic = dram_traffic(gemm, stat, tm, tk, tn).total();
                // Ties break toward the smaller working set: equal DRAM
                // traffic at less SG leaves more room for L3/FLAT staging.
                let better = match &best {
                    None => true,
                    Some((t, cur)) => traffic < *t || (traffic == *t && ws < cur.working_set_elems),
                };
                if better {
                    best = Some((
                        traffic,
                        L2Tiling {
                            tm,
                            tk,
                            tn,
                            working_set_elems: ws,
                        },
                    ));
                }
            }
        }
    }
    best.expect("candidate set is never empty").1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_budget_reaches_compulsory_traffic() {
        // With the whole problem fitting, every tensor moves once.
        let gemm = Gemm::new(1, 256, 64, 256);
        let t = choose_l2_tiling(&gemm, Stationarity::Output, u64::MAX);
        let d = dram_traffic(&gemm, Stationarity::Output, t.tm, t.tk, t.tn);
        assert_eq!(d.a, gemm.a_elements());
        assert_eq!(d.b, gemm.b_elements());
        assert_eq!(d.c, gemm.c_elements());
    }

    #[test]
    fn traffic_monotone_in_budget() {
        let gemm = Gemm::new(8, 2048, 64, 2048);
        let mut last = u64::MAX;
        for budget in [512, 4096, 32_768, 262_144, 4_194_304] {
            for stat in Stationarity::all() {
                let t = choose_l2_tiling(&gemm, stat, budget);
                assert!(t.working_set_elems <= budget.max(8));
                let _ = t;
            }
            let t = choose_l2_tiling(&gemm, Stationarity::Weight, budget);
            let total = dram_traffic(&gemm, Stationarity::Weight, t.tm, t.tk, t.tn).total();
            assert!(total <= last, "budget {budget}: {total} > {last}");
            last = total;
        }
    }

    #[test]
    fn weight_stationary_fetches_weight_once() {
        let gemm = Gemm::new(4, 512, 64, 512);
        let d = dram_traffic(&gemm, Stationarity::Weight, 32, 32, 32);
        assert_eq!(d.b, 4 * 64 * 512);
    }

    #[test]
    fn shared_weight_fetched_once_total_under_ws() {
        let gemm = Gemm::with_shared_weight(64, 512, 768, 768);
        let d = dram_traffic(&gemm, Stationarity::Weight, 64, 64, 64);
        assert_eq!(d.b, 768 * 768);
    }

    #[test]
    fn untiled_contraction_avoids_psum_spill() {
        let gemm = Gemm::new(1, 512, 64, 512);
        // tk = k: single contraction pass, outputs written once.
        let d = dram_traffic(&gemm, Stationarity::Weight, 64, 64, 512);
        assert_eq!(d.c, 512 * 512);
        // tk < k: psums spill (2 passes -> 3x output traffic).
        let d = dram_traffic(&gemm, Stationarity::Weight, 64, 32, 512);
        assert_eq!(d.c, 512 * 512 * 3);
    }

    #[test]
    fn working_set_counts_double_buffers_and_psums() {
        let gemm = Gemm::new(1, 128, 128, 128);
        // Full-k tile: fp16 output block.
        assert_eq!(
            working_set_elems(&gemm, 16, 128, 16),
            2 * (16 * 128 + 128 * 16) + 2 * 256
        );
        // Tiled k: fp32 psum block.
        assert_eq!(
            working_set_elems(&gemm, 16, 32, 16),
            2 * (16 * 32 + 32 * 16) + 4 * 256
        );
    }

    #[test]
    fn chooser_respects_budget() {
        let gemm = Gemm::new(2, 4096, 512, 4096);
        let t = choose_l2_tiling(&gemm, Stationarity::Output, 10_000);
        assert!(t.working_set_elems <= 10_000);
    }

    #[test]
    fn tiny_budget_still_returns_a_tiling() {
        let gemm = Gemm::new(1, 64, 64, 64);
        let t = choose_l2_tiling(&gemm, Stationarity::Input, 0);
        assert_eq!((t.tm, t.tk, t.tn), (1, 1, 1));
    }
}
