//! Cost-model outputs.

use flat_arch::{ActivityCounts, EnergyBreakdown};
use flat_tensor::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// Data moved over the two shared memory interfaces, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Traffic {
    /// SG ↔ PE-array/SFU traffic (on-chip interconnect).
    pub onchip: Bytes,
    /// DRAM ↔ SG traffic (off-chip link).
    pub offchip: Bytes,
}

impl Add for Traffic {
    type Output = Traffic;
    fn add(self, rhs: Traffic) -> Traffic {
        Traffic {
            onchip: self.onchip + rhs.onchip,
            offchip: self.offchip + rhs.offchip,
        }
    }
}

impl Sum for Traffic {
    fn sum<I: Iterator<Item = Traffic>>(iter: I) -> Traffic {
        iter.fold(Traffic::default(), Add::add)
    }
}

/// The cost-model verdict for a piece of work (one operator, the fused L-A
/// pair, a block, or a model): runtime, utilization, traffic, activity, and
/// the SG footprint it needed.
///
/// Reports compose: [`CostReport::then`] concatenates sequential work
/// (cycles add, footprints take the max — the SG is reused between
/// operators).
///
/// # Example
///
/// ```
/// use flat_core::CostReport;
///
/// let a = CostReport::ideal(1000.0);
/// let b = CostReport::ideal(500.0);
/// let both = a.then(&b);
/// assert_eq!(both.cycles, 1500.0);
/// assert_eq!(both.util(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostReport {
    /// Modeled runtime in cycles.
    pub cycles: f64,
    /// Runtime with fully utilized PEs and no memory stalls
    /// (`Runtime_ideal` of §6.1).
    pub ideal_cycles: f64,
    /// Interconnect traffic.
    pub traffic: Traffic,
    /// Activity counts for the energy model.
    pub activity: ActivityCounts,
    /// Peak live SG requirement while this work ran.
    pub footprint: Bytes,
    /// Energy, from the accelerator's table applied to `activity`.
    pub energy: EnergyBreakdown,
}

impl CostReport {
    /// A report for perfectly utilized compute (used in tests and for
    /// non-stall reference lines in Figure 11).
    #[must_use]
    pub fn ideal(cycles: f64) -> Self {
        CostReport {
            cycles,
            ideal_cycles: cycles,
            ..CostReport::default()
        }
    }

    /// Compute-resource utilization: `Runtime_ideal / Runtime_actual`
    /// (§6.1). Returns 1.0 for empty work.
    #[must_use]
    pub fn util(&self) -> f64 {
        if self.cycles <= 0.0 {
            1.0
        } else {
            (self.ideal_cycles / self.cycles).clamp(0.0, 1.0)
        }
    }

    /// Sequential composition: cycles and traffic add; the footprint is the
    /// max, because the SG is recycled between phases.
    #[must_use]
    pub fn then(&self, later: &CostReport) -> CostReport {
        CostReport {
            cycles: self.cycles + later.cycles,
            ideal_cycles: self.ideal_cycles + later.ideal_cycles,
            traffic: self.traffic + later.traffic,
            activity: self.activity + later.activity,
            footprint: self.footprint.max(later.footprint),
            energy: self.energy + later.energy,
        }
    }

    /// Repeats this work `times` in sequence (e.g. identical blocks of a
    /// model).
    #[must_use]
    pub fn repeat(&self, times: u64) -> CostReport {
        let t = times as f64;
        CostReport {
            cycles: self.cycles * t,
            ideal_cycles: self.ideal_cycles * t,
            traffic: Traffic {
                onchip: self.traffic.onchip * times,
                offchip: self.traffic.offchip * times,
            },
            activity: flat_arch::ActivityCounts {
                macs: self.activity.macs * times,
                sl_accesses: self.activity.sl_accesses * times,
                sg_accesses: self.activity.sg_accesses * times,
                dram_accesses: self.activity.dram_accesses * times,
                sfu_elements: self.activity.sfu_elements * times,
            },
            footprint: self.footprint,
            energy: EnergyBreakdown {
                compute_pj: self.energy.compute_pj * t,
                sl_pj: self.energy.sl_pj * t,
                sg_pj: self.energy.sg_pj * t,
                dram_pj: self.energy.dram_pj * t,
                sfu_pj: self.energy.sfu_pj * t,
            },
        }
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} cycles (util {:.3}), off-chip {}, on-chip {}, footprint {}",
            self.cycles,
            self.util(),
            self.traffic.offchip,
            self.traffic.onchip,
            self.footprint
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn util_is_bounded() {
        let r = CostReport {
            cycles: 100.0,
            ideal_cycles: 250.0,
            ..CostReport::default()
        };
        assert_eq!(r.util(), 1.0, "clamped");
        let r = CostReport {
            cycles: 200.0,
            ideal_cycles: 100.0,
            ..CostReport::default()
        };
        assert_eq!(r.util(), 0.5);
    }

    #[test]
    fn empty_work_is_fully_utilized() {
        assert_eq!(CostReport::default().util(), 1.0);
    }

    #[test]
    fn then_adds_cycles_and_maxes_footprint() {
        let mut a = CostReport::ideal(10.0);
        a.footprint = Bytes::from_kib(100);
        let mut b = CostReport::ideal(5.0);
        b.footprint = Bytes::from_kib(40);
        let c = a.then(&b);
        assert_eq!(c.cycles, 15.0);
        assert_eq!(c.footprint, Bytes::from_kib(100));
    }

    #[test]
    fn repeat_scales_linearly() {
        let mut r = CostReport::ideal(10.0);
        r.traffic.offchip = Bytes::new(7);
        r.activity.macs = 3;
        let r12 = r.repeat(12);
        assert_eq!(r12.cycles, 120.0);
        assert_eq!(r12.traffic.offchip, Bytes::new(84));
        assert_eq!(r12.activity.macs, 36);
        assert_eq!(r12.footprint, r.footprint);
    }
}
