//! PE-array timing and on-chip (SG ↔ PE) traffic for one GEMM.
//!
//! The spatial mapping follows the [`Stationarity`] choice: the stationary
//! operand's two dimensions spread across the PE array; the remaining
//! dimension streams temporally. Every spatial-tile switch pays the NoC
//! fill/drain overhead (§5.3.1's "cold start and tailing effect").

use crate::Stationarity;
use flat_arch::Accelerator;
use flat_tensor::{ceil_div, Gemm};

/// Timing of a GEMM on the PE array.
///
/// `steps` is raw streaming occupancy; how much of the per-switch NoC
/// fill/drain is *exposed* depends on double buffering and is decided by
/// the assembly layer: with double-buffered stationary tiles only the cold
/// start and tail of each execution segment shows, without it every switch
/// pays the full NoC latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeCost {
    /// Cycles the array spends streaming MACs (including idle lanes from
    /// edge effects).
    pub steps: u64,
    /// Number of stationary-tile switches.
    pub switches: u64,
    /// Useful MACs executed.
    pub macs: u64,
}

impl ComputeCost {
    /// Compute cycles with double-buffered tiles: streaming plus one
    /// exposed fill/drain (cold start + tail) per execution segment.
    #[must_use]
    pub fn cycles_double_buffered(&self, accel: &Accelerator, segments: u64) -> u64 {
        self.steps + segments * accel.noc.tile_switch_overhead(accel.pe)
    }

    /// Compute cycles without double buffering: every tile switch exposes
    /// the full NoC fill/drain latency.
    #[must_use]
    pub fn cycles_unbuffered(&self, accel: &Accelerator) -> u64 {
        self.steps + self.switches * accel.noc.tile_switch_overhead(accel.pe)
    }

    /// Ideal cycles with every PE busy every cycle.
    #[must_use]
    pub fn ideal_cycles(&self, accel: &Accelerator) -> f64 {
        self.macs as f64 / accel.peak_macs_per_cycle() as f64
    }
}

/// Models `gemm` on `accel`'s array under `stat`.
///
/// Mapping per stationarity (array is `Px × Py`):
///
/// * `Weight`: `k × n` of the `B` tile across the array, stream `m` rows —
///   `steps = G · ⌈k/Px⌉ · ⌈n/Py⌉ · m`. When the weight is shared across
///   the batch the tile switches (and their NoC cost) amortize over the
///   whole batch.
/// * `Input`: `m × k` of the `A` tile across, stream `n` —
///   `steps = G · ⌈m/Px⌉ · ⌈k/Py⌉ · n`.
/// * `Output`: `m × n` accumulators across, stream `k` —
///   `steps = G · ⌈m/Px⌉ · ⌈n/Py⌉ · k`.
#[must_use]
pub fn gemm_compute(gemm: &Gemm, stat: Stationarity, accel: &Accelerator) -> ComputeCost {
    let (px, py) = (accel.pe.rows, accel.pe.cols);
    let g = gemm.batch;
    // Independent batch GEMMs fold into the row dimension of the spatial
    // mapping: a half-empty array packs two batches' output (or input)
    // rows side by side. The weight-stationary mapping cannot fold a
    // per-batch weight, but a shared weight streams the whole batch.
    let (steps, switches) = match stat {
        Stationarity::Weight => {
            let tiles = ceil_div(gemm.k, px) * ceil_div(gemm.n, py);
            if gemm.weight_shared {
                (tiles * g * gemm.m, tiles)
            } else {
                (g * tiles * gemm.m, g * tiles)
            }
        }
        Stationarity::Input => {
            let tiles = ceil_div(g * gemm.m, px) * ceil_div(gemm.k, py);
            (tiles * gemm.n, tiles)
        }
        Stationarity::Output => {
            let tiles = ceil_div(g * gemm.m, px) * ceil_div(gemm.n, py);
            (tiles * gemm.k, tiles)
        }
    };
    ComputeCost {
        steps,
        switches,
        macs: gemm.macs(),
    }
}

/// On-chip (SG ↔ PE) traffic of one GEMM, in elements.
///
/// The spatial tile is the unit of reuse: the stationary operand crosses
/// the interconnect once; the streaming operands cross once per spatial
/// tile that needs them; partial sums cross once per contraction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OnchipTraffic {
    /// `A`-operand elements fetched from SG.
    pub a: u64,
    /// `B`-operand elements fetched from SG.
    pub b: u64,
    /// Output (and partial-sum) elements moved to/from SG.
    pub c: u64,
}

impl OnchipTraffic {
    /// Total elements over the on-chip interconnect.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.a + self.b + self.c
    }
}

/// Computes [`OnchipTraffic`] for `gemm` under `stat` on `accel`'s array.
#[must_use]
pub fn gemm_onchip_traffic(gemm: &Gemm, stat: Stationarity, accel: &Accelerator) -> OnchipTraffic {
    let (px, py) = (accel.pe.rows, accel.pe.cols);
    let g = gemm.batch;
    let (m, k, n) = (gemm.m, gemm.k, gemm.n);
    match stat {
        Stationarity::Weight => OnchipTraffic {
            a: g * m * k * ceil_div(n, py),
            b: if gemm.weight_shared { k * n } else { g * k * n },
            c: g * m * n * (2 * ceil_div(k, px) - 1),
        },
        Stationarity::Input => OnchipTraffic {
            a: g * m * k,
            b: g * k * n * ceil_div(m, px),
            c: g * m * n * (2 * ceil_div(k, py) - 1),
        },
        Stationarity::Output => OnchipTraffic {
            a: g * m * k * ceil_div(n, py),
            b: g * k * n * ceil_div(m, px),
            c: g * m * n,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_arch::Accelerator;

    fn edge() -> Accelerator {
        Accelerator::edge()
    }

    #[test]
    fn steps_lower_bounded_by_ideal() {
        let accel = edge();
        let gemm = Gemm::new(8, 500, 60, 500);
        for stat in Stationarity::all() {
            let c = gemm_compute(&gemm, stat, &accel);
            assert!(
                c.steps as f64 >= c.ideal_cycles(&accel) - 1e-9,
                "{stat}: steps {} < ideal {}",
                c.steps,
                c.ideal_cycles(&accel)
            );
        }
    }

    #[test]
    fn perfectly_tiled_gemm_reaches_ideal_steps() {
        let accel = edge(); // 32x32
        let gemm = Gemm::new(2, 64, 64, 64);
        let c = gemm_compute(&gemm, Stationarity::Output, &accel);
        // 2 * (64/32)^2 * 64 = 512 steps; macs / 1024 PEs = 512.
        assert_eq!(c.steps, 512);
        assert_eq!(c.steps as f64, c.ideal_cycles(&accel));
    }

    /// dk=64 < 32 rows? For the Logit operator (small k) weight-stationary
    /// mapping keeps the array fuller than output-stationary does per step
    /// count when k is the streamed dimension.
    #[test]
    fn stationarity_changes_switch_counts() {
        let accel = edge();
        // L-like GEMM: m=512, k=64, n=512.
        let gemm = Gemm::new(4, 512, 64, 512);
        let ws = gemm_compute(&gemm, Stationarity::Weight, &accel);
        let os = gemm_compute(&gemm, Stationarity::Output, &accel);
        // OS switches once per 32x32 output tile: 4*16*16; WS once per
        // 32x32 weight tile: 4*2*16.
        assert_eq!(os.switches, 4 * 16 * 16);
        assert_eq!(ws.switches, 4 * 2 * 16);
        assert!(ws.cycles_unbuffered(&accel) < os.cycles_unbuffered(&accel));
    }

    #[test]
    fn shared_weight_amortizes_switches() {
        let accel = edge();
        let shared = Gemm::with_shared_weight(64, 512, 768, 768);
        let private = Gemm::new(64, 512, 768, 768);
        let cs = gemm_compute(&shared, Stationarity::Weight, &accel);
        let cp = gemm_compute(&private, Stationarity::Weight, &accel);
        assert_eq!(cs.switches * 64, cp.switches);
        assert_eq!(cs.steps, cp.steps);
    }

    #[test]
    fn stationary_operand_crosses_once() {
        let accel = edge();
        let gemm = Gemm::new(2, 512, 64, 512);
        let ws = gemm_onchip_traffic(&gemm, Stationarity::Weight, &accel);
        assert_eq!(ws.b, 2 * 64 * 512);
        let is = gemm_onchip_traffic(&gemm, Stationarity::Input, &accel);
        assert_eq!(is.a, 2 * 512 * 64);
        let os = gemm_onchip_traffic(&gemm, Stationarity::Output, &accel);
        assert_eq!(os.c, 2 * 512 * 512);
    }

    #[test]
    fn output_stationary_writes_each_output_once() {
        let accel = edge();
        // k = 32 exactly fills one array row span: WS psum multiplier is 1.
        let gemm = Gemm::new(1, 64, 32, 64);
        let ws = gemm_onchip_traffic(&gemm, Stationarity::Weight, &accel);
        assert_eq!(ws.c, 64 * 64, "2*ceil(32/32)-1 == 1 pass");
    }

    #[test]
    fn traffic_at_least_compulsory() {
        let accel = edge();
        let gemm = Gemm::new(3, 100, 50, 200);
        for stat in Stationarity::all() {
            let t = gemm_onchip_traffic(&gemm, stat, &accel);
            assert!(t.a >= gemm.a_elements());
            assert!(t.b >= gemm.b_elements());
            assert!(t.c >= gemm.c_elements());
        }
    }
}
