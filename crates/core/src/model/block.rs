//! Block- and model-level cost aggregation, split by the Figure 11
//! operator categories.

use crate::model::CostModel;
use crate::{BlockDataflow, CostReport, LaExecution};
use flat_workloads::{AttentionBlock, Model, OpCategory, Scope};
use serde::{Deserialize, Serialize};

/// Cost of one attention block, broken down the way Figure 11 stacks it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BlockCost {
    /// The Logit-Attend pair (fused or sequential).
    pub logit_attend: CostReport,
    /// The Q/K/V/O projections.
    pub projection: CostReport,
    /// The two feed-forward layers.
    pub feed_forward: CostReport,
}

impl BlockCost {
    /// Whole-block cost (sequential composition of the three categories).
    #[must_use]
    pub fn total(&self) -> CostReport {
        self.logit_attend
            .then(&self.projection)
            .then(&self.feed_forward)
    }

    /// Cost of one category.
    #[must_use]
    pub fn category(&self, cat: OpCategory) -> CostReport {
        match cat {
            OpCategory::LogitAttend => self.logit_attend,
            OpCategory::Projection => self.projection,
            OpCategory::FeedForward => self.feed_forward,
        }
    }

    /// Repeats the block `times` (a model's identical blocks).
    #[must_use]
    pub fn repeat(&self, times: u64) -> BlockCost {
        BlockCost {
            logit_attend: self.logit_attend.repeat(times),
            projection: self.projection.repeat(times),
            feed_forward: self.feed_forward.repeat(times),
        }
    }
}

impl CostModel<'_> {
    /// Cost of the L-A pair under the block dataflow's execution choice.
    #[must_use]
    pub fn la_cost(&self, block: &AttentionBlock, la: &LaExecution) -> CostReport {
        match la {
            LaExecution::Sequential { logit, attend } => {
                self.sequential_la_cost(block, logit, attend)
            }
            LaExecution::Fused(fused) => self.fused_la_cost(block, fused),
        }
    }

    /// Cost of a whole attention block under `df`.
    ///
    /// # Example
    ///
    /// ```
    /// use flat_arch::Accelerator;
    /// use flat_core::{BlockDataflow, CostModel, Granularity};
    /// use flat_workloads::Model;
    ///
    /// let accel = Accelerator::edge();
    /// let block = Model::bert().block(64, 512);
    /// let cost = CostModel::new(&accel).block_cost(&block, &BlockDataflow::flat(Granularity::Row(64)));
    /// assert!(cost.total().util() > 0.0);
    /// ```
    #[must_use]
    pub fn block_cost(&self, block: &AttentionBlock, df: &BlockDataflow) -> BlockCost {
        let cfg = *block.config();
        let seq = |cat: OpCategory| -> CostReport {
            block
                .operators_in_category(cat)
                .map(|op| self.operator_cost(op, &df.others, &cfg))
                .fold(CostReport::default(), |acc, r| acc.then(&r))
        };
        BlockCost {
            logit_attend: self.la_cost(block, &df.la),
            projection: seq(OpCategory::Projection),
            feed_forward: seq(OpCategory::FeedForward),
        }
    }

    /// Cost at one of the Figure 8 analysis scopes. `Model` scope needs a
    /// block count; use [`CostModel::model_cost`] for that.
    #[must_use]
    pub fn scope_cost(
        &self,
        block: &AttentionBlock,
        df: &BlockDataflow,
        scope: Scope,
    ) -> CostReport {
        match scope {
            Scope::LogitAttend => self.la_cost(block, &df.la),
            Scope::Block | Scope::Model => self.block_cost(block, df).total(),
        }
    }

    /// Cost of a whole model (its identical blocks in sequence) at a batch
    /// size and sequence length.
    #[must_use]
    pub fn model_cost(&self, model: &Model, batch: u64, seq: u64, df: &BlockDataflow) -> BlockCost {
        let block = model.block(batch, seq);
        self.block_cost(&block, df).repeat(model.blocks())
    }

    /// Cost of a decoder block: both L-A pairs (causal self-attention and
    /// cross-attention) run under the block dataflow's L-A strategy; the
    /// eight projections and the FFN pair under its non-fused dataflow.
    ///
    /// # Example
    ///
    /// ```
    /// use flat_arch::Accelerator;
    /// use flat_core::{BlockDataflow, CostModel, Granularity};
    /// use flat_workloads::{DecoderBlock, Model};
    ///
    /// let accel = Accelerator::cloud();
    /// let block = DecoderBlock::for_model(&Model::t5_small(), 64, 1024, 4096);
    /// let cm = CostModel::new(&accel);
    /// let base = cm.decoder_block_cost(&block, &BlockDataflow::base()).total();
    /// let flat = cm.decoder_block_cost(&block, &BlockDataflow::flat(Granularity::Row(256))).total();
    /// assert!(flat.cycles < base.cycles);
    /// ```
    #[must_use]
    pub fn decoder_block_cost(
        &self,
        block: &flat_workloads::DecoderBlock,
        df: &BlockDataflow,
    ) -> BlockCost {
        let la_self = self.la_cost(block.self_attention(), &df.la);
        let la_cross = self.la_cost(block.cross_attention(), &df.la);
        let others = |cat: OpCategory, attn: &AttentionBlock| -> CostReport {
            let cfg = *attn.config();
            attn.operators_in_category(cat)
                .map(|op| self.operator_cost(op, &df.others, &cfg))
                .fold(CostReport::default(), |acc, r| acc.then(&r))
        };
        BlockCost {
            logit_attend: la_self.then(&la_cross),
            projection: others(OpCategory::Projection, block.self_attention())
                .then(&others(OpCategory::Projection, block.cross_attention())),
            feed_forward: others(OpCategory::FeedForward, block.self_attention()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Granularity;
    use flat_arch::Accelerator;

    #[test]
    fn block_total_sums_categories() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let cost = CostModel::new(&accel).block_cost(&block, &BlockDataflow::base());
        let total = cost.total();
        let by_cat: f64 = OpCategory::all()
            .iter()
            .map(|&c| cost.category(c).cycles)
            .sum();
        assert!((total.cycles - by_cat).abs() < 1e-6);
    }

    /// Figure 8: block-scope utilization exceeds L-A-scope utilization for
    /// the baselines at short sequences — the well-behaved projections and
    /// FCs dilute the L-A stall.
    #[test]
    fn other_operators_dilute_la_at_short_seq() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let cm = CostModel::new(&accel);
        let df = BlockDataflow::base();
        let la = cm.scope_cost(&block, &df, Scope::LogitAttend);
        let blk = cm.scope_cost(&block, &df, Scope::Block);
        assert!(blk.util() > la.util(), "{} <= {}", blk.util(), la.util());
    }

    /// At long sequences the L-A operators dominate the whole block, so
    /// block-scope utilization converges toward L-A-scope utilization.
    #[test]
    fn la_dominates_at_long_seq() {
        let accel = Accelerator::cloud();
        let block = Model::xlm().block(64, 65_536);
        let cm = CostModel::new(&accel);
        let df = BlockDataflow::base();
        let cost = cm.block_cost(&block, &df);
        assert!(cost.logit_attend.cycles > 3.0 * cost.projection.cycles);
    }

    #[test]
    fn decoder_block_counts_both_attention_layers() {
        let accel = Accelerator::cloud();
        let cm = CostModel::new(&accel);
        let dec = flat_workloads::DecoderBlock::for_model(&Model::t5_small(), 8, 512, 512);
        let enc = Model::t5_small().block(8, 512);
        let df = BlockDataflow::base();
        let dec_cost = cm.decoder_block_cost(&dec, &df);
        let enc_cost = cm.block_cost(&enc, &df);
        // Same sequence on both sides: the decoder's L-A work is ~2x the
        // encoder's (self + cross), and the same machinery prices it.
        let ratio = dec_cost.logit_attend.ideal_cycles / enc_cost.logit_attend.ideal_cycles;
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
        assert!(dec_cost.total().cycles > enc_cost.total().cycles);
    }

    #[test]
    fn flat_accelerates_the_decoder_cross_attention() {
        let accel = Accelerator::cloud();
        let cm = CostModel::new(&accel);
        // Long encoder context, short decoder window: cross-attention's
        // [dec, enc] logits dominate.
        let dec = flat_workloads::DecoderBlock::for_model(&Model::t5_small(), 64, 1024, 16_384);
        let base = cm.decoder_block_cost(&dec, &BlockDataflow::base()).total();
        let flat = cm
            .decoder_block_cost(&dec, &BlockDataflow::flat(Granularity::Row(256)))
            .total();
        assert!(
            flat.cycles < base.cycles * 0.7,
            "{} vs {}",
            flat.cycles,
            base.cycles
        );
    }

    #[test]
    fn model_cost_scales_with_block_count() {
        let accel = Accelerator::edge();
        let cm = CostModel::new(&accel);
        let df = BlockDataflow::flat(Granularity::Row(64));
        let one = cm.block_cost(&Model::bert().block(8, 512), &df).total();
        let model = cm.model_cost(&Model::bert(), 8, 512, &df).total();
        assert!((model.cycles - 12.0 * one.cycles).abs() < 1e-3);
        // Utilization is invariant under repetition.
        assert!((model.util() - one.util()).abs() < 1e-9);
    }
}
