//! Execution schedules: a phase-by-phase timeline of how a dataflow runs
//! on the accelerator — the observable counterpart of the aggregate cost
//! numbers, and the basis of the `trace` CLI command.
//!
//! The cost model collapses execution into totals; this module expands the
//! same model into an explicit sequence of [`Phase`]s (what the PE array,
//! SFU, and memory system are doing, and which resource bounds each span),
//! so a user can *see* why a dataflow is slow.

use crate::model::CostModel;
use crate::{BlockDataflow, CostReport, FusedDataflow, FusedSlices, Granularity, LaExecution};
use flat_tensor::Gemm;
use flat_workloads::AttentionBlock;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What limits a phase's duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// PE-array streaming (plus NoC fill/drain).
    Compute,
    /// The on-chip SG interconnect.
    OnChip,
    /// The off-chip DRAM link.
    OffChip,
    /// The softmax unit.
    Sfu,
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Bound::Compute => "compute",
            Bound::OnChip => "on-chip BW",
            Bound::OffChip => "off-chip BW",
            Bound::Sfu => "softmax",
        };
        f.write_str(name)
    }
}

/// One span of the execution timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Human-readable label (`"L (logit)"`, `"FLAT-tile 3/128"`, …).
    pub label: String,
    /// Start time, cycles from operator start.
    pub start: f64,
    /// End time in cycles.
    pub end: f64,
    /// The binding resource.
    pub bound: Bound,
    /// Compute utilization within the phase.
    pub util: f64,
}

impl Phase {
    /// Phase duration in cycles.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A complete timeline for the L-A pair under a dataflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Dataflow label the schedule was built for.
    pub dataflow: String,
    /// The timeline spans. For fused dataflows with many iterations, the
    /// steady state is folded: the first few iterations are explicit and
    /// one span summarizes the rest.
    pub phases: Vec<Phase>,
    /// Totals, identical to [`CostModel::la_cost`] for the same inputs.
    pub total: CostReport,
}

impl Schedule {
    /// Total runtime in cycles.
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.phases.last().map_or(0.0, |p| p.end)
    }

    /// Renders an ASCII Gantt-style view, `width` characters wide.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let span = self.makespan().max(1.0);
        let mut out = String::new();
        for p in &self.phases {
            let w = ((p.duration() / span) * width as f64).round().max(1.0) as usize;
            let off = ((p.start / span) * width as f64).round() as usize;
            out.push_str(&format!(
                "{:28} {}{} {:>12.3e} cyc  [{}]\n",
                p.label,
                " ".repeat(off.min(width)),
                "#".repeat(w.min(width + 1 - off.min(width))),
                p.duration(),
                p.bound,
            ));
        }
        out
    }
}

/// Classifies which resource bound a phase, given its candidate times.
fn classify(compute: f64, onchip: f64, offchip: f64, sfu: f64) -> Bound {
    let max = compute.max(onchip).max(offchip).max(sfu);
    if max == compute {
        Bound::Compute
    } else if max == offchip {
        Bound::OffChip
    } else if max == onchip {
        Bound::OnChip
    } else {
        Bound::Sfu
    }
}

impl CostModel<'_> {
    /// Builds the execution timeline of the L-A pair under `df`.
    ///
    /// The totals agree with [`CostModel::la_cost`]; the timeline shows
    /// how they decompose.
    ///
    /// # Example
    ///
    /// ```
    /// use flat_arch::Accelerator;
    /// use flat_core::{BlockDataflow, CostModel, Granularity};
    /// use flat_workloads::Model;
    ///
    /// let accel = Accelerator::edge();
    /// let block = Model::bert().block(64, 512);
    /// let cm = CostModel::new(&accel);
    /// let schedule = cm.la_schedule(&block, &BlockDataflow::flat(Granularity::Row(64)));
    /// assert!(schedule.makespan() > 0.0);
    /// println!("{}", schedule.render(40));
    /// ```
    #[must_use]
    pub fn la_schedule(&self, block: &AttentionBlock, df: &BlockDataflow) -> Schedule {
        match &df.la {
            LaExecution::Sequential { logit, attend } => {
                // Re-derive the three sequential phases with their own
                // reports so the timeline matches the cost function.
                let cfg = *block.config();
                let l_only =
                    self.operator_cost(block.operator(flat_workloads::OpKind::Logit), logit, &cfg);
                let a_only = self.operator_cost(
                    block.operator(flat_workloads::OpKind::Attend),
                    attend,
                    &cfg,
                );
                let total = self.sequential_la_cost(block, logit, attend);
                let softmax_cycles = (total.cycles - l_only.cycles - a_only.cycles).max(0.0);
                let mut phases = Vec::new();
                let mut t = 0.0;
                for (label, report) in [("L (logit)", &l_only), ("A (attend)", &a_only)] {
                    let off =
                        report.traffic.offchip.as_f64() / self.accel.offchip_bytes_per_cycle();
                    let on = report.traffic.onchip.as_f64() / self.accel.onchip_bytes_per_cycle();
                    let compute = report.cycles - off.max(on).min(report.cycles);
                    if label == "A (attend)" && softmax_cycles > 0.0 {
                        phases.push(Phase {
                            label: "softmax (whole tensor)".to_owned(),
                            start: t,
                            end: t + softmax_cycles,
                            bound: Bound::Sfu,
                            util: 0.0,
                        });
                        t += softmax_cycles;
                    }
                    phases.push(Phase {
                        label: label.to_owned(),
                        start: t,
                        end: t + report.cycles,
                        bound: classify(compute, on, off, 0.0),
                        util: report.util(),
                    });
                    t += report.cycles;
                }
                Schedule {
                    dataflow: df.label(),
                    phases,
                    total,
                }
            }
            LaExecution::Fused(fused) => self.fused_schedule(block, fused, df.label()),
        }
    }

    fn fused_schedule(
        &self,
        block: &AttentionBlock,
        df: &FusedDataflow,
        label: String,
    ) -> Schedule {
        let cfg = *block.config();
        let total = self.fused_la_cost(block, df);
        let s = FusedSlices::new(df.granularity, &cfg);
        let iters = s.iterations;
        let per_iter = total.cycles / iters as f64;

        // Per-iteration resource times, reconstructed from totals.
        let off =
            total.traffic.offchip.as_f64() / self.accel.offchip_bytes_per_cycle() / iters as f64;
        let on = total.traffic.onchip.as_f64() / self.accel.onchip_bytes_per_cycle() / iters as f64;
        let sfu = self.sfu_cycles(s.intermediate) as f64;
        let l_sub = Gemm::new(s.groups, s.rows, cfg.dk(), cfg.seq_kv);
        let compute = 2.0 * crate::gemm_compute(&l_sub, df.stationarity_l, self.accel).steps as f64;
        let bound = classify(compute, on, off, sfu);

        let explicit = iters.min(3);
        let mut phases = Vec::new();
        let mut t = 0.0;
        for i in 0..explicit {
            let gran = match df.granularity {
                Granularity::Row(r) => format!("R{r}"),
                g => g.label(),
            };
            phases.push(Phase {
                label: format!("FLAT-tile {}/{} ({gran}: L+softmax+A)", i + 1, iters),
                start: t,
                end: t + per_iter,
                bound,
                util: total.util(),
            });
            t += per_iter;
        }
        if iters > explicit {
            let rest = iters - explicit;
            phases.push(Phase {
                label: format!("... {rest} more FLAT-tiles (steady state)"),
                start: t,
                end: total.cycles,
                bound,
                util: total.util(),
            });
        }
        Schedule {
            dataflow: label,
            phases,
            total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_arch::Accelerator;
    use flat_workloads::Model;

    fn setup() -> (Accelerator, AttentionBlock) {
        (Accelerator::edge(), Model::bert().block(64, 512))
    }

    #[test]
    fn fused_schedule_makespan_matches_cost() {
        let (accel, block) = setup();
        let cm = CostModel::new(&accel);
        let df = BlockDataflow::flat(Granularity::Row(64));
        let sched = cm.la_schedule(&block, &df);
        let cost = cm.la_cost(&block, &df.la);
        assert!((sched.makespan() - cost.cycles).abs() / cost.cycles < 1e-9);
        assert_eq!(sched.total, cost);
    }

    #[test]
    fn sequential_schedule_has_three_phases() {
        let (accel, block) = setup();
        let cm = CostModel::new(&accel);
        let sched = cm.la_schedule(&block, &BlockDataflow::base());
        let labels: Vec<&str> = sched.phases.iter().map(|p| p.label.as_str()).collect();
        assert!(labels.contains(&"L (logit)"));
        assert!(labels.contains(&"A (attend)"));
    }

    #[test]
    fn phases_are_contiguous_and_ordered() {
        let (accel, block) = setup();
        let cm = CostModel::new(&accel);
        for df in [
            BlockDataflow::base(),
            BlockDataflow::flat(Granularity::Row(32)),
        ] {
            let sched = cm.la_schedule(&block, &df);
            let mut t = 0.0;
            for p in &sched.phases {
                assert!(
                    (p.start - t).abs() < 1e-6,
                    "{}: gap at {}",
                    df.label(),
                    p.label
                );
                assert!(p.end >= p.start);
                t = p.end;
            }
        }
    }

    #[test]
    fn render_is_nonempty_and_bounded() {
        let (accel, block) = setup();
        let cm = CostModel::new(&accel);
        let sched = cm.la_schedule(&block, &BlockDataflow::flat(Granularity::Head));
        let text = sched.render(40);
        assert!(!text.is_empty());
        assert!(text.lines().count() >= sched.phases.len());
    }

    #[test]
    fn steady_state_folding_caps_phase_count() {
        let (accel, block) = setup();
        let cm = CostModel::new(&accel);
        // R=1 gives thousands of iterations; the schedule must fold them.
        let sched = cm.la_schedule(&block, &BlockDataflow::flat(Granularity::Row(1)));
        assert!(sched.phases.len() <= 4);
        assert!(sched.phases.last().unwrap().label.contains("steady state"));
    }
}
