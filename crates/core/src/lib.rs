//! The FLAT dataflow and its analytical cost model — the paper's primary
//! contribution.
//!
//! FLAT (Fused Logit ATtention) fuses the two activation-activation
//! operators of an attention layer — Logit (`Q·Kᵀ`) and Attend
//! (`softmax(L)·V`) — and tiles *across* them so the quadratic `[N, N]`
//! intermediate tensor lives its whole life inside the on-chip scratchpad.
//! The softmax row reduction sets the finest legal slice (one full logit
//! row), which yields the granularity ladder M/B/H/R and, at row
//! granularity, an `O(N)` live footprint where every baseline needs
//! `Ω(N²)` (Table 2).
//!
//! This crate provides:
//!
//! * the dataflow vocabulary — [`Granularity`], [`Stationarity`],
//!   [`FusedEnables`]/[`OperandEnables`], [`OperatorDataflow`],
//!   [`FusedDataflow`], [`BlockDataflow`] (the Figure 7(b) rows),
//! * the footprint algebra of Table 2 ([`fused_footprint`],
//!   [`FusedSlices`]),
//! * the analytical cost model ([`CostModel`]) pricing workloads on
//!   `flat-arch` accelerators,
//! * roofline analysis ([`roofline`]) for Figure 2,
//! * the off-chip bandwidth-requirement search ([`bw`]) for Figure 12(b).
//!
//! # Quick start
//!
//! ```
//! use flat_arch::Accelerator;
//! use flat_core::{BlockDataflow, CostModel, Granularity};
//! use flat_workloads::Model;
//!
//! let accel = Accelerator::edge();
//! let block = Model::bert().block(64, 4096);
//! let cm = CostModel::new(&accel);
//!
//! let base = cm.block_cost(&block, &BlockDataflow::base()).total();
//! let flat = cm.block_cost(&block, &BlockDataflow::flat(Granularity::Row(64))).total();
//!
//! assert!(flat.util() > base.util());
//! assert!(flat.traffic.offchip < base.traffic.offchip);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bw;
mod dataflow;
mod footprint;
mod loopnest;
mod model;
pub mod roofline;
pub mod schedule;

pub use loopnest::loop_nest;

pub use dataflow::{
    BlockDataflow, FusedDataflow, FusedEnables, FusedExecution, Granularity, L3Config, LaExecution,
    OperandEnables, OperatorDataflow, ParseDataflowError, Stationarity,
};
pub use footprint::{fused_footprint, fused_footprint_elems, table2_row_elems, FusedSlices};
pub use model::{
    choose_l2_tiling, dram_traffic, gemm_compute, gemm_onchip_traffic, offchip_elems, BlockCost,
    ComputeCost, CostModel, CostReport, DramTraffic, FusedLaneDemands, L2Tiling, ModelOptions,
    OnchipTraffic, PhaseLaneDemands, SequentialLaneDemands, Staging, Traffic,
};
