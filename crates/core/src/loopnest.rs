//! Loop-nest rendering: the Figure 4 view of a dataflow.
//!
//! The paper communicates dataflows as annotated loop nests — Figure 4(a)
//! for the baseline, 4(b) for FLAT. This module generates that exact view
//! for any configured dataflow, with the concrete trip counts of a given
//! workload, so a user can *read* what the cost model priced.

use crate::{BlockDataflow, FusedSlices, Granularity, LaExecution};
use flat_workloads::AttentionConfig;
use std::fmt::Write;

/// Renders the L-A portion of `df` as a Figure 4-style loop nest for the
/// workload `cfg`.
///
/// # Example
///
/// ```
/// use flat_core::{loop_nest, BlockDataflow, Granularity};
/// use flat_workloads::AttentionConfig;
///
/// let cfg = AttentionConfig::self_attention(64, 16, 512, 1024, 4096);
/// let nest = loop_nest(&BlockDataflow::flat(Granularity::Row(64)), &cfg);
/// assert!(nest.contains("FLAT-tile"));
/// assert!(nest.contains("softmax"));
/// ```
#[must_use]
pub fn loop_nest(df: &BlockDataflow, cfg: &AttentionConfig) -> String {
    match &df.la {
        LaExecution::Sequential { .. } => sequential_nest(cfg),
        LaExecution::Fused(fused) => fused_nest(fused.granularity, cfg),
    }
}

fn sequential_nest(cfg: &AttentionConfig) -> String {
    let (b, h, nq, nkv, dk) = (cfg.batch, cfg.heads, cfg.seq_q, cfg.seq_kv, cfg.dk());
    let mut s = String::new();
    let _ = writeln!(
        s,
        "// Baseline (Figure 4(a)): run L to completion, then softmax, then A."
    );
    let _ = writeln!(s, "for b in 0..{b}:                    // batch");
    let _ = writeln!(s, "  for h in 0..{h}:                  // head");
    let _ = writeln!(s, "    for i in 0..{nq}:               // query rows");
    let _ = writeln!(s, "      for j in 0..{nkv}:            // key columns");
    let _ = writeln!(s, "        for k in 0..{dk}:           // contraction");
    let _ = writeln!(s, "          S[b,h,i,j] += Q[b,h,i,k] * K[b,h,j,k]");
    let _ = writeln!(
        s,
        "// S ({} elements) spills to DRAM when it outgrows the SG",
        b * h * nq * nkv
    );
    let _ = writeln!(
        s,
        "softmax(S, axis=j)                  // separate pass over the whole tensor"
    );
    let _ = writeln!(s, "for b in 0..{b}:");
    let _ = writeln!(s, "  for h in 0..{h}:");
    let _ = writeln!(s, "    for i in 0..{nq}:");
    let _ = writeln!(s, "      for d in 0..{dk}:");
    let _ = writeln!(s, "        for j in 0..{nkv}:          // contraction");
    let _ = writeln!(s, "          O[b,h,i,d] += S[b,h,i,j] * V[b,h,j,d]");
    s
}

fn fused_nest(g: Granularity, cfg: &AttentionConfig) -> String {
    let slices = FusedSlices::new(g, cfg);
    let (nkv, dk) = (cfg.seq_kv, cfg.dk());
    let bt = g.batches_per_slice(cfg);
    let ht = g.heads_per_slice(cfg);
    let rows = slices.rows;
    let (b_iters, h_iters, r_iters) = (
        cfg.batch.div_ceil(bt),
        cfg.heads.div_ceil(ht),
        cfg.seq_q.div_ceil(rows),
    );
    let mut s = String::new();
    let _ = writeln!(
        s,
        "// FLAT (Figure 4(b)): cross-loop over {}-granularity FLAT-tiles; the",
        g.label()
    );
    let _ = writeln!(
        s,
        "// logit slice lives and dies inside the on-chip scratchpad."
    );
    let _ = writeln!(
        s,
        "for bt in 0..{b_iters}:             // cross-loop: batch tiles of {bt}"
    );
    let _ = writeln!(
        s,
        "  for ht in 0..{h_iters}:           // cross-loop: head tiles of {ht}"
    );
    let _ = writeln!(
        s,
        "    for rt in 0..{r_iters}:         // cross-loop: row groups of {rows}"
    );
    let _ = writeln!(
        s,
        "      // FLAT-tile: S_slice[{bt}x{ht}x{rows}x{nkv}] = {} elements, SG-resident",
        slices.intermediate
    );
    let _ = writeln!(s, "      // -- stage L (interleaved) --");
    let _ = writeln!(
        s,
        "      for i in 0..{rows}:           // rows of this tile"
    );
    let _ = writeln!(s, "        for j in 0..{nkv}:");
    let _ = writeln!(s, "          for k in 0..{dk}:");
    let _ = writeln!(s, "            S_slice[i,j] += Q[row(rt,i),k] * K[j,k]");
    let _ = writeln!(
        s,
        "      softmax(S_slice, axis=j)       // SFU, complete rows by construction"
    );
    let _ = writeln!(s, "      // -- stage A (interleaved) --");
    let _ = writeln!(s, "      for i in 0..{rows}:");
    let _ = writeln!(s, "        for d in 0..{dk}:");
    let _ = writeln!(s, "          for j in 0..{nkv}:");
    let _ = writeln!(s, "            O[row(rt,i),d] += S_slice[i,j] * V[j,d]");
    let _ = writeln!(s, "      // S_slice discarded: it never visits DRAM");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockDataflow;

    fn cfg() -> AttentionConfig {
        AttentionConfig::self_attention(64, 16, 512, 1024, 4096)
    }

    #[test]
    fn baseline_nest_shows_the_spill() {
        let nest = loop_nest(&BlockDataflow::base(), &cfg());
        assert!(nest.contains("spills to DRAM"));
        assert!(nest.contains("softmax(S, axis=j)"));
        // Whole-tensor element count appears.
        assert!(nest.contains(&(64u64 * 16 * 512 * 512).to_string()));
    }

    #[test]
    fn fused_nest_shows_cross_loops_and_residency() {
        let nest = loop_nest(&BlockDataflow::flat(Granularity::Row(64)), &cfg());
        assert!(nest.contains("row groups of 64"));
        assert!(nest.contains("never visits DRAM"));
        // Slice = 64 rows x 512 columns.
        assert!(nest.contains(&(64u64 * 512).to_string()));
    }

    #[test]
    fn composite_tiles_render_their_extents() {
        let df = BlockDataflow::flat(Granularity::Composite {
            batch_t: 4,
            head_t: 2,
            rows: 32,
        });
        let nest = loop_nest(&df, &cfg());
        assert!(nest.contains("batch tiles of 4"));
        assert!(nest.contains("head tiles of 2"));
        assert!(nest.contains("row groups of 32"));
    }

    #[test]
    fn trip_counts_cover_the_iteration_space() {
        let cfg = cfg();
        for g in [Granularity::Head, Granularity::Row(100)] {
            let nest = loop_nest(&BlockDataflow::flat(g), &cfg);
            // The product of the three cross-loop trip counts equals the
            // iteration count the cost model uses.
            let iters = g.iterations(&cfg);
            // (Spot check via the rendered numbers for Row(100): 6 groups.)
            if let Granularity::Row(100) = g {
                assert!(nest.contains("row groups of 100"));
                assert_eq!(iters, 64 * 16 * 6);
            }
        }
    }
}
