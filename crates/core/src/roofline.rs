//! Roofline analysis (Figure 2): operational intensity vs. attainable
//! performance, with and without on-chip staging.

use flat_arch::Accelerator;
use flat_tensor::OperationalIntensity;
use flat_workloads::{AttentionBlock, OpKind};
use serde::{Deserialize, Serialize};

/// One roofline: a peak-compute ceiling and a bandwidth slope.
///
/// Staging data on-chip swaps the off-chip slope for the on-chip one —
/// Figure 2(c)'s "raised ceiling".
///
/// # Example
///
/// ```
/// use flat_arch::Accelerator;
/// use flat_core::roofline::Roofline;
///
/// let edge = Accelerator::edge();
/// let off = Roofline::offchip(&edge);
/// let on = Roofline::onchip(&edge);
/// // The on-chip roofline's ridge sits 20x further left.
/// assert!(on.ridge_intensity() < off.ridge_intensity());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak compute, FLOP/s.
    pub peak_flops: f64,
    /// Bandwidth of the limiting memory level, bytes/s.
    pub bandwidth: f64,
}

impl Roofline {
    /// Roofline against the off-chip link (data streamed from DRAM).
    #[must_use]
    pub fn offchip(accel: &Accelerator) -> Self {
        Roofline {
            peak_flops: accel.peak_flops(),
            bandwidth: accel.mem.offchip_bytes_per_s,
        }
    }

    /// Roofline against the on-chip interconnect (data staged in the SG).
    #[must_use]
    pub fn onchip(accel: &Accelerator) -> Self {
        Roofline {
            peak_flops: accel.peak_flops(),
            bandwidth: accel.mem.onchip_bytes_per_s,
        }
    }

    /// Attainable performance (FLOP/s) at an operational intensity.
    #[must_use]
    pub fn attainable(&self, oi: &OperationalIntensity) -> f64 {
        oi.attainable_flops(self.peak_flops, self.bandwidth)
    }

    /// Attainable performance as a fraction of peak — directly comparable
    /// to the paper's `Util` metric upper bound.
    #[must_use]
    pub fn attainable_fraction(&self, oi: &OperationalIntensity) -> f64 {
        self.attainable(oi) / self.peak_flops
    }

    /// The ridge point: the operational intensity (FLOP/byte) above which
    /// an operator is compute-bound on this roofline.
    #[must_use]
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_flops / self.bandwidth
    }
}

/// An operator's position on the roofline plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Which attention operator.
    pub kind: OpKind,
    /// Operational intensity, FLOP/byte (compulsory traffic).
    pub intensity: f64,
    /// Attainable fraction of peak against the off-chip roofline.
    pub offchip_fraction: f64,
    /// Attainable fraction of peak against the on-chip roofline (if the
    /// live footprint could be staged — L/A at long N cannot, which is the
    /// paper's point).
    pub onchip_fraction: f64,
}

/// Places each of a block's operators on the accelerator's rooflines
/// (the Figure 2(a)/(c) scatter).
#[must_use]
pub fn block_roofline(block: &AttentionBlock, accel: &Accelerator) -> Vec<RooflinePoint> {
    let dtype = block.config().dtype;
    let off = Roofline::offchip(accel);
    let on = Roofline::onchip(accel);
    block
        .operators()
        .iter()
        .map(|op| {
            let oi = op.gemm.operational_intensity(dtype);
            RooflinePoint {
                kind: op.kind,
                intensity: oi.flops_per_byte(),
                offchip_fraction: off.attainable_fraction(&oi),
                onchip_fraction: on.attainable_fraction(&oi),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_workloads::Model;

    /// Figure 2(a): attention operators sit left of the projections on the
    /// intensity axis.
    #[test]
    fn attention_ops_have_lowest_intensity() {
        let block = Model::bert().block(64, 4096);
        let accel = Accelerator::edge();
        let pts = block_roofline(&block, &accel);
        let get = |k: OpKind| pts.iter().find(|p| p.kind == k).unwrap().intensity;
        assert!(get(OpKind::Logit) < get(OpKind::Query));
        assert!(get(OpKind::Attend) < get(OpKind::FeedForward1));
    }

    /// Figure 2(c): staging on-chip lifts attainable performance for
    /// bandwidth-bound operators.
    #[test]
    fn onchip_roofline_dominates() {
        let block = Model::bert().block(64, 512);
        let accel = Accelerator::edge();
        for p in block_roofline(&block, &accel) {
            assert!(p.onchip_fraction >= p.offchip_fraction, "{:?}", p.kind);
            assert!(p.onchip_fraction <= 1.0 + 1e-12);
        }
    }

    /// Figure 2(b): batching lifts projection intensity but leaves L/A
    /// where they were.
    #[test]
    fn batching_moves_only_projections() {
        let accel = Accelerator::edge();
        let b1 = block_roofline(&Model::bert().block(1, 512), &accel);
        let b64 = block_roofline(&Model::bert().block(64, 512), &accel);
        let get =
            |pts: &[RooflinePoint], k: OpKind| pts.iter().find(|p| p.kind == k).unwrap().intensity;
        assert!(get(&b64, OpKind::Query) > get(&b1, OpKind::Query));
        let l1 = get(&b1, OpKind::Logit);
        let l64 = get(&b64, OpKind::Logit);
        assert!((l1 - l64).abs() / l1 < 1e-9);
    }

    #[test]
    fn ridge_scales_with_bandwidth() {
        let edge = Accelerator::edge();
        assert!(
            (Roofline::offchip(&edge).ridge_intensity()
                / Roofline::onchip(&edge).ridge_intensity()
                - 20.0)
                .abs()
                < 1e-9
        );
    }
}
