//! Off-chip bandwidth requirement search (Figure 12(b)): the smallest
//! DRAM bandwidth at which a dataflow sustains a target utilization.

use crate::{BlockDataflow, CostModel, ModelOptions};
use flat_arch::Accelerator;
use flat_workloads::{AttentionBlock, Scope};

/// Bounds of the bandwidth bisection, bytes/s.
const BW_LO: f64 = 1.0e8; // 100 MB/s
const BW_HI: f64 = 1.0e14; // 100 TB/s

/// Utilization of `df` on `accel` with its off-chip bandwidth replaced.
#[must_use]
pub fn util_at_bw(
    accel: &Accelerator,
    block: &AttentionBlock,
    df: &BlockDataflow,
    scope: Scope,
    offchip_bytes_per_s: f64,
) -> f64 {
    let accel = accel.with_offchip_bw(offchip_bytes_per_s);
    CostModel::with_options(&accel, ModelOptions::default())
        .scope_cost(block, df, scope)
        .util()
}

/// Finds the minimum off-chip bandwidth (bytes/s) at which `df` reaches
/// `target_util` at `scope`, by bisection. Returns `None` if even
/// the 100 TB/s search ceiling cannot reach the target (the dataflow is compute- or
/// NoC-limited below it).
///
/// Utilization is monotone non-decreasing in off-chip bandwidth — more
/// bandwidth never slows the modeled accelerator — so bisection is exact
/// to the returned tolerance (±2%).
///
/// # Example
///
/// ```
/// use flat_arch::Accelerator;
/// use flat_core::bw::required_offchip_bw;
/// use flat_core::{BlockDataflow, Granularity};
/// use flat_workloads::{Model, Scope};
///
/// let accel = Accelerator::cloud();
/// let block = Model::xlm().block(64, 4096);
/// let flat = required_offchip_bw(
///     &accel, &block, &BlockDataflow::flat(Granularity::Row(1024)), Scope::LogitAttend, 0.9,
/// );
/// let base = required_offchip_bw(
///     &accel, &block, &BlockDataflow::base(), Scope::LogitAttend, 0.9,
/// );
/// match (flat, base) {
///     (Some(f), Some(b)) => assert!(f < b),
///     (Some(_), None) => {} // base can't reach 0.9 at any bandwidth
///     _ => panic!("FLAT must reach the target"),
/// }
/// ```
#[must_use]
pub fn required_offchip_bw(
    accel: &Accelerator,
    block: &AttentionBlock,
    df: &BlockDataflow,
    scope: Scope,
    target_util: f64,
) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&target_util),
        "target utilization must be in [0, 1]"
    );
    if util_at_bw(accel, block, df, scope, BW_HI) < target_util {
        return None;
    }
    let (mut lo, mut hi) = (BW_LO, BW_HI);
    // ~40 halvings of a 6-decade range: well under 2% relative error.
    for _ in 0..40 {
        let mid = (lo * hi).sqrt();
        if util_at_bw(accel, block, df, scope, mid) >= target_util {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi / lo < 1.02 {
            break;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Granularity;
    use flat_workloads::Model;

    #[test]
    fn util_monotone_in_bandwidth() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 4096);
        let df = BlockDataflow::base();
        let mut last = 0.0;
        for bw in [1.0e9, 1.0e10, 1.0e11, 1.0e12, 1.0e13] {
            let u = util_at_bw(&accel, &block, &df, Scope::LogitAttend, bw);
            assert!(u >= last - 1e-9, "util not monotone at {bw}: {u} < {last}");
            last = u;
        }
    }

    /// Figure 12(b)'s core claim: FLAT needs far less off-chip bandwidth
    /// than the sequential baseline to sustain high utilization.
    #[test]
    fn flat_needs_less_bandwidth_than_base() {
        let accel = Accelerator::cloud();
        let block = Model::xlm().block(64, 8192);
        let flat = required_offchip_bw(
            &accel,
            &block,
            &BlockDataflow::flat(Granularity::Row(512)),
            Scope::LogitAttend,
            0.9,
        )
        .expect("FLAT reaches 0.9");
        if let Some(base) = required_offchip_bw(
            &accel,
            &block,
            &BlockDataflow::base(),
            Scope::LogitAttend,
            0.9,
        ) {
            assert!(flat < base * 0.5, "flat {flat} vs base {base}");
        }
    }

    #[test]
    fn unreachable_target_returns_none() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        // Util 1.0 exactly is unreachable: NoC overhead always exists.
        let res = required_offchip_bw(
            &accel,
            &block,
            &BlockDataflow::base(),
            Scope::LogitAttend,
            1.0,
        );
        assert!(res.is_none());
    }

    #[test]
    #[should_panic(expected = "target utilization")]
    fn invalid_target_rejected() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(1, 128);
        let _ = required_offchip_bw(
            &accel,
            &block,
            &BlockDataflow::base(),
            Scope::LogitAttend,
            1.5,
        );
    }
}
