//! Property tests on the cost model: invariants that must hold for every
//! workload, dataflow, and accelerator configuration.

use flat_arch::Accelerator;
use flat_core::{
    fused_footprint, BlockDataflow, CostModel, FusedDataflow, Granularity, ModelOptions,
    OperatorDataflow, Stationarity,
};
use flat_tensor::Bytes;
use flat_workloads::{AttentionBlock, AttentionConfig};
use proptest::prelude::*;

/// Random attention configurations in the realistic range (powers of two
/// keep the runtime reasonable; the model accepts anything).
fn configs() -> impl Strategy<Value = AttentionConfig> {
    (
        1u64..=8,                                      // batch (scaled down for speed)
        prop::sample::select(vec![1u64, 2, 4, 8, 16]), // heads
        prop::sample::select(vec![64u64, 128, 256, 512, 1024, 4096]), // seq
        prop::sample::select(vec![256u64, 512, 1024, 2048]), // hidden
    )
        .prop_filter("heads divide hidden", |(_, h, _, d)| {
            d % h == 0 && d / h >= 8
        })
        .prop_map(|(b, h, n, d)| AttentionConfig::self_attention(b, h, n, d, 4 * d))
}

fn granularities() -> impl Strategy<Value = Granularity> {
    prop_oneof![
        Just(Granularity::BatchMultiHead),
        Just(Granularity::Batch),
        Just(Granularity::Head),
        (1u64..512).prop_map(Granularity::Row),
        (1u64..4, 1u64..8, 1u64..256).prop_map(|(b, h, r)| Granularity::Composite {
            batch_t: b,
            head_t: h,
            rows: r
        }),
    ]
}

fn accelerators() -> impl Strategy<Value = Accelerator> {
    (
        prop::sample::select(vec![8u64, 16, 32, 64]),
        prop::sample::select(vec![64u64, 256, 1024, 8192]), // sg KiB
        1.0e10f64..1.0e12,                                  // offchip B/s
    )
        .prop_map(|(pe, sg, bw)| {
            Accelerator::builder("prop")
                .pe(pe, pe)
                .sg(Bytes::from_kib(sg))
                .memory(flat_arch::MemorySystem::new(bw * 20.0, bw))
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Utilization is always in (0, 1] and runtime never beats ideal.
    #[test]
    fn util_bounded(cfg in configs(), g in granularities(), accel in accelerators()) {
        let block = AttentionBlock::new(cfg);
        let cm = CostModel::new(&accel);
        let r = cm.fused_la_cost(&block, &FusedDataflow::new(g));
        prop_assert!(r.cycles >= r.ideal_cycles - 1e-6, "{} < {}", r.cycles, r.ideal_cycles);
        prop_assert!(r.util() > 0.0 && r.util() <= 1.0);
    }

    /// The fused operator executes exactly the algorithmic MAC count —
    /// 2·B·N²·D — regardless of granularity, enables, or hardware.
    #[test]
    fn fused_macs_invariant(cfg in configs(), g in granularities(), accel in accelerators()) {
        let block = AttentionBlock::new(cfg);
        let r = CostModel::new(&accel).fused_la_cost(&block, &FusedDataflow::new(g));
        prop_assert_eq!(
            r.activity.macs,
            2 * cfg.batch * cfg.seq_q * cfg.seq_kv * cfg.hidden
        );
    }

    /// Everything that crosses the off-chip link also crosses the on-chip
    /// interconnect (DRAM data passes through the SG).
    #[test]
    fn onchip_at_least_offchip(cfg in configs(), g in granularities(), accel in accelerators()) {
        let block = AttentionBlock::new(cfg);
        let cm = CostModel::new(&accel);
        for df in [
            BlockDataflow::flat(g),
            BlockDataflow::base(),
        ] {
            let r = cm.la_cost(&block, &df.la);
            prop_assert!(r.traffic.onchip >= r.traffic.offchip, "{}", df.label());
        }
    }

    /// More off-chip bandwidth never increases a fixed dataflow's runtime.
    #[test]
    fn bandwidth_monotone(cfg in configs(), g in granularities()) {
        let block = AttentionBlock::new(cfg);
        let accel = Accelerator::edge();
        let mut last = f64::INFINITY;
        for bw in [25.0e9, 100.0e9, 400.0e9, 1.6e12] {
            let a = accel.with_offchip_bw(bw);
            let r = CostModel::new(&a).fused_la_cost(&block, &FusedDataflow::new(g));
            prop_assert!(r.cycles <= last * (1.0 + 1e-9), "bw {bw}: {} > {last}", r.cycles);
            last = r.cycles;
        }
    }

    /// Table 2's scaling law, generalized: the R-Gran footprint is
    /// monotone in R, and coarse granularities dominate fine ones.
    #[test]
    fn footprint_monotone_in_granularity(cfg in configs(), r in 1u64..256) {
        let fp = |g| fused_footprint(&FusedDataflow::new(g), &cfg);
        prop_assert!(fp(Granularity::Row(r)) <= fp(Granularity::Row(2 * r)));
        prop_assert!(fp(Granularity::Row(r)) <= fp(Granularity::Head));
        prop_assert!(fp(Granularity::Head) <= fp(Granularity::Batch));
        prop_assert!(fp(Granularity::Batch) <= fp(Granularity::BatchMultiHead));
    }

    /// A streamed baseline moves at least the compulsory traffic: both
    /// inputs in, output out, intermediate round trip.
    #[test]
    fn base_traffic_at_least_compulsory(cfg in configs()) {
        let block = AttentionBlock::new(cfg);
        let accel = Accelerator::edge();
        let r = CostModel::new(&accel).la_cost(&block, &BlockDataflow::base().la);
        let e = cfg.dtype.size_bytes();
        let io = (2 * cfg.batch * cfg.heads * (cfg.seq_q + cfg.seq_kv) * cfg.dk()
            + 2 * cfg.logit_elements())
            * e;
        prop_assert!(r.traffic.offchip.as_u64() >= io, "{} < {io}", r.traffic.offchip);
    }

    /// Schedules decompose the exact cost: makespan equals la_cost cycles
    /// and phases tile the timeline without gaps.
    #[test]
    fn schedule_consistency(cfg in configs(), g in granularities()) {
        let block = AttentionBlock::new(cfg);
        let accel = Accelerator::edge();
        let cm = CostModel::new(&accel);
        let df = BlockDataflow::flat(g);
        let sched = cm.la_schedule(&block, &df);
        let cost = cm.la_cost(&block, &df.la);
        prop_assert!((sched.makespan() - cost.cycles).abs() <= 1e-6 * cost.cycles.max(1.0));
        let mut t = 0.0;
        for p in &sched.phases {
            prop_assert!((p.start - t).abs() < 1e-6);
            t = p.end;
        }
    }

    /// Sequential L-A: disabling double buffering never speeds things up.
    #[test]
    fn double_buffering_never_hurts(cfg in configs(), accel in accelerators()) {
        let block = AttentionBlock::new(cfg);
        let df = OperatorDataflow::baseline(Stationarity::Weight);
        let with = CostModel::new(&accel).sequential_la_cost(&block, &df, &df);
        let without = CostModel::with_options(
            &accel,
            ModelOptions { double_buffered: false, overlap_softmax: false, ..Default::default() },
        )
        .sequential_la_cost(&block, &df, &df);
        prop_assert!(with.cycles <= without.cycles * (1.0 + 1e-9));
    }

    /// Energy is monotone in DRAM traffic for matched compute: of two
    /// fused runs with identical MACs, the one moving more off-chip bytes
    /// costs at least as much DRAM energy.
    #[test]
    fn energy_tracks_dram_traffic(cfg in configs(), g1 in granularities(), g2 in granularities()) {
        let block = AttentionBlock::new(cfg);
        let accel = Accelerator::edge();
        let cm = CostModel::new(&accel);
        let a = cm.fused_la_cost(&block, &FusedDataflow::new(g1));
        let b = cm.fused_la_cost(&block, &FusedDataflow::new(g2));
        if a.traffic.offchip >= b.traffic.offchip {
            prop_assert!(a.energy.dram_pj >= b.energy.dram_pj - 1e-6);
        }
    }

    /// At real sequence lengths some fused point beats the streamed
    /// baseline; at tiny ones fusion's per-tile overhead may lose — but
    /// never catastrophically (and the Full DSE space contains the
    /// sequential points, so FLAT-opt ≥ Base-opt regardless — see the
    /// flat-dse tests).
    #[test]
    fn some_fused_point_matches_base(cfg in configs()) {
        let block = AttentionBlock::new(cfg);
        let accel = Accelerator::edge();
        let cm = CostModel::new(&accel);
        let base = cm.la_cost(&block, &BlockDataflow::base().la);
        let best_fused = [
            Granularity::Row(16.min(cfg.seq_q)),
            Granularity::Row(64.min(cfg.seq_q)),
            Granularity::Head,
        ]
        .into_iter()
        .map(|g| cm.fused_la_cost(&block, &FusedDataflow::new(g)).cycles)
        .fold(f64::INFINITY, f64::min);
        // The tight bound needs a workload big enough to amortize the
        // per-tile overhead: real sequence lengths and more than a couple
        // of (batch, head) groups.
        let slack =
            if cfg.seq_q >= 512 && cfg.batch * cfg.heads >= 4 { 1.05 } else { 2.5 };
        prop_assert!(
            best_fused <= base.cycles * slack,
            "fused {best_fused} vs base {} (seq {})",
            base.cycles,
            cfg.seq_q
        );
    }
}

/// Deterministic regression: the fused cost at a pinned configuration
/// stays stable (guards against silent model drift).
#[test]
fn pinned_point_regression() {
    let accel = Accelerator::edge();
    let block = flat_workloads::Model::bert().block(64, 512);
    let r = CostModel::new(&accel).fused_la_cost(&block, &FusedDataflow::new(Granularity::Row(64)));
    // Ideal cycles are exact by construction.
    assert_eq!(r.ideal_cycles, 2.0 * 64.0 * 512.0 * 512.0 * 768.0 / 1024.0);
    // Utilization band: recalibrate deliberately, not accidentally.
    assert!(r.util() > 0.93 && r.util() <= 1.0, "util = {}", r.util());
}
