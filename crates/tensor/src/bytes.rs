//! A memory quantity with arithmetic and human-readable formatting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A number of bytes.
///
/// Used for buffer capacities, tensor footprints, and traffic volumes.
/// Formats as a human-readable quantity (`512.0 KiB`, `6.6 GiB`) matching the
/// way the paper reports buffer requirements (Table 1).
///
/// # Example
///
/// ```
/// use flat_tensor::Bytes;
///
/// let sg = Bytes::from_kib(512);
/// assert_eq!(sg.as_u64(), 512 * 1024);
/// assert_eq!(sg.to_string(), "512.0 KiB");
/// assert!(Bytes::from_mib(32) > sg);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    #[must_use]
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a byte count from binary kilobytes.
    #[must_use]
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Creates a byte count from binary megabytes.
    #[must_use]
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Creates a byte count from binary gigabytes.
    #[must_use]
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as `f64` (for rates and ratios).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Byte count in binary kilobytes.
    #[must_use]
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Byte count in binary megabytes.
    #[must_use]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Byte count in binary gigabytes.
    #[must_use]
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two byte counts.
    #[must_use]
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    /// Returns the larger of two byte counts.
    #[must_use]
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }

    /// True when the count is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl From<u64> for Bytes {
    fn from(bytes: u64) -> Self {
        Bytes(bytes)
    }
}

impl From<Bytes> for u64 {
    fn from(bytes: Bytes) -> Self {
        bytes.0
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    /// # Panics
    ///
    /// Panics on underflow in debug builds, like integer subtraction. Use
    /// [`Bytes::saturating_sub`] when the difference may be negative.
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: f64 = 1024.0;
        const MIB: f64 = 1024.0 * 1024.0;
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        let b = self.0 as f64;
        if b >= GIB {
            write!(f, "{:.1} GiB", b / GIB)
        } else if b >= MIB {
            write!(f, "{:.1} MiB", b / MIB)
        } else if b >= KIB {
            write!(f, "{:.1} KiB", b / KIB)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::from_gib(1).as_u64(), 1 << 30);
    }

    #[test]
    fn display_picks_sane_unit() {
        assert_eq!(Bytes::new(100).to_string(), "100 B");
        assert_eq!(Bytes::from_kib(512).to_string(), "512.0 KiB");
        assert_eq!(Bytes::from_mib(32).to_string(), "32.0 MiB");
        assert_eq!(Bytes::from_gib(2).to_string(), "2.0 GiB");
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Bytes::from_kib(3);
        let b = Bytes::from_kib(1);
        assert_eq!(a + b, Bytes::from_kib(4));
        assert_eq!(a - b, Bytes::from_kib(2));
        assert_eq!(b * 4, Bytes::from_kib(4));
        assert_eq!(a / 3, Bytes::from_kib(1));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Bytes = (1..=4).map(Bytes::from_kib).sum();
        assert_eq!(total, Bytes::from_kib(10));
    }

    #[test]
    fn min_max() {
        let a = Bytes::new(10);
        let b = Bytes::new(20);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
