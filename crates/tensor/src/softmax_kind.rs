//! Selector for the softmax algorithm family.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which softmax algorithm a kernel (and the cost model pricing it) uses.
///
/// The three kinds differ in which special-function operations remain in
/// the inner loop, which is what the SFU and energy models charge for:
///
/// * [`Exact`](SoftmaxKind::Exact) — the reference two-pass row softmax:
///   max, `exp`, sum, then a divide pass over the row.
/// * [`FlashD`](SoftmaxKind::FlashD) — FLASH-D-style online softmax that
///   folds the division into the accumulation recurrence
///   (`o ← o + (w/s')·(v − o)`): the output is *always normalized*, the
///   per-row divide pass disappears, and only one reciprocal per absorbed
///   chunk remains.
/// * [`LogLut`](SoftmaxKind::LogLut) — H-FA-style hybrid log-domain
///   softmax: logits move to base-2 log domain, `exp` becomes an exponent
///   add plus a small `2^frac` lookup table, and the normalizer is carried
///   as `log2(sum)` via LUT-based log-domain additions — no `exp` and no
///   divider in the loop at all.
///
/// # Example
///
/// ```
/// use flat_tensor::SoftmaxKind;
///
/// assert_eq!(SoftmaxKind::parse("flash-d"), Ok(SoftmaxKind::FlashD));
/// assert_eq!(SoftmaxKind::default(), SoftmaxKind::Exact);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SoftmaxKind {
    /// Two-pass reference softmax (max + exp + sum, then divide).
    Exact,
    /// FLASH-D: division folded into the accumulation recurrence.
    FlashD,
    /// H-FA: log2-domain adds with a small LUT replacing exp and div.
    LogLut,
}

impl SoftmaxKind {
    /// All kinds, reference first.
    #[must_use]
    pub const fn all() -> &'static [SoftmaxKind] {
        &[SoftmaxKind::Exact, SoftmaxKind::FlashD, SoftmaxKind::LogLut]
    }

    /// Parses the lowercase display name.
    ///
    /// # Errors
    ///
    /// Returns the list of valid names when `s` matches none.
    pub fn parse(s: &str) -> Result<SoftmaxKind, String> {
        match s {
            "exact" => Ok(SoftmaxKind::Exact),
            "flash-d" => Ok(SoftmaxKind::FlashD),
            "log-lut" => Ok(SoftmaxKind::LogLut),
            other => Err(format!(
                "unknown softmax kind '{other}' (expected one of: exact, flash-d, log-lut)"
            )),
        }
    }

    /// True when the inner loop still contains a hardware `exp`.
    #[must_use]
    pub const fn uses_exp(self) -> bool {
        matches!(self, SoftmaxKind::Exact | SoftmaxKind::FlashD)
    }

    /// True when a per-row divide pass remains (only the reference kind).
    #[must_use]
    pub const fn uses_divide_pass(self) -> bool {
        matches!(self, SoftmaxKind::Exact)
    }
}

impl Default for SoftmaxKind {
    /// The reference two-pass softmax, matching all pre-existing behavior.
    fn default() -> Self {
        SoftmaxKind::Exact
    }
}

impl fmt::Display for SoftmaxKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SoftmaxKind::Exact => "exact",
            SoftmaxKind::FlashD => "flash-d",
            SoftmaxKind::LogLut => "log-lut",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for &k in SoftmaxKind::all() {
            assert_eq!(SoftmaxKind::parse(&k.to_string()), Ok(k));
        }
        assert!(SoftmaxKind::parse("softmax").is_err());
    }

    #[test]
    fn op_census_matches_the_family_definitions() {
        assert!(SoftmaxKind::Exact.uses_exp() && SoftmaxKind::Exact.uses_divide_pass());
        assert!(SoftmaxKind::FlashD.uses_exp() && !SoftmaxKind::FlashD.uses_divide_pass());
        assert!(!SoftmaxKind::LogLut.uses_exp() && !SoftmaxKind::LogLut.uses_divide_pass());
    }
}
