//! Software half-width floating point: `f16`/`bf16` bit conversions and
//! packed storage.
//!
//! The workspace is vendored-only (no `half` crate), so the conversions are
//! implemented directly on the IEEE 754 bit patterns. All narrowing uses
//! round-to-nearest-even, matching hardware convert units. [`PackedBuf`]
//! holds a tensor's elements at 16 bits each; compute kernels stream the
//! raw `u16` words and widen to `f32` in registers, so a cache line carries
//! twice the elements of an `f32` layout (the "widening load" the FLAT
//! microkernels exploit for QK^T and PV panels).

use crate::{Bytes, DataType};

/// Narrows an `f32` to IEEE 754 binary16 bits (round-to-nearest-even).
///
/// Overflow saturates to infinity; values below the smallest f16 normal
/// round into the subnormal range; NaN stays NaN (quiet, payload kept).
///
/// # Example
///
/// ```
/// use flat_tensor::half::{f16_bits_to_f32, f32_to_f16_bits};
///
/// assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
/// assert_eq!(f16_bits_to_f32(0x3C00), 1.0);
/// assert_eq!(f32_to_f16_bits(65536.0), 0x7C00); // +inf: above f16 max
/// ```
#[must_use]
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7fff_ffff;
    if abs >= 0x7f80_0000 {
        // Inf or NaN. Force the quiet bit so a NaN whose payload lives
        // entirely in the truncated bits cannot collapse to infinity.
        let payload = if abs > 0x7f80_0000 {
            0x0200 | ((abs >> 13) & 0x03ff) as u16
        } else {
            0
        };
        sign | 0x7c00 | payload
    } else if abs >= 0x4780_0000 {
        // Magnitude >= 2^16: past the largest finite f16 (65504).
        sign | 0x7c00
    } else if abs < 0x3880_0000 {
        // Below 2^-14: f16 subnormal or zero. Scale into units of the
        // subnormal ulp (2^-24) and let the float adder round to nearest
        // even: adding 2^23 aligns the integer part with the mantissa lsb.
        let v = f32::from_bits(abs) * 16_777_216.0; // x · 2^24, exact
        let r = (v + 8_388_608.0).to_bits() & 0x07ff;
        sign | r as u16
    } else {
        // Normal range: re-bias the exponent from 127 to 15 and round the
        // mantissa from 23 to 10 bits (half-ulp bias plus the sticky lsb
        // gives nearest-even; a mantissa carry ripples into the exponent,
        // which is exactly the correct behaviour, including 65520 -> inf).
        let rounded = abs + 0x0fff + ((abs >> 13) & 1);
        sign | ((rounded - 0x3800_0000) >> 13) as u16
    }
}

/// Widens IEEE 754 binary16 bits to `f32` (exact — every f16 value is
/// representable in f32).
#[must_use]
pub fn f16_bits_to_f32(h: u16) -> f32 {
    // Exponent/mantissa shift with two fix-ups (inf/NaN and subnormals).
    let mut o = ((h as u32) & 0x7fff) << 13;
    let exp = o & 0x0f80_0000; // f16 exponent field, now in f32 position
    o += (127 - 15) << 23; // re-bias
    if exp == 0x0f80_0000 {
        // Inf/NaN: push the exponent to 255.
        o += (128 - 16) << 23;
    } else if exp == 0 {
        // Zero/subnormal: renormalize by one extra exponent step and
        // subtract the magic constant the mantissa bits now sit on.
        o += 1 << 23;
        o = (f32::from_bits(o) - f32::from_bits(0x3880_0000)).to_bits();
    }
    f32::from_bits(o | ((h as u32) & 0x8000) << 16)
}

/// Narrows an `f32` to bfloat16 bits (round-to-nearest-even).
///
/// bf16 is the f32 format truncated to an 8-bit mantissa, so the
/// conversion is a rounded shift; exponent range is identical to f32.
#[must_use]
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Keep NaN quiet rather than letting the rounding carry turn the
        // payload into infinity.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let rounding_bias = 0x7fff + ((bits >> 16) & 1);
    (bits.wrapping_add(rounding_bias) >> 16) as u16
}

/// Widens bfloat16 bits to `f32` (exact: a 16-bit left shift).
#[inline]
#[must_use]
pub const fn bf16_bits_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// Rounds an `f32` through f16 storage and back.
#[must_use]
pub fn round_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Rounds an `f32` through bf16 storage and back.
#[must_use]
pub fn round_bf16(x: f32) -> f32 {
    bf16_bits_to_f32(f32_to_bf16_bits(x))
}

/// Rounds an `f32` to the storage precision of `dtype`.
///
/// `Fp32` is the identity; `Int8` is *not* representable as a pure
/// element-wise rounding (it needs a tensor-level scale) and is rejected.
///
/// # Panics
///
/// Panics for [`DataType::Int8`].
#[must_use]
pub fn round_to(dtype: DataType, x: f32) -> f32 {
    match dtype {
        DataType::Fp32 => x,
        DataType::Fp16 => round_f16(x),
        DataType::Bf16 => round_bf16(x),
        DataType::Int8 => panic!("int8 rounding requires a tensor-level scale; use quantization"),
    }
}

/// A tensor's elements packed at 16 bits per element.
///
/// This is real narrow storage, not rounded-`f32` emulation: the buffer
/// holds `u16` words in row-major order, half the bytes of the `f32`
/// equivalent. Kernels read the words and widen in registers.
///
/// # Example
///
/// ```
/// use flat_tensor::half::PackedBuf;
/// use flat_tensor::{Bytes, DataType};
///
/// let p = PackedBuf::from_f32(DataType::Bf16, &[1.0, -2.5, 0.125]);
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.size(), Bytes::new(6));
/// assert_eq!(p.get(2), 0.125);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedBuf {
    dtype: DataType,
    bits: Vec<u16>,
}

impl PackedBuf {
    /// Packs a slice of `f32` values at the given 16-bit precision.
    ///
    /// # Panics
    ///
    /// Panics unless `dtype` is [`DataType::Fp16`] or [`DataType::Bf16`].
    #[must_use]
    pub fn from_f32(dtype: DataType, values: &[f32]) -> Self {
        let bits = match dtype {
            DataType::Fp16 => values.iter().map(|&x| f32_to_f16_bits(x)).collect(),
            DataType::Bf16 => values.iter().map(|&x| f32_to_bf16_bits(x)).collect(),
            other => panic!("PackedBuf holds 16-bit floats, not {other}"),
        };
        PackedBuf { dtype, bits }
    }

    /// The storage precision.
    #[must_use]
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the buffer holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Storage footprint of the packed buffer.
    #[must_use]
    pub fn size(&self) -> Bytes {
        Bytes::new(self.bits.len() as u64 * self.dtype.size_bytes())
    }

    /// The raw packed words (what a widening load streams).
    #[must_use]
    pub fn as_bits(&self) -> &[u16] {
        &self.bits
    }

    /// Decodes one element.
    #[must_use]
    pub fn get(&self, i: usize) -> f32 {
        match self.dtype {
            DataType::Bf16 => bf16_bits_to_f32(self.bits[i]),
            _ => f16_bits_to_f32(self.bits[i]),
        }
    }

    /// Widens `bits[offset..offset + out.len()]` into `out`.
    ///
    /// This is the software model of a widening load: one pass over packed
    /// words producing `f32` lanes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn decode_into(&self, offset: usize, out: &mut [f32]) {
        let src = &self.bits[offset..offset + out.len()];
        match self.dtype {
            DataType::Bf16 => {
                for (o, &b) in out.iter_mut().zip(src) {
                    *o = bf16_bits_to_f32(b);
                }
            }
            _ => {
                for (o, &b) in out.iter_mut().zip(src) {
                    *o = f16_bits_to_f32(b);
                }
            }
        }
    }

    /// Decodes the whole buffer into a fresh `f32` vector.
    #[must_use]
    pub fn to_f32(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.bits.len()];
        self.decode_into(0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_known_values() {
        for &(f, h) in &[
            (0.0f32, 0x0000u16),
            (1.0, 0x3c00),
            (-2.0, 0xc000),
            (0.5, 0x3800),
            (65504.0, 0x7bff),
            (6.103_515_6e-5, 0x0400), // smallest normal
            (5.960_464_5e-8, 0x0001), // smallest subnormal
            (f32::INFINITY, 0x7c00),
        ] {
            assert_eq!(f32_to_f16_bits(f), h, "{f}");
            assert_eq!(f16_bits_to_f32(h), f, "0x{h:04x}");
        }
    }

    #[test]
    fn f16_round_trip_is_exact_on_representables() {
        // Every finite f16 bit pattern must survive decode -> encode.
        for h in 0..=0xffffu16 {
            let exp = (h >> 10) & 0x1f;
            if exp == 0x1f {
                continue; // inf/NaN handled separately
            }
            assert_eq!(f32_to_f16_bits(f16_bits_to_f32(h)), h, "0x{h:04x}");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1.0 + ulp/2 is a tie: rounds to even mantissa (stays 1.0).
        let ulp = f16_bits_to_f32(0x3c01) - 1.0;
        assert_eq!(f32_to_f16_bits(1.0 + ulp * 0.5), 0x3c00);
        // The next tie rounds *up* to even.
        assert_eq!(f32_to_f16_bits(1.0 + ulp * 1.5), 0x3c02);
        // Just past the tie rounds up.
        assert_eq!(f32_to_f16_bits(1.0 + ulp * 0.51), 0x3c01);
    }

    #[test]
    fn f16_overflow_and_nan() {
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00, "rounds past max to inf");
        assert_eq!(f32_to_f16_bits(65519.0), 0x7bff, "max finite below tie");
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        assert_eq!(f16_bits_to_f32(0xfc00), f32::NEG_INFINITY);
    }

    #[test]
    fn bf16_matches_truncated_f32_format() {
        assert_eq!(f32_to_bf16_bits(1.0), 0x3f80);
        assert_eq!(bf16_bits_to_f32(0x3f80), 1.0);
        assert_eq!(round_bf16(-0.0), 0.0);
        assert!(round_bf16(f32::NAN).is_nan());
        assert_eq!(round_bf16(f32::INFINITY), f32::INFINITY);
        // bf16 keeps the f32 exponent range: no overflow at f16's limit.
        assert_eq!(round_bf16(65536.0), 65536.0);
    }

    #[test]
    fn bf16_relative_error_bounded_by_epsilon() {
        let mut x = 1.1e-30f32;
        while x < 1e30 {
            let r = round_bf16(x);
            assert!(((r - x) / x).abs() <= 1.0 / 256.0, "{x} -> {r}");
            x *= 3.7;
        }
    }

    #[test]
    fn packed_buf_halves_the_footprint() {
        let vals: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        for dt in [DataType::Fp16, DataType::Bf16] {
            let p = PackedBuf::from_f32(dt, &vals);
            assert_eq!(p.size().as_u64() * 2, vals.len() as u64 * 4);
            let back = p.to_f32();
            for (a, b) in vals.iter().zip(&back) {
                assert!((a - b).abs() <= 1.0 / 128.0, "{a} vs {b}");
                assert_eq!(round_to(dt, *a), *b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "16-bit")]
    fn packed_buf_rejects_f32() {
        let _ = PackedBuf::from_f32(DataType::Fp32, &[1.0]);
    }

    #[test]
    fn round_to_is_identity_for_f32() {
        assert_eq!(round_to(DataType::Fp32, 1.234_567_8), 1.234_567_8);
    }
}
