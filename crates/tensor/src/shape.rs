//! Dense tensor extents.

use crate::{Bytes, DataType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The extent of a dense tensor, e.g. `[B, H, N, N]` for the logit tensor.
///
/// A `Shape` knows how many elements it holds and how many bytes those
/// elements occupy at a given [`DataType`]; the buffer model in `flat-core`
/// is built on these two queries.
///
/// # Example
///
/// ```
/// use flat_tensor::{DataType, Shape};
///
/// // The intermediate (logit) tensor for B=64, H=16, N=512.
/// let logits = Shape::new([64, 16, 512, 512]);
/// assert_eq!(logits.elements(), 64 * 16 * 512 * 512);
/// assert_eq!(logits.size(DataType::Fp16).as_u64(), logits.elements() * 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<u64>);

impl Shape {
    /// Creates a shape from its per-dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero — zero-extent tensors have no meaning in
    /// the cost model and almost always indicate a configuration bug.
    #[must_use]
    pub fn new<I: IntoIterator<Item = u64>>(dims: I) -> Self {
        let dims: Vec<u64> = dims.into_iter().collect();
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape extents must be positive, got {dims:?}"
        );
        Shape(dims)
    }

    /// A scalar (rank-0) shape with a single element.
    #[must_use]
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Per-dimension extents.
    #[must_use]
    pub fn dims(&self) -> &[u64] {
        &self.0
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.0.iter().product()
    }

    /// Storage footprint at the given precision.
    #[must_use]
    pub fn size(&self, dtype: DataType) -> Bytes {
        Bytes::new(self.elements() * dtype.size_bytes())
    }

    /// Returns a new shape with `extent` appended as the innermost dimension.
    #[must_use]
    pub fn with_inner(&self, extent: u64) -> Shape {
        let mut dims = self.0.clone();
        dims.push(extent);
        Shape::new(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<u64> for Shape {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Shape::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_is_product_of_dims() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.elements(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_has_one_element() {
        assert_eq!(Shape::scalar().elements(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn size_scales_with_dtype() {
        let s = Shape::new([8, 8]);
        assert_eq!(s.size(DataType::Int8).as_u64(), 64);
        assert_eq!(s.size(DataType::Fp32).as_u64(), 256);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _ = Shape::new([4, 0]);
    }

    #[test]
    fn with_inner_appends() {
        let s = Shape::new([2, 3]).with_inner(5);
        assert_eq!(s.dims(), &[2, 3, 5]);
    }

    #[test]
    fn display_looks_like_a_list() {
        assert_eq!(
            Shape::new([64, 16, 512, 512]).to_string(),
            "[64, 16, 512, 512]"
        );
    }
}
