//! Batched GEMM descriptors and operational-intensity analysis.

use crate::{Bytes, DataType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A batched matrix multiplication `C[b] = A[b] · B[b]` with
/// `A: [m, k]`, `B: [k, n]`, `C: [m, n]`, repeated `batch` times.
///
/// Every operator in an attention layer reduces to this descriptor:
///
/// * **Q/K/V/O** (activation-weight): `batch = B`, `m = N`, `k = D`, `n = D`,
///   with [`weight_shared`](Gemm::weight_shared) set — the `[D, D]` weight is
///   the *same* matrix for every sample in the batch, which is exactly the
///   reuse opportunity batching exploits (§2.2).
/// * **L** (activation-activation): `batch = B·H`, `m = N`, `k = dk`,
///   `n = N`, weights *not* shared — each (batch, head) pair brings its own
///   key matrix, which is why batching cannot raise the operational
///   intensity of attention operators.
/// * **A**: `batch = B·H`, `m = N`, `k = N`, `n = dk`, not shared.
///
/// # Example
///
/// ```
/// use flat_tensor::Gemm;
///
/// let q = Gemm::with_shared_weight(64, 512, 1024, 1024);
/// let l = Gemm::new(64 * 16, 512, 64, 512);
/// // Batching helps Q (weight amortized) but cannot help L.
/// assert!(q.operational_intensity(Default::default()).flops_per_byte()
///     > l.operational_intensity(Default::default()).flops_per_byte());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gemm {
    /// Number of independent matrix products.
    pub batch: u64,
    /// Rows of `A` and `C`.
    pub m: u64,
    /// Contraction dimension (columns of `A`, rows of `B`).
    pub k: u64,
    /// Columns of `B` and `C`.
    pub n: u64,
    /// When true, operand `B` is a weight shared across the batch dimension
    /// (activation-weight operator); when false each batch has a unique `B`
    /// (activation-activation operator).
    pub weight_shared: bool,
}

impl Gemm {
    /// Creates an activation-activation GEMM (unique `B` operand per batch).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(batch: u64, m: u64, k: u64, n: u64) -> Self {
        assert!(
            batch > 0 && m > 0 && k > 0 && n > 0,
            "GEMM dimensions must be positive: batch={batch} m={m} k={k} n={n}"
        );
        Gemm {
            batch,
            m,
            k,
            n,
            weight_shared: false,
        }
    }

    /// Creates an activation-weight GEMM whose `B` operand (the weight) is
    /// shared across the batch.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn with_shared_weight(batch: u64, m: u64, k: u64, n: u64) -> Self {
        let mut g = Gemm::new(batch, m, k, n);
        g.weight_shared = true;
        g
    }

    /// Total multiply-accumulate operations.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.batch * self.m * self.k * self.n
    }

    /// Total floating-point operations (2 per MAC).
    #[must_use]
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Elements of the `A` operand across the whole batch.
    #[must_use]
    pub fn a_elements(&self) -> u64 {
        self.batch * self.m * self.k
    }

    /// Elements of the `B` operand: shared weights are counted once.
    #[must_use]
    pub fn b_elements(&self) -> u64 {
        if self.weight_shared {
            self.k * self.n
        } else {
            self.batch * self.k * self.n
        }
    }

    /// Elements of the output `C` across the whole batch.
    #[must_use]
    pub fn c_elements(&self) -> u64 {
        self.batch * self.m * self.n
    }

    /// Bytes of the `A` operand at the given precision.
    #[must_use]
    pub fn a_size(&self, dtype: DataType) -> Bytes {
        Bytes::new(self.a_elements() * dtype.size_bytes())
    }

    /// Bytes of the `B` operand at the given precision.
    #[must_use]
    pub fn b_size(&self, dtype: DataType) -> Bytes {
        Bytes::new(self.b_elements() * dtype.size_bytes())
    }

    /// Bytes of the `C` operand at the given precision.
    #[must_use]
    pub fn c_size(&self, dtype: DataType) -> Bytes {
        Bytes::new(self.c_elements() * dtype.size_bytes())
    }

    /// Sum of operand and output footprints at the given precision.
    #[must_use]
    pub fn total_size(&self, dtype: DataType) -> Bytes {
        self.a_size(dtype) + self.b_size(dtype) + self.c_size(dtype)
    }

    /// Algorithmic operational intensity: FLOPs divided by the *compulsory*
    /// memory traffic (each operand and the output touched exactly once).
    ///
    /// This is the §2.2 figure of merit. Real traffic can only be higher
    /// (tiling re-fetches), so this is an upper bound on achievable OI and a
    /// lower bound on bandwidth-boundedness.
    #[must_use]
    pub fn operational_intensity(&self, dtype: DataType) -> OperationalIntensity {
        OperationalIntensity {
            flops: self.flops(),
            bytes: self.total_size(dtype),
        }
    }

    /// Restricts the descriptor to a sub-problem (a tile), clamping each
    /// dimension to the original extent.
    #[must_use]
    pub fn tile(&self, batch: u64, m: u64, k: u64, n: u64) -> Gemm {
        Gemm {
            batch: batch.clamp(1, self.batch),
            m: m.clamp(1, self.m),
            k: k.clamp(1, self.k),
            n: n.clamp(1, self.n),
            weight_shared: self.weight_shared,
        }
    }
}

impl fmt::Display for Gemm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x([{}, {}] x [{}, {}]){}",
            self.batch,
            self.m,
            self.k,
            self.k,
            self.n,
            if self.weight_shared {
                " (shared W)"
            } else {
                ""
            }
        )
    }
}

/// FLOPs-per-byte of an operator: the x-axis of a roofline plot.
///
/// # Example
///
/// ```
/// use flat_tensor::{DataType, Gemm};
///
/// let fc = Gemm::with_shared_weight(64, 512, 1024, 1024);
/// let oi = fc.operational_intensity(DataType::Fp16);
/// // With peak 100 GFLOP/s and 1 TB/s, this FC would be compute-bound.
/// assert!(!oi.is_memory_bound(100.0e9, 1.0e12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperationalIntensity {
    /// Total floating-point operations.
    pub flops: u64,
    /// Compulsory memory traffic.
    pub bytes: Bytes,
}

impl OperationalIntensity {
    /// FLOPs per byte of compulsory traffic.
    #[must_use]
    pub fn flops_per_byte(&self) -> f64 {
        self.flops as f64 / self.bytes.as_f64().max(1.0)
    }

    /// Attainable performance (FLOP/s) under the classic roofline:
    /// `min(peak_flops, OI × bandwidth)`.
    #[must_use]
    pub fn attainable_flops(&self, peak_flops: f64, bandwidth_bytes_per_s: f64) -> f64 {
        peak_flops.min(self.flops_per_byte() * bandwidth_bytes_per_s)
    }

    /// True when the operator sits left of the roofline ridge point — i.e.
    /// bandwidth, not compute, limits it.
    #[must_use]
    pub fn is_memory_bound(&self, peak_flops: f64, bandwidth_bytes_per_s: f64) -> bool {
        self.flops_per_byte() * bandwidth_bytes_per_s < peak_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §2.2: OI of Q/K/V/O is ~ BND² / (2BND + D²); batching raises it.
    #[test]
    fn batching_raises_projection_intensity() {
        let dt = DataType::Fp16;
        let b1 = Gemm::with_shared_weight(1, 512, 1024, 1024);
        let b64 = Gemm::with_shared_weight(64, 512, 1024, 1024);
        assert!(
            b64.operational_intensity(dt).flops_per_byte()
                > b1.operational_intensity(dt).flops_per_byte()
        );
    }

    /// §2.2: batching does NOT raise the OI of activation-activation ops.
    #[test]
    fn batching_does_not_help_logit_intensity() {
        let dt = DataType::Fp16;
        let b1 = Gemm::new(16, 512, 64, 512);
        let b64 = Gemm::new(64 * 16, 512, 64, 512);
        let oi1 = b1.operational_intensity(dt).flops_per_byte();
        let oi64 = b64.operational_intensity(dt).flops_per_byte();
        assert!((oi1 - oi64).abs() < 1e-9, "{oi1} vs {oi64}");
    }

    /// §2.2: multi-head lowers the OI of L/A (1/OI = 2/N + H/D, up from 1/D).
    #[test]
    fn more_heads_lower_logit_intensity() {
        let dt = DataType::Fp16;
        let (b, n, d) = (4, 512, 1024);
        let single = Gemm::new(b, n, d, n);
        let multi = Gemm::new(b * 16, n, d / 16, n);
        assert_eq!(single.macs(), multi.macs(), "same total work");
        assert!(
            multi.operational_intensity(dt).flops_per_byte()
                < single.operational_intensity(dt).flops_per_byte()
        );
    }

    #[test]
    fn counts_match_closed_forms() {
        let g = Gemm::new(3, 4, 5, 6);
        assert_eq!(g.macs(), 3 * 4 * 5 * 6);
        assert_eq!(g.flops(), 2 * g.macs());
        assert_eq!(g.a_elements(), 3 * 4 * 5);
        assert_eq!(g.b_elements(), 3 * 5 * 6);
        assert_eq!(g.c_elements(), 3 * 4 * 6);
    }

    #[test]
    fn shared_weight_counted_once() {
        let g = Gemm::with_shared_weight(8, 4, 5, 6);
        assert_eq!(g.b_elements(), 5 * 6);
    }

    #[test]
    fn tile_clamps_to_extents() {
        let g = Gemm::new(2, 8, 8, 8);
        let t = g.tile(4, 100, 4, 0);
        assert_eq!((t.batch, t.m, t.k, t.n), (2, 8, 4, 1));
    }

    #[test]
    fn roofline_ridge_behaviour() {
        let oi = OperationalIntensity {
            flops: 1000,
            bytes: Bytes::new(100),
        };
        // OI = 10 flop/B. With BW 1 B/s and peak 100 flop/s → memory bound.
        assert!(oi.is_memory_bound(100.0, 1.0));
        assert!((oi.attainable_flops(100.0, 1.0) - 10.0).abs() < 1e-12);
        // With BW 100 B/s → compute bound.
        assert!(!oi.is_memory_bound(100.0, 100.0));
        assert!((oi.attainable_flops(100.0, 100.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Gemm::new(1, 0, 1, 1);
    }
}
