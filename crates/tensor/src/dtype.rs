//! Numeric data types and their storage widths.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Numeric precision of a tensor element.
///
/// The paper evaluates everything at 16-bit (`Fp16`), but the cost model is
/// parametric in precision: footprints, traffic, and bandwidth demands all
/// scale with [`DataType::size_bytes`].
///
/// # Example
///
/// ```
/// use flat_tensor::DataType;
/// assert_eq!(DataType::Fp16.size_bytes(), 2);
/// assert_eq!(DataType::Fp32.size_bits(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataType {
    /// 8-bit integer (post-quantization deployments).
    Int8,
    /// IEEE 754 half precision — the paper's evaluation setting.
    Fp16,
    /// bfloat16 (same storage width as `Fp16`).
    Bf16,
    /// IEEE 754 single precision.
    Fp32,
}

impl DataType {
    /// Storage size of one element, in bytes.
    #[must_use]
    pub const fn size_bytes(self) -> u64 {
        match self {
            DataType::Int8 => 1,
            DataType::Fp16 | DataType::Bf16 => 2,
            DataType::Fp32 => 4,
        }
    }

    /// Storage size of one element, in bits.
    #[must_use]
    pub const fn size_bits(self) -> u64 {
        self.size_bytes() * 8
    }

    /// All supported data types, widest first.
    #[must_use]
    pub const fn all() -> [DataType; 4] {
        [
            DataType::Fp32,
            DataType::Bf16,
            DataType::Fp16,
            DataType::Int8,
        ]
    }
}

impl Default for DataType {
    /// Defaults to the paper's 16-bit evaluation setting.
    fn default() -> Self {
        DataType::Fp16
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Int8 => "int8",
            DataType::Fp16 => "fp16",
            DataType::Bf16 => "bf16",
            DataType::Fp32 => "fp32",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_consistent() {
        for dt in DataType::all() {
            assert_eq!(dt.size_bits(), dt.size_bytes() * 8);
        }
    }

    #[test]
    fn default_matches_paper_setting() {
        assert_eq!(DataType::default(), DataType::Fp16);
        assert_eq!(DataType::default().size_bits(), 16);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(DataType::Fp16.to_string(), "fp16");
        assert_eq!(DataType::Int8.to_string(), "int8");
    }

    #[test]
    fn ordering_follows_width_among_distinct_widths() {
        assert!(DataType::Int8.size_bytes() < DataType::Fp16.size_bytes());
        assert!(DataType::Fp16.size_bytes() < DataType::Fp32.size_bytes());
    }
}
