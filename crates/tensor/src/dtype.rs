//! Numeric data types and their storage widths.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Declares [`DataType`] and every width/name table from one variant list.
///
/// The enum, `size_bits`, `all()`, `parse`, and `Display` are all generated
/// from the same source list, so adding a dtype cannot leave it out of
/// sweeps that iterate [`DataType::all`] (the bug this replaces: `all()`
/// was a hand-maintained fixed-arity array that silently truncated).
macro_rules! data_types {
    (
        $(
            $(#[$meta:meta])*
            $variant:ident { bits: $bits:expr, name: $name:expr }
        ),+ $(,)?
    ) => {
        /// Numeric precision of a tensor element.
        ///
        /// The paper evaluates everything at 16-bit (`Fp16`), but the cost
        /// model is parametric in precision: footprints, traffic, and
        /// bandwidth demands all scale with [`DataType::size_bytes`].
        ///
        /// # Example
        ///
        /// ```
        /// use flat_tensor::DataType;
        /// assert_eq!(DataType::Fp16.size_bytes(), 2);
        /// assert_eq!(DataType::Fp32.size_bits(), 32);
        /// ```
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub enum DataType {
            $( $(#[$meta])* $variant, )+
        }

        impl DataType {
            /// Storage size of one element, in bits.
            ///
            /// Declared per variant (not derived from bytes) so sub-byte
            /// types can be added without lying about their width.
            #[must_use]
            pub const fn size_bits(self) -> u64 {
                match self {
                    $( DataType::$variant => $bits, )+
                }
            }

            /// All supported data types, in declaration order.
            ///
            /// Generated from the same list as the enum itself, so a newly
            /// added dtype can never be silently missing from sweeps.
            #[must_use]
            pub const fn all() -> &'static [DataType] {
                &[ $( DataType::$variant, )+ ]
            }

            /// Parses the lowercase display name (`"fp16"`, `"bf16"`, ...).
            ///
            /// # Errors
            ///
            /// Returns the list of valid names when `s` matches none.
            pub fn parse(s: &str) -> Result<DataType, String> {
                match s {
                    $( $name => Ok(DataType::$variant), )+
                    other => Err(format!(
                        "unknown dtype '{other}' (expected one of: {})",
                        [ $( $name, )+ ].join(", ")
                    )),
                }
            }
        }

        impl fmt::Display for DataType {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let name = match self {
                    $( DataType::$variant => $name, )+
                };
                f.write_str(name)
            }
        }
    };
}

data_types! {
    /// 8-bit integer (post-quantization deployments).
    Int8 { bits: 8, name: "int8" },
    /// IEEE 754 half precision — the paper's evaluation setting.
    Fp16 { bits: 16, name: "fp16" },
    /// bfloat16 (same storage width as `Fp16`).
    Bf16 { bits: 16, name: "bf16" },
    /// IEEE 754 single precision.
    Fp32 { bits: 32, name: "fp32" },
}

impl DataType {
    /// Storage size of one element, in bytes (bits rounded up to whole
    /// bytes, the unit elements occupy in packed row-major storage).
    #[must_use]
    pub const fn size_bytes(self) -> u64 {
        self.size_bits().div_ceil(8)
    }
}

impl Default for DataType {
    /// Defaults to the paper's 16-bit evaluation setting.
    fn default() -> Self {
        DataType::Fp16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_consistent() {
        for &dt in DataType::all() {
            assert_eq!(dt.size_bytes(), dt.size_bits().div_ceil(8));
            assert!(dt.size_bits() > 0);
        }
    }

    #[test]
    fn all_is_exhaustive() {
        // The match forces a compile error if a variant is added without
        // updating this test; the loop then proves all() covers it.
        let covered = |dt: DataType| match dt {
            DataType::Int8 | DataType::Fp16 | DataType::Bf16 | DataType::Fp32 => true,
        };
        assert_eq!(DataType::all().len(), 4);
        assert!(DataType::all().iter().all(|&dt| covered(dt)));
    }

    #[test]
    fn default_matches_paper_setting() {
        assert_eq!(DataType::default(), DataType::Fp16);
        assert_eq!(DataType::default().size_bits(), 16);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(DataType::Fp16.to_string(), "fp16");
        assert_eq!(DataType::Int8.to_string(), "int8");
    }

    #[test]
    fn parse_round_trips_every_display_name() {
        for &dt in DataType::all() {
            assert_eq!(DataType::parse(&dt.to_string()), Ok(dt));
        }
        assert!(DataType::parse("fp64").is_err());
    }

    #[test]
    fn ordering_follows_width_among_distinct_widths() {
        assert!(DataType::Int8.size_bytes() < DataType::Fp16.size_bytes());
        assert!(DataType::Fp16.size_bytes() < DataType::Fp32.size_bytes());
    }
}
