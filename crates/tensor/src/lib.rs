//! Tensor shapes, data types, footprints, and GEMM descriptors.
//!
//! `flat-tensor` is the lowest substrate of the FLAT reproduction stack. It
//! defines the vocabulary every other crate speaks:
//!
//! * [`DataType`] — numeric precision (the paper evaluates everything at
//!   16-bit, but the model is precision-parametric),
//! * [`Shape`] — a dense tensor extent,
//! * [`Bytes`] — a memory quantity with human-readable formatting,
//! * [`Gemm`] — a batched matrix-multiply descriptor, the canonical form of
//!   every operator in an attention layer (Q/K/V/L/A/O and the FFN FCs),
//! * [`OperationalIntensity`] — the FLOPs-per-byte figure of §2.2 of the
//!   paper that separates compute-bound from bandwidth-bound operators,
//! * [`half`] — software f16/bf16 conversions and 16-bit packed storage
//!   (the workspace is vendored-only, so no `half` crate),
//! * [`SoftmaxKind`] — which member of the softmax algorithm family a
//!   kernel uses (exact two-pass, FLASH-D division-free, H-FA log-domain),
//!   shared here so the hardware cost model can price it.
//!
//! # Example
//!
//! ```
//! use flat_tensor::{DataType, Gemm};
//!
//! // The Logit operator of one attention head: [N, dk] x [dk, N].
//! let logit = Gemm::new(64 * 16, 512, 64, 512); // B*H batches
//! assert_eq!(logit.macs(), 64 * 16 * 512 * 64 * 512);
//! let oi = logit.operational_intensity(DataType::Fp16);
//! assert!(oi.flops_per_byte() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;
mod dtype;
mod gemm;
pub mod half;
mod shape;
mod softmax_kind;
mod util;

pub use bytes::Bytes;
pub use dtype::DataType;
pub use gemm::{Gemm, OperationalIntensity};
pub use half::PackedBuf;
pub use shape::Shape;
pub use softmax_kind::SoftmaxKind;
pub use util::{ceil_div, round_up_to};
