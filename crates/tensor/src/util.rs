//! Small integer helpers used throughout the cost model.

/// Ceiling division: the number of `divisor`-sized tiles needed to cover
/// `value`.
///
/// # Panics
///
/// Panics if `divisor` is zero.
///
/// # Example
///
/// ```
/// use flat_tensor::ceil_div;
/// assert_eq!(ceil_div(10, 4), 3);
/// assert_eq!(ceil_div(8, 4), 2);
/// assert_eq!(ceil_div(0, 4), 0);
/// ```
#[must_use]
pub fn ceil_div(value: u64, divisor: u64) -> u64 {
    assert!(divisor > 0, "division by zero tile size");
    value.div_ceil(divisor)
}

/// Rounds `value` up to the next multiple of `multiple`.
///
/// # Panics
///
/// Panics if `multiple` is zero.
///
/// # Example
///
/// ```
/// use flat_tensor::round_up_to;
/// assert_eq!(round_up_to(10, 4), 12);
/// assert_eq!(round_up_to(8, 4), 8);
/// ```
#[must_use]
pub fn round_up_to(value: u64, multiple: u64) -> u64 {
    ceil_div(value, multiple) * multiple
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_covers_remainders() {
        assert_eq!(ceil_div(1, 1), 1);
        assert_eq!(ceil_div(7, 3), 3);
        assert_eq!(ceil_div(9, 3), 3);
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn ceil_div_rejects_zero_divisor() {
        let _ = ceil_div(1, 0);
    }

    #[test]
    fn round_up_is_idempotent_on_multiples() {
        for v in [4u64, 8, 12, 4096] {
            assert_eq!(round_up_to(v, 4), v);
        }
    }
}
