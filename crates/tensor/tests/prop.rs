//! Property tests for the tensor substrate.

use flat_tensor::{ceil_div, round_up_to, Bytes, DataType, Gemm, Shape};
use proptest::prelude::*;

proptest! {
    /// Tiling a GEMM never increases any dimension and never changes the
    /// weight-sharing flag.
    #[test]
    fn tile_is_contractive(
        batch in 1u64..64, m in 1u64..512, k in 1u64..512, n in 1u64..512,
        tb in 0u64..128, tm in 0u64..1024, tk in 0u64..1024, tn in 0u64..1024,
    ) {
        let g = Gemm::new(batch, m, k, n);
        let t = g.tile(tb, tm, tk, tn);
        prop_assert!(t.batch <= g.batch && t.m <= g.m && t.k <= g.k && t.n <= g.n);
        prop_assert!(t.batch >= 1 && t.m >= 1 && t.k >= 1 && t.n >= 1);
        prop_assert_eq!(t.weight_shared, g.weight_shared);
        prop_assert!(t.macs() <= g.macs());
    }

    /// The compulsory-traffic operational intensity of an
    /// activation-activation GEMM is invariant under batching.
    #[test]
    fn act_act_oi_batch_invariant(b in 1u64..64, m in 1u64..256, k in 1u64..256, n in 1u64..256) {
        let one = Gemm::new(1, m, k, n).operational_intensity(DataType::Fp16);
        let many = Gemm::new(b, m, k, n).operational_intensity(DataType::Fp16);
        prop_assert!((one.flops_per_byte() - many.flops_per_byte()).abs() < 1e-6);
    }

    /// Weight sharing never lowers operational intensity.
    #[test]
    fn weight_sharing_never_hurts(b in 1u64..64, m in 1u64..256, k in 1u64..256, n in 1u64..256) {
        let private = Gemm::new(b, m, k, n).operational_intensity(DataType::Fp16);
        let shared = Gemm::with_shared_weight(b, m, k, n).operational_intensity(DataType::Fp16);
        prop_assert!(shared.flops_per_byte() >= private.flops_per_byte() - 1e-12);
    }

    /// Shape byte size is elements x element width, for every dtype.
    #[test]
    fn shape_size_closed_form(dims in proptest::collection::vec(1u64..64, 1..5)) {
        let s: Shape = dims.iter().copied().collect();
        for &dt in DataType::all() {
            prop_assert_eq!(s.size(dt).as_u64(), s.elements() * dt.size_bytes());
        }
    }

    /// ceil_div and round_up_to agree: round_up_to(v, m) == ceil_div(v, m) * m,
    /// and the rounded value covers v by less than one extra multiple.
    #[test]
    fn rounding_laws(v in 0u64..1_000_000, m in 1u64..10_000) {
        let r = round_up_to(v, m);
        prop_assert_eq!(r, ceil_div(v, m) * m);
        prop_assert!(r >= v);
        prop_assert!(r - v < m);
    }

    /// Bytes addition is commutative and Display round-trips the magnitude
    /// ordering.
    #[test]
    fn bytes_algebra(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (ba, bb) = (Bytes::new(a), Bytes::new(b));
        prop_assert_eq!(ba + bb, bb + ba);
        prop_assert_eq!(ba.max(bb).as_u64(), a.max(b));
        prop_assert_eq!(ba.saturating_sub(bb).as_u64(), a.saturating_sub(b));
    }

    /// Attainable roofline performance is monotone in both peak and BW and
    /// never exceeds the peak.
    #[test]
    fn roofline_monotone(
        flops in 1u64..1_000_000_000,
        bytes in 1u64..1_000_000_000,
        peak in 1.0e6f64..1.0e15,
        bw in 1.0e6f64..1.0e13,
    ) {
        let oi = Gemm::new(1, 16, 16, 16).operational_intensity(DataType::Fp16);
        let _ = (flops, bytes); // shape-independent law, exercised via oi below
        let perf = oi.attainable_flops(peak, bw);
        prop_assert!(perf <= peak + 1e-6);
        prop_assert!(oi.attainable_flops(peak * 2.0, bw) >= perf - 1e-6);
        prop_assert!(oi.attainable_flops(peak, bw * 2.0) >= perf - 1e-6);
    }
}
