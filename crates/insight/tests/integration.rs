//! End-to-end insight contracts against real engine runs:
//!
//! * two fixed-seed, same-config serving runs attribute to a
//!   byte-identical report and diff to a zero-delta ledger (the pinned
//!   determinism contract behind `flat insight diff` in CI);
//! * the phase decomposition's books balance — phases sum to e2e per
//!   request and drop reasons match the engine's own counters;
//! * turning collective/compute overlap on against an otherwise
//!   identical cluster run attributes the latency delta to the
//!   `collective_exposed` phase;
//! * attribution survives the JSON round trip: analyzing the exported
//!   Chrome trace document equals analyzing the in-process stream.

use flat_arch::Accelerator;
use flat_insight::{Attribution, DiffReport};
use flat_serve::{
    serve_dist_traced, serve_traced, DistServeConfig, EngineConfig, RequestSpec, WorkloadSpec,
};
use flat_telemetry::MemorySink;
use flat_workloads::{Model, Task};

fn workload(requests: usize, seed: u64) -> Vec<RequestSpec> {
    let mut spec = WorkloadSpec::from_task(Task::ShortNlp, requests, 400.0);
    spec.prompt_mean = 40; // scaled down so the suite stays fast
    spec.output_mean = 6;
    spec.generate(seed).expect("spec is valid")
}

fn traced_run(seed: u64) -> MemorySink {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let wl = workload(24, seed);
    let cfg = EngineConfig::for_platform(&accel, &model, seed);
    let mut sink = MemorySink::new();
    serve_traced(&accel, &model, &wl, &cfg, &mut sink).expect("run terminates");
    sink
}

fn traced_dist_run(seed: u64, overlap: bool) -> MemorySink {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::cloud();
    let wl = workload(24, seed);
    let cfg = EngineConfig::for_platform(&accel, &model, seed);
    let mut dist = DistServeConfig::new(4, flat_dist::Topology::Ring);
    dist.overlap = overlap;
    let mut sink = MemorySink::new();
    serve_dist_traced(&accel, &model, &wl, &cfg, &dist, &mut sink).expect("run terminates");
    sink
}

#[test]
fn fixed_seed_runs_attribute_byte_identically_and_diff_to_zero() {
    let a = Attribution::of(&traced_run(0x1234).events);
    let b = Attribution::of(&traced_run(0x1234).events);
    assert_eq!(a.to_json(), b.to_json(), "same seed, same report bytes");
    let d = DiffReport::of(&a, &b);
    assert!(d.zero_delta, "same-config fixed-seed runs are zero-delta");
    assert_eq!(d.dominant_phase, "none");
    assert_eq!(d.e2e_delta_ms, 0.0);
    assert!(d.phase_deltas.iter().all(|p| p.delta_ms == 0.0));
    let j = DiffReport::of(&a, &b).to_json();
    assert_eq!(j, d.to_json(), "diff JSON is byte-deterministic");
}

#[test]
fn phase_books_balance_against_engine_metrics() {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let wl = workload(24, 0x77);
    let mut cfg = EngineConfig::for_platform(&accel, &model, 0x77);
    cfg.kv_budget = flat_tensor::Bytes::from_mib(2); // force pressure
    let mut sink = MemorySink::new();
    let m = serve_traced(&accel, &model, &wl, &cfg, &mut sink).expect("run terminates");
    let a = Attribution::of(&sink.events);
    assert_eq!(a.requests, m.requests, "every offered request observed");
    assert_eq!(a.finished, m.finished);
    assert_eq!(a.dropped, m.dropped);
    assert_eq!(a.preemptions, m.preemptions, "preempt count agrees");
    let attributed_drops: u64 = a.drop_reasons.iter().map(|d| d.count).sum();
    assert_eq!(attributed_drops, m.drops.total());
    for r in &a.per_request {
        if r.drop_reason.is_some() {
            continue;
        }
        let parts: f64 = r.phase_values().iter().sum();
        assert!(
            (parts - r.e2e_ms).abs() < 1e-6,
            "request {}: phases ({parts} ms) must sum to e2e ({} ms)",
            r.id,
            r.e2e_ms
        );
        assert!(r.phase_values().iter().all(|&v| v >= 0.0));
    }
    // Preemption pressure produced recompute slices, attributed as such.
    if m.preemptions > 0 {
        assert!(
            a.phases.recompute.total_ms > 0.0,
            "preempted run must show recompute time"
        );
    }
}

#[test]
fn overlap_delta_is_attributed_to_exposed_collectives() {
    let off = Attribution::of(&traced_dist_run(0x2468, false).events);
    let on = Attribution::of(&traced_dist_run(0x2468, true).events);
    assert!(
        off.phases.collective_exposed.total_ms > 0.0,
        "overlap off: collectives are exposed"
    );
    assert_eq!(
        on.phases.collective_exposed.total_ms, 0.0,
        "overlap on: this workload's compute fully hides the fabric"
    );
    let d = DiffReport::of(&off, &on);
    assert!(!d.zero_delta);
    assert_eq!(
        d.dominant_phase, "collective_exposed",
        "the off->on delta is dominated by exposed collective time: {d:?}"
    );
    assert!(d.e2e_delta_ms < 0.0, "overlap makes the run faster");
}

#[test]
fn exported_trace_attributes_like_the_in_process_stream() {
    // The exporter quantizes timestamps to nanoseconds (`{:.3}` µs), so
    // the two paths agree exactly on every count and to nanosecond
    // precision on every duration — and the document path itself is
    // byte-deterministic.
    let sink = traced_run(0x42);
    let from_stream = Attribution::of(&sink.events);
    let doc = sink.to_chrome_trace();
    let from_doc = Attribution::parse(&doc).expect("valid document");
    assert_eq!(from_stream.requests, from_doc.requests);
    assert_eq!(from_stream.finished, from_doc.finished);
    assert_eq!(from_stream.dropped, from_doc.dropped);
    assert_eq!(from_stream.preemptions, from_doc.preemptions);
    let quantum_ms = 1e-3 * from_stream.requests as f64; // ≤1 ns per event
    for (s, d) in from_stream
        .phases
        .totals()
        .iter()
        .zip(from_doc.phases.totals())
    {
        assert!(
            (s - d).abs() <= quantum_ms,
            "phase totals agree to export quantization: {s} vs {d}"
        );
    }
    let again = Attribution::parse(&doc).expect("valid document");
    assert_eq!(
        from_doc.to_json(),
        again.to_json(),
        "document path is byte-deterministic"
    );
}
