//! Owned trace-event model and the two readers that produce it: a
//! Chrome-trace JSON parser (for `--trace FILE` documents written by the
//! serving engine) and a lossless converter from in-process
//! [`flat_telemetry::Event`] streams (for [`MemorySink`] consumers).
//!
//! The telemetry crate's [`Event`] keeps categories and argument keys as
//! `&'static str` so the producer side stays allocation-light; a parsed
//! document cannot round-trip into that type, so analysis works on this
//! crate's owned [`TraceEvent`] instead.
//!
//! [`MemorySink`]: flat_telemetry::MemorySink
//! [`Event`]: flat_telemetry::Event

use flat_telemetry::{ArgValue, Event, EventPhase};

/// One owned event argument.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgScalar {
    /// An integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
}

/// One trace event in owned form: the Chrome trace-event subset the
/// `flat-serve` / `flat-desim` producers emit, reconstructed from JSON
/// or converted from an in-process stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event (or span) name.
    pub name: String,
    /// Category (`request`, `collective`, `engine`, …).
    pub cat: String,
    /// Phase code: `B`, `E`, `X`, `C`, `i`, or `M`.
    pub ph: char,
    /// Timestamp in microseconds on the producer's clock.
    pub ts_us: f64,
    /// Span duration in microseconds (`X` events only; 0 otherwise).
    pub dur_us: f64,
    /// Process lane.
    pub pid: u32,
    /// Thread lane.
    pub tid: u64,
    /// Ordered key/value arguments.
    pub args: Vec<(String, ArgScalar)>,
}

impl TraceEvent {
    /// The integer argument `key`, accepting integral floats (the JSON
    /// round trip may widen).
    #[must_use]
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                ArgScalar::U64(u) => Some(*u),
                ArgScalar::F64(f) if f.is_finite() && *f >= 0.0 && f.fract() == 0.0 => {
                    Some(*f as u64)
                }
                _ => None,
            })
    }

    /// The string argument `key`.
    #[must_use]
    pub fn arg_str(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                ArgScalar::Str(s) => Some(s.as_str()),
                _ => None,
            })
    }

    /// Whether the event carries argument `key` at all.
    #[must_use]
    pub fn has_arg(&self, key: &str) -> bool {
        self.args.iter().any(|(k, _)| k == key)
    }
}

/// Converts an in-process event stream (e.g. the contents of a
/// [`flat_telemetry::MemorySink`]) into the owned analysis model.
/// Lossless: every field and argument carries over.
#[must_use]
pub fn from_events(events: &[Event]) -> Vec<TraceEvent> {
    events
        .iter()
        .map(|e| {
            let (ph, dur_us) = match e.ph {
                EventPhase::Begin => ('B', 0.0),
                EventPhase::End => ('E', 0.0),
                EventPhase::Complete { dur_us } => ('X', dur_us),
                EventPhase::Counter => ('C', 0.0),
                EventPhase::Instant => ('i', 0.0),
                EventPhase::Metadata => ('M', 0.0),
            };
            TraceEvent {
                name: e.name.clone(),
                cat: e.cat.to_owned(),
                ph,
                ts_us: e.ts_us,
                dur_us,
                pid: e.pid,
                tid: e.tid,
                args: e
                    .args
                    .iter()
                    .map(|(k, v)| {
                        let v = match v {
                            ArgValue::U64(u) => ArgScalar::U64(*u),
                            ArgValue::F64(f) => ArgScalar::F64(*f),
                            ArgValue::Str(s) => ArgScalar::Str(s.clone()),
                        };
                        ((*k).to_owned(), v)
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Parses a Chrome trace JSON document (the `--trace FILE` output) into
/// owned events.
///
/// Tolerant of the exporter's lossy spots: non-finite numeric arguments
/// are serialized as strings (`"NaN"`) and parse back as strings;
/// `dur` was clamped to ≥ 1 ns on export. Events missing any of the
/// required `name`/`ph`/`ts`/`pid`/`tid` fields are rejected with a
/// description rather than skipped — a malformed document should be
/// loud, not quietly half-analyzed.
///
/// # Errors
///
/// Returns a description of the first malformed construct: unparseable
/// JSON, a missing `traceEvents` array, or an event missing required
/// fields.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let doc: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "missing \"traceEvents\" array (not a Chrome trace document)".to_owned())?;
    events
        .iter()
        .enumerate()
        .map(|(i, ev)| parse_event(ev).map_err(|e| format!("traceEvents[{i}]: {e}")))
        .collect()
}

fn parse_event(ev: &serde_json::Value) -> Result<TraceEvent, String> {
    let name = ev
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or("missing \"name\"")?
        .to_owned();
    let cat = ev
        .get("cat")
        .and_then(|v| v.as_str())
        .unwrap_or("")
        .to_owned();
    let ph = ev
        .get("ph")
        .and_then(|v| v.as_str())
        .and_then(|s| s.chars().next())
        .ok_or("missing \"ph\"")?;
    let ts_us = ev
        .get("ts")
        .and_then(|v| v.as_f64())
        .ok_or("missing \"ts\"")?;
    let dur_us = ev.get("dur").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let pid = ev
        .get("pid")
        .and_then(|v| v.as_u64())
        .ok_or("missing \"pid\"")?;
    let pid = u32::try_from(pid).map_err(|_| "\"pid\" exceeds u32".to_owned())?;
    let tid = ev
        .get("tid")
        .and_then(|v| v.as_u64())
        .ok_or("missing \"tid\"")?;
    let args = match ev.get("args").and_then(|v| v.as_object()) {
        None => Vec::new(),
        Some(map) => map
            .iter()
            .map(|(k, v)| {
                let scalar = if let Some(u) = v.as_u64() {
                    ArgScalar::U64(u)
                } else if let Some(f) = v.as_f64() {
                    ArgScalar::F64(f)
                } else if let Some(s) = v.as_str() {
                    ArgScalar::Str(s.to_owned())
                } else {
                    ArgScalar::Str(String::new())
                };
                (k.clone(), scalar)
            })
            .collect(),
    };
    Ok(TraceEvent {
        name,
        cat,
        ph,
        ts_us,
        dur_us,
        pid,
        tid,
        args,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_conversion_is_lossless() {
        let events = vec![
            Event::begin("request", "request", 10.0, 0, 3).arg("tenant", 2u64),
            Event::complete("prefill", "request", 10.0, 5.5, 0, 3).arg("tokens", 64u64),
            Event::instant("dropped", "request", 20.0, 0, 4).arg("reason", "deadline-exceeded"),
        ];
        let owned = from_events(&events);
        assert_eq!(owned.len(), 3);
        assert_eq!(owned[0].ph, 'B');
        assert_eq!(owned[0].arg_u64("tenant"), Some(2));
        assert_eq!(owned[1].ph, 'X');
        assert!((owned[1].dur_us - 5.5).abs() < 1e-12);
        assert_eq!(owned[2].arg_str("reason"), Some("deadline-exceeded"));
    }

    #[test]
    fn parses_what_the_exporter_writes() {
        let events = vec![
            Event::begin("request", "request", 10.0, 0, 3).arg("tenant", 1u64),
            Event::complete("decode", "request", 10.0, 2.0, 0, 3)
                .arg("tokens", 1u64)
                .arg("ctx_tokens", 17u64),
        ];
        let doc = flat_telemetry::chrome_trace_json(&events);
        let parsed = parse_chrome_trace(&doc).expect("round trip");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "request");
        assert_eq!(parsed[0].arg_u64("tenant"), Some(1));
        assert_eq!(parsed[1].arg_u64("ctx_tokens"), Some(17));
        assert!((parsed[1].dur_us - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_trace_documents() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{\"foo\":1}").is_err());
        let err = parse_chrome_trace("{\"traceEvents\":[{\"cat\":\"x\"}]}").unwrap_err();
        assert!(err.contains("traceEvents[0]"), "{err}");
    }
}
