//! Differential run analysis: align two attributed runs request by
//! request and attribute the end-to-end delta to phases.
//!
//! Two runs of the same workload (same seed, same request population)
//! align by request id; the per-pair e2e delta then decomposes exactly
//! into per-phase deltas because each side's phases sum to its e2e. The
//! report surfaces the dominant phase — the one explaining the largest
//! share of the total shift — plus drop-reason shifts and the requests
//! that moved most. Two byte-identical runs produce `zero_delta: true`
//! and an all-zero ledger, which is the pinned determinism contract.

use crate::attribution::{Attribution, RequestPhases, PHASE_NAMES};
use serde::Serialize;

/// How many most-moved requests the report keeps.
const TOP_REQUESTS: usize = 5;

/// One phase's total shift between runs (summed over matched finished
/// pairs).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseDelta {
    /// Phase name (see [`PHASE_NAMES`]).
    pub phase: String,
    /// Run A total, ms.
    pub a_ms: f64,
    /// Run B total, ms.
    pub b_ms: f64,
    /// `b_ms - a_ms`.
    pub delta_ms: f64,
}

/// One request's shift between runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestDelta {
    /// Request id (aligned across runs).
    pub id: u64,
    /// Run A end-to-end latency, ms.
    pub a_e2e_ms: f64,
    /// Run B end-to-end latency, ms.
    pub b_e2e_ms: f64,
    /// `b - a`, ms.
    pub delta_ms: f64,
    /// The phase contributing the largest absolute share of this
    /// request's delta.
    pub dominant_phase: String,
}

/// One drop reason's count shift between runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DropShift {
    /// The typed drop reason.
    pub reason: String,
    /// Run A count.
    pub a: u64,
    /// Run B count.
    pub b: u64,
}

/// The full differential report between two attributed runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DiffReport {
    /// Report schema tag.
    pub schema: String,
    /// Request ids present in both runs and finished in both.
    pub matched: usize,
    /// Ids only in run A (or finished only in A).
    pub only_in_a: usize,
    /// Ids only in run B (or finished only in B).
    pub only_in_b: usize,
    /// Run A finished count.
    pub a_finished: usize,
    /// Run B finished count.
    pub b_finished: usize,
    /// Run A makespan, ms.
    pub a_makespan_ms: f64,
    /// Run B makespan, ms.
    pub b_makespan_ms: f64,
    /// Total e2e shift over matched pairs, ms (`B - A`).
    pub e2e_delta_ms: f64,
    /// Per-phase shift ledger, in [`PHASE_NAMES`] order.
    pub phase_deltas: Vec<PhaseDelta>,
    /// The phase with the largest absolute total shift, or `none` when
    /// the ledger is all-zero.
    pub dominant_phase: String,
    /// Drop-reason count shifts (reasons present in either run with
    /// differing counts, plus all reasons when any shift exists).
    pub drop_shifts: Vec<DropShift>,
    /// The [`TOP_REQUESTS`] most-moved matched requests, by |delta|.
    pub top_request_deltas: Vec<RequestDelta>,
    /// Whether the two runs are attribution-identical: every id matched,
    /// every phase of every pair exactly equal, no drop shifts.
    pub zero_delta: bool,
}

fn dominant_of(deltas: &[(usize, f64)]) -> String {
    let mut best = 0usize;
    let mut best_abs = 0.0f64;
    for &(i, d) in deltas {
        if d.abs() > best_abs {
            best_abs = d.abs();
            best = i;
        }
    }
    if best_abs == 0.0 {
        "none".to_owned()
    } else {
        PHASE_NAMES[best].to_owned()
    }
}

impl DiffReport {
    /// Diffs two attributed runs, aligning requests by id.
    #[must_use]
    pub fn of(a: &Attribution, b: &Attribution) -> Self {
        let finished = |run: &Attribution| {
            run.per_request
                .iter()
                .filter(|r| r.drop_reason.is_none())
                .map(|r| (r.id, r.clone()))
                .collect::<std::collections::BTreeMap<u64, RequestPhases>>()
        };
        let fa = finished(a);
        let fb = finished(b);

        let mut phase_tot = [[0.0f64; 2]; PHASE_NAMES.len()];
        let mut e2e_delta = 0.0;
        let mut pairs: Vec<RequestDelta> = Vec::new();
        let mut matched = 0usize;
        let mut exact = true;
        for (id, ra) in &fa {
            let Some(rb) = fb.get(id) else { continue };
            matched += 1;
            let va = ra.phase_values();
            let vb = rb.phase_values();
            let mut per_phase: Vec<(usize, f64)> = Vec::with_capacity(PHASE_NAMES.len());
            for i in 0..PHASE_NAMES.len() {
                phase_tot[i][0] += va[i];
                phase_tot[i][1] += vb[i];
                per_phase.push((i, vb[i] - va[i]));
                if va[i].to_bits() != vb[i].to_bits() {
                    exact = false;
                }
            }
            e2e_delta += rb.e2e_ms - ra.e2e_ms;
            pairs.push(RequestDelta {
                id: *id,
                a_e2e_ms: ra.e2e_ms,
                b_e2e_ms: rb.e2e_ms,
                delta_ms: rb.e2e_ms - ra.e2e_ms,
                dominant_phase: dominant_of(&per_phase),
            });
        }
        let only_in_a = fa.keys().filter(|id| !fb.contains_key(id)).count();
        let only_in_b = fb.keys().filter(|id| !fa.contains_key(id)).count();

        let phase_deltas: Vec<PhaseDelta> = PHASE_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| PhaseDelta {
                phase: (*name).to_owned(),
                a_ms: phase_tot[i][0],
                b_ms: phase_tot[i][1],
                delta_ms: phase_tot[i][1] - phase_tot[i][0],
            })
            .collect();
        let dominant_phase = dominant_of(
            &phase_deltas
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.delta_ms))
                .collect::<Vec<(usize, f64)>>(),
        );

        // Drop-reason shifts: union of reasons, kept only when any
        // reason's count moved.
        let count = |run: &Attribution, reason: &str| {
            run.drop_reasons
                .iter()
                .find(|d| d.reason == reason)
                .map_or(0, |d| d.count)
        };
        let mut reasons: Vec<&str> = a
            .drop_reasons
            .iter()
            .chain(b.drop_reasons.iter())
            .map(|d| d.reason.as_str())
            .collect();
        reasons.sort_unstable();
        reasons.dedup();
        let shifted = reasons.iter().any(|r| count(a, r) != count(b, r));
        let drop_shifts: Vec<DropShift> = if shifted {
            reasons
                .iter()
                .map(|r| DropShift {
                    reason: (*r).to_owned(),
                    a: count(a, r),
                    b: count(b, r),
                })
                .collect()
        } else {
            Vec::new()
        };

        pairs.sort_by(|x, y| {
            y.delta_ms
                .abs()
                .total_cmp(&x.delta_ms.abs())
                .then_with(|| x.id.cmp(&y.id))
        });
        pairs.truncate(TOP_REQUESTS);

        let zero_delta =
            exact && only_in_a == 0 && only_in_b == 0 && !shifted && a.dropped == b.dropped;

        DiffReport {
            schema: "flat-insight-diff/v1".to_owned(),
            matched,
            only_in_a,
            only_in_b,
            a_finished: a.finished,
            b_finished: b.finished,
            a_makespan_ms: a.makespan_ms,
            b_makespan_ms: b.makespan_ms,
            e2e_delta_ms: e2e_delta,
            phase_deltas,
            dominant_phase,
            drop_shifts,
            top_request_deltas: pairs,
            zero_delta,
        }
    }

    /// The report as pretty JSON — byte-deterministic for fixed inputs.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_telemetry::Event;

    fn run(decode_ms: f64, exposed_ms: f64) -> Attribution {
        let ms = 1e3;
        let mut events = vec![
            Event::begin("request", "request", 0.0, 0, 1),
            Event::begin("queued", "request", 0.0, 0, 1),
            Event::end("queued", "request", ms, 0, 1),
            Event::complete("prefill", "request", ms, 2.0 * ms, 0, 1).arg("tokens", 8u64),
            Event::complete("decode", "request", 3.0 * ms, decode_ms * ms, 0, 1)
                .arg("tokens", 4u64),
            Event::end("request", "request", (3.0 + decode_ms) * ms, 0, 1).arg("generated", 4u64),
        ];
        if exposed_ms > 0.0 {
            events.push(Event::complete(
                "exposed",
                "engine",
                (3.0 + decode_ms) * ms - exposed_ms * ms,
                exposed_ms * ms,
                0,
                0,
            ));
        }
        Attribution::of(&events)
    }

    #[test]
    fn identical_runs_are_zero_delta() {
        let d = DiffReport::of(&run(3.0, 0.0), &run(3.0, 0.0));
        assert!(d.zero_delta, "{d:?}");
        assert_eq!(d.dominant_phase, "none");
        assert_eq!(d.e2e_delta_ms, 0.0);
        assert!(d.phase_deltas.iter().all(|p| p.delta_ms == 0.0));
        assert!(d.drop_shifts.is_empty());
    }

    #[test]
    fn exposed_collective_shift_is_attributed() {
        // Run B is 1 ms slower, all of it exposed collective time.
        let d = DiffReport::of(&run(3.0, 0.0), &run(4.0, 1.0));
        assert!(!d.zero_delta);
        assert_eq!(d.dominant_phase, "collective_exposed");
        assert!((d.e2e_delta_ms - 1.0).abs() < 1e-9, "{}", d.e2e_delta_ms);
        assert_eq!(d.top_request_deltas[0].dominant_phase, "collective_exposed");
    }

    #[test]
    fn diff_json_is_deterministic() {
        let x = DiffReport::of(&run(3.0, 0.0), &run(4.0, 1.0)).to_json();
        let y = DiffReport::of(&run(3.0, 0.0), &run(4.0, 1.0)).to_json();
        assert_eq!(x, y);
        assert!(x.contains("flat-insight-diff/v1"));
    }
}
