//! Fleet health: multi-window SLO burn-rate and deterministic rolling
//! anomaly detection over windowed serving trajectories.
//!
//! Both analyses consume the [`WindowSample`] trajectory the serving
//! engine records (`window_ms` sampling) and emit typed
//! [`InsightFinding`]s. Everything here is pure arithmetic over the
//! trajectory — same windows in, same findings out, byte-for-byte.
//!
//! * **Burn rate** follows the multi-window pattern: the per-window
//!   error ratio (drops over completions) divided by the error budget
//!   gives a burn multiplier; a *page* fires when both a fast (3-window)
//!   and slow (12-window) average burn exceed 14.4×, a *warn* when both
//!   exceed 6×. Requiring both windows suppresses one-window blips while
//!   still catching slow bleeds.
//! * **Anomalies** compare each window against the trailing 8-window
//!   mean and standard deviation: goodput dips, KV-occupancy spikes, and
//!   drop-ratio steps must clear both a 3-sigma gate and a relative
//!   floor, so flat trajectories with microscopic variance do not page.
//!
//! Windows flagged [`truncated`] are excluded: a truncated window
//! absorbed an arbitrary tail span and has no nominal width, so reading
//! it as one rate sample would fabricate a rate.
//!
//! [`WindowSample`]: flat_serve::WindowSample
//! [`truncated`]: flat_serve::WindowSample::truncated

use flat_serve::WindowSample;
use serde::Serialize;

/// Fast burn-rate window, in samples.
const FAST_WINDOWS: usize = 3;
/// Slow burn-rate window, in samples.
const SLOW_WINDOWS: usize = 12;
/// Burn multiplier that pages (both windows).
const PAGE_BURN: f64 = 14.4;
/// Burn multiplier that warns (both windows).
const WARN_BURN: f64 = 6.0;
/// Trailing history for anomaly baselines, in samples.
const BASELINE_WINDOWS: usize = 8;
/// Minimum history before anomaly gates arm.
const MIN_BASELINE: usize = 4;

/// Default SLO error budget: fraction of requests allowed to drop.
pub const DEFAULT_ERROR_BUDGET: f64 = 0.05;

/// One typed, deterministic health finding over a window span.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InsightFinding {
    /// Finding type: `slo-burn`, `goodput-dip`, `kv-spike`, or
    /// `drop-step`.
    pub kind: String,
    /// `page` or `warn`.
    pub severity: String,
    /// Start of the affected span on the engine's virtual clock, ms.
    pub start_ms: f64,
    /// End of the affected span, ms.
    pub end_ms: f64,
    /// Consecutive windows merged into this finding.
    pub windows: usize,
    /// The peak offending value over the span (burn multiplier, ratio,
    /// or tokens/s depending on `kind`).
    pub value: f64,
    /// The threshold the value crossed.
    pub threshold: f64,
    /// Human-readable one-liner.
    pub detail: String,
}

/// Per-window burn multiplier: error ratio over budget. Windows with no
/// completions burn nothing.
fn burn(w: &WindowSample, budget: f64) -> f64 {
    let total = w.finished + w.dropped;
    if total == 0 || budget <= 0.0 {
        return 0.0;
    }
    (w.dropped as f64 / total as f64) / budget
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn std_dev(xs: &[f64], mu: f64) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    (xs.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// A raw per-window breach before merging.
struct Breach {
    kind: &'static str,
    severity: &'static str,
    index: usize,
    value: f64,
    threshold: f64,
}

/// Analyzes a windowed trajectory into typed findings.
///
/// `error_budget` is the SLO drop-fraction budget (see
/// [`DEFAULT_ERROR_BUDGET`]). Consecutive windows breaching the same
/// gate merge into one finding spanning them; findings are ordered by
/// span start, then kind.
#[must_use]
pub fn analyze_windows(windows: &[WindowSample], error_budget: f64) -> Vec<InsightFinding> {
    let ws: Vec<&WindowSample> = windows.iter().filter(|w| !w.truncated).collect();
    if ws.is_empty() {
        return Vec::new();
    }
    // Window i spans (start[i], ws[i].end_ms]; the first window starts
    // at the virtual-clock origin.
    let start_of = |i: usize| if i == 0 { 0.0 } else { ws[i - 1].end_ms };

    let burns: Vec<f64> = ws.iter().map(|w| burn(w, error_budget)).collect();
    let drop_ratio = |w: &WindowSample| {
        let total = w.finished + w.dropped;
        if total == 0 {
            0.0
        } else {
            w.dropped as f64 / total as f64
        }
    };

    let mut breaches: Vec<Breach> = Vec::new();
    for i in 0..ws.len() {
        // Multi-window burn rate: needs a full fast window; the slow
        // window clamps to the history available so short runs still
        // gate on sustained burn.
        if i + 1 >= FAST_WINDOWS {
            let fast = mean(&burns[i + 1 - FAST_WINDOWS..=i]);
            let slow_len = SLOW_WINDOWS.min(i + 1);
            let slow = mean(&burns[i + 1 - slow_len..=i]);
            if fast > PAGE_BURN && slow > PAGE_BURN {
                breaches.push(Breach {
                    kind: "slo-burn",
                    severity: "page",
                    index: i,
                    value: fast,
                    threshold: PAGE_BURN,
                });
            } else if fast > WARN_BURN && slow > WARN_BURN {
                breaches.push(Breach {
                    kind: "slo-burn",
                    severity: "warn",
                    index: i,
                    value: fast,
                    threshold: WARN_BURN,
                });
            }
        }

        // Rolling anomaly gates against the trailing baseline.
        let lo = i.saturating_sub(BASELINE_WINDOWS);
        if i - lo < MIN_BASELINE {
            continue;
        }
        let hist = &ws[lo..i];

        let g: Vec<f64> = hist.iter().map(|w| w.goodput_tokens_per_s).collect();
        let (g_mu, g_sd) = (mean(&g), std_dev(&g, mean(&g)));
        let gv = ws[i].goodput_tokens_per_s;
        if gv < g_mu - 3.0 * g_sd && gv < 0.7 * g_mu {
            breaches.push(Breach {
                kind: "goodput-dip",
                severity: "warn",
                index: i,
                value: gv,
                threshold: 0.7 * g_mu,
            });
        }

        let k: Vec<f64> = hist.iter().map(|w| w.kv_occupancy).collect();
        let (k_mu, k_sd) = (mean(&k), std_dev(&k, mean(&k)));
        let kv = ws[i].kv_occupancy;
        if kv > k_mu + 3.0 * k_sd && kv > 1.3 * k_mu && kv > 0.5 {
            breaches.push(Breach {
                kind: "kv-spike",
                severity: "warn",
                index: i,
                value: kv,
                threshold: (k_mu + 3.0 * k_sd).max(0.5),
            });
        }

        let d: Vec<f64> = hist.iter().map(|w| drop_ratio(w)).collect();
        let (d_mu, d_sd) = (mean(&d), std_dev(&d, mean(&d)));
        let dv = drop_ratio(ws[i]);
        if dv > d_mu + 3.0 * d_sd && dv > d_mu + 0.1 {
            breaches.push(Breach {
                kind: "drop-step",
                severity: "warn",
                index: i,
                value: dv,
                threshold: d_mu + 0.1,
            });
        }
    }

    // Merge consecutive same-kind/severity breaches into span findings.
    let mut findings: Vec<InsightFinding> = Vec::new();
    breaches.sort_by(|a, b| (a.kind, a.severity, a.index).cmp(&(b.kind, b.severity, b.index)));
    let mut i = 0;
    while i < breaches.len() {
        let mut j = i;
        while j + 1 < breaches.len()
            && breaches[j + 1].kind == breaches[i].kind
            && breaches[j + 1].severity == breaches[i].severity
            && breaches[j + 1].index == breaches[j].index + 1
        {
            j += 1;
        }
        let peak = breaches[i..=j]
            .iter()
            .map(|b| b.value)
            .fold(breaches[i].value, |acc, v| {
                if breaches[i].kind == "goodput-dip" {
                    acc.min(v)
                } else {
                    acc.max(v)
                }
            });
        let (first, last) = (&breaches[i], &breaches[j]);
        findings.push(InsightFinding {
            kind: first.kind.to_owned(),
            severity: first.severity.to_owned(),
            start_ms: start_of(first.index),
            end_ms: ws[last.index].end_ms,
            windows: last.index - first.index + 1,
            value: peak,
            threshold: first.threshold,
            detail: describe(first.kind, first.severity, peak, first.threshold),
        });
        i = j + 1;
    }
    findings.sort_by(|a, b| {
        a.start_ms
            .total_cmp(&b.start_ms)
            .then_with(|| a.kind.cmp(&b.kind))
    });
    findings
}

fn describe(kind: &str, severity: &str, value: f64, threshold: f64) -> String {
    match kind {
        "slo-burn" => format!(
            "error-budget burn {value:.1}x exceeds the {threshold:.1}x {severity} gate on both fast and slow windows"
        ),
        "goodput-dip" => format!(
            "goodput {value:.1} tok/s fell below {threshold:.1} (0.7x trailing mean, 3-sigma gate)"
        ),
        "kv-spike" => format!(
            "KV occupancy {value:.2} spiked above {threshold:.2} (3-sigma over trailing mean)"
        ),
        _ => format!(
            "drop ratio {value:.2} stepped above {threshold:.2} (trailing mean + 0.1, 3-sigma gate)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(end_ms: f64, finished: usize, dropped: usize, goodput: f64, kv: f64) -> WindowSample {
        WindowSample {
            end_ms,
            finished,
            dropped,
            decode_tokens: (goodput as u64).max(1),
            goodput_tokens_per_s: goodput,
            kv_occupancy: kv,
            chips: 1,
            truncated: false,
        }
    }

    fn steady(n: usize) -> Vec<WindowSample> {
        (0..n)
            .map(|i| window((i + 1) as f64 * 100.0, 10, 0, 500.0, 0.4))
            .collect()
    }

    #[test]
    fn steady_trajectory_is_clean() {
        assert!(analyze_windows(&steady(24), DEFAULT_ERROR_BUDGET).is_empty());
    }

    #[test]
    fn sustained_drops_page_and_merge() {
        let mut ws = steady(6);
        // 8 of 10 requests dropped per window: ratio 0.8, burn 16x.
        // Sustained long enough that the 12-window slow average crosses
        // the page gate too.
        for i in 0..14 {
            ws.push(window(700.0 + i as f64 * 100.0, 2, 8, 120.0, 0.4));
        }
        let findings = analyze_windows(&ws, DEFAULT_ERROR_BUDGET);
        let burns: Vec<&InsightFinding> =
            findings.iter().filter(|f| f.kind == "slo-burn").collect();
        assert!(!burns.is_empty(), "sustained burn must surface");
        assert!(burns.iter().any(|f| f.severity == "page"), "{findings:?}");
        // Consecutive breaching windows merge into one span per gate.
        assert!(
            burns.iter().all(|f| f.windows >= 1),
            "merged spans carry window counts"
        );
        let pages: Vec<&&InsightFinding> = burns.iter().filter(|f| f.severity == "page").collect();
        assert_eq!(pages.len(), 1, "one merged page, not one per window");
    }

    #[test]
    fn goodput_dip_and_kv_spike_detected() {
        let mut ws = steady(10);
        ws.push(window(1100.0, 10, 0, 100.0, 0.9)); // dip + spike
        let findings = analyze_windows(&ws, DEFAULT_ERROR_BUDGET);
        assert!(findings.iter().any(|f| f.kind == "goodput-dip"));
        assert!(findings.iter().any(|f| f.kind == "kv-spike"));
    }

    #[test]
    fn drop_step_detected() {
        let mut ws = steady(10);
        ws.push(window(1100.0, 7, 3, 350.0, 0.4));
        let findings = analyze_windows(&ws, DEFAULT_ERROR_BUDGET);
        assert!(
            findings.iter().any(|f| f.kind == "drop-step"),
            "{findings:?}"
        );
    }

    #[test]
    fn truncated_windows_are_excluded() {
        let mut ws = steady(10);
        let mut tail = window(1_000_000.0, 2, 8, 1.0, 0.99);
        tail.truncated = true;
        ws.push(tail);
        assert!(
            analyze_windows(&ws, DEFAULT_ERROR_BUDGET).is_empty(),
            "a truncated tail window must not fabricate findings"
        );
    }

    #[test]
    fn findings_are_deterministic() {
        let mut ws = steady(10);
        ws.push(window(1100.0, 2, 8, 100.0, 0.9));
        ws.push(window(1200.0, 2, 8, 100.0, 0.9));
        let a = analyze_windows(&ws, DEFAULT_ERROR_BUDGET);
        let b = analyze_windows(&ws, DEFAULT_ERROR_BUDGET);
        assert_eq!(a, b);
    }
}
