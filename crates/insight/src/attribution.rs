//! Critical-path attribution: decompose each request's end-to-end
//! latency into phases, then aggregate per phase and per tenant.
//!
//! The serving engine's trace schema gives every request a lane carrying
//! a `request` B/E span (arrival → completion), `queued` B/E spans (one
//! per admission wait, re-opened after preemption), and per-tick
//! `prefill` / `decode` complete slices spanning the whole tick the
//! request participated in. Two schema details added for attribution:
//! prefill slices re-paging work erased by a preempt-and-recompute
//! eviction carry a `recompute` argument, and the scheduler lane carries
//! an `exposed` slice per tick for the collective time compute could not
//! hide. From those, each finished request's latency decomposes as
//!
//! ```text
//! e2e = queued + prefill + recompute + decode + collective_exposed + other
//! ```
//!
//! where `other` is time admitted-but-stalled (in the batch, no slice
//! this tick — e.g. the prefill chunk budget went to earlier requests).
//! Within one tick, the tick's exposed fabric time is charged to the
//! `collective_exposed` phase and the remaining compute time is split
//! over the request's slices in token proportion.

use crate::trace::TraceEvent;
use flat_serve::Percentiles;
use serde::Serialize;
use std::collections::BTreeMap;

/// Engine/scheduler process lane in the trace schema.
const PID_ENGINE: u32 = 0;

/// One request's phase decomposition, in milliseconds of virtual time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestPhases {
    /// Request id (trace lane `tid - 1`).
    pub id: u64,
    /// Tenant class (from the `request` begin span's `tenant` argument;
    /// 0 when the trace predates the argument).
    pub tenant: u32,
    /// Arrival on the virtual clock.
    pub arrival_ms: f64,
    /// Completion (or drop) on the virtual clock.
    pub end_ms: f64,
    /// End-to-end latency.
    pub e2e_ms: f64,
    /// Waiting in the admission queue (including re-queues after
    /// preemption).
    pub queued_ms: f64,
    /// First-pass prompt paging.
    pub prefill_ms: f64,
    /// Prompt paging redone after a preempt-and-recompute eviction.
    pub recompute_ms: f64,
    /// Autoregressive decode steps.
    pub decode_ms: f64,
    /// Collective fabric time compute could not hide, during this
    /// request's ticks.
    pub collective_exposed_ms: f64,
    /// Admitted but stalled: in the running batch with no slice that
    /// tick.
    pub other_ms: f64,
    /// Tokens generated (0 for dropped requests).
    pub generated: u64,
    /// Preempt-and-recompute evictions suffered.
    pub preemptions: u64,
    /// Drop reason, if the request was shed instead of served.
    pub drop_reason: Option<String>,
}

/// One phase's aggregate: the total across requests and the per-request
/// distribution.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseStat {
    /// Sum over finished requests, ms.
    pub total_ms: f64,
    /// Per-request distribution (nearest-rank percentiles).
    pub dist: Percentiles,
}

/// The aggregate breakdown over a set of requests.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseBreakdown {
    /// Admission-queue waiting.
    pub queued: PhaseStat,
    /// First-pass prompt paging.
    pub prefill: PhaseStat,
    /// Post-preemption re-paging.
    pub recompute: PhaseStat,
    /// Decode steps.
    pub decode: PhaseStat,
    /// Exposed collective time.
    pub collective_exposed: PhaseStat,
    /// Admitted-but-stalled time.
    pub other: PhaseStat,
    /// End-to-end latency.
    pub e2e: PhaseStat,
}

/// The phase names of [`PhaseBreakdown`], in ledger order (`e2e`
/// excluded — it is the sum, not a component).
pub const PHASE_NAMES: [&str; 6] = [
    "queued",
    "prefill",
    "recompute",
    "decode",
    "collective_exposed",
    "other",
];

impl RequestPhases {
    /// The component phases in [`PHASE_NAMES`] order.
    #[must_use]
    pub fn phase_values(&self) -> [f64; 6] {
        [
            self.queued_ms,
            self.prefill_ms,
            self.recompute_ms,
            self.decode_ms,
            self.collective_exposed_ms,
            self.other_ms,
        ]
    }
}

impl PhaseBreakdown {
    fn of(requests: &[&RequestPhases]) -> Self {
        let stat = |f: &dyn Fn(&RequestPhases) -> f64| {
            let samples: Vec<f64> = requests.iter().map(|r| f(r)).collect();
            PhaseStat {
                total_ms: samples.iter().sum(),
                dist: Percentiles::of(samples),
            }
        };
        PhaseBreakdown {
            queued: stat(&|r| r.queued_ms),
            prefill: stat(&|r| r.prefill_ms),
            recompute: stat(&|r| r.recompute_ms),
            decode: stat(&|r| r.decode_ms),
            collective_exposed: stat(&|r| r.collective_exposed_ms),
            other: stat(&|r| r.other_ms),
            e2e: stat(&|r| r.e2e_ms),
        }
    }

    /// The component totals in [`PHASE_NAMES`] order.
    #[must_use]
    pub fn totals(&self) -> [f64; 6] {
        [
            self.queued.total_ms,
            self.prefill.total_ms,
            self.recompute.total_ms,
            self.decode.total_ms,
            self.collective_exposed.total_ms,
            self.other.total_ms,
        ]
    }
}

/// One tenant's slice of the breakdown.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantPhases {
    /// Tenant class id.
    pub tenant: u32,
    /// Finished requests attributed.
    pub finished: usize,
    /// The tenant's aggregate breakdown.
    pub breakdown: PhaseBreakdown,
}

/// A dropped-request tally for one typed reason.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DropTally {
    /// The typed drop reason string from the trace.
    pub reason: String,
    /// Requests shed with it.
    pub count: u64,
}

/// The full attribution report of one traced run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Attribution {
    /// Report schema tag.
    pub schema: String,
    /// Requests observed in the trace (finished + dropped).
    pub requests: usize,
    /// Requests that ran to completion.
    pub finished: usize,
    /// Requests shed with a typed reason.
    pub dropped: usize,
    /// Shed requests by reason, reason-sorted.
    pub drop_reasons: Vec<DropTally>,
    /// First arrival to last completion, ms.
    pub makespan_ms: f64,
    /// Total preempt-and-recompute evictions observed.
    pub preemptions: u64,
    /// Aggregate breakdown over finished requests.
    pub phases: PhaseBreakdown,
    /// Per-tenant breakdowns, tenant-id-sorted.
    pub tenants: Vec<TenantPhases>,
    /// Every request's decomposition, id-sorted.
    pub per_request: Vec<RequestPhases>,
}

/// Per-lane accumulation state while scanning the event stream.
#[derive(Debug, Default)]
struct Lane {
    arrival_us: Option<f64>,
    end_us: Option<f64>,
    tenant: u32,
    queued_open: Option<f64>,
    queued_us: f64,
    generated: u64,
    preemptions: u64,
    drop_reason: Option<String>,
    ticks: Vec<Tick>,
}

/// One tick a request participated in: the slice interval plus the token
/// weights of the work kinds inside it.
#[derive(Debug, Clone, Copy)]
struct Tick {
    ts_us: f64,
    dur_us: f64,
    prefill_tok: f64,
    recompute_tok: f64,
    decode_tok: f64,
}

impl Attribution {
    /// Attributes an in-process event stream (e.g. a
    /// [`flat_telemetry::MemorySink`]'s contents).
    #[must_use]
    pub fn of(events: &[flat_telemetry::Event]) -> Self {
        Self::from_trace_events(&crate::trace::from_events(events))
    }

    /// Parses and attributes a Chrome trace JSON document.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::trace::parse_chrome_trace`] errors.
    pub fn parse(text: &str) -> Result<Self, String> {
        Ok(Self::from_trace_events(&crate::trace::parse_chrome_trace(
            text,
        )?))
    }

    /// Attributes an owned event stream.
    ///
    /// Events may arrive in any order; they are stably sorted by
    /// timestamp first, which restores the per-lane B/E pairing order
    /// the producers emit (equal-timestamp events on one lane keep
    /// their relative order under a stable sort).
    #[must_use]
    pub fn from_trace_events(events: &[TraceEvent]) -> Self {
        let mut ordered: Vec<&TraceEvent> = events.iter().collect();
        ordered.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));

        // Exposed-collective intervals on the scheduler lane, in ts
        // order.
        let exposed: Vec<(f64, f64)> = ordered
            .iter()
            .filter(|e| e.pid == PID_ENGINE && e.tid == 0 && e.ph == 'X' && e.name == "exposed")
            .map(|e| (e.ts_us, e.ts_us + e.dur_us))
            .collect();

        let mut lanes: BTreeMap<u64, Lane> = BTreeMap::new();
        for e in &ordered {
            if e.pid != PID_ENGINE || e.tid == 0 || e.cat != "request" {
                continue;
            }
            let lane = lanes.entry(e.tid - 1).or_default();
            match (e.ph, e.name.as_str()) {
                ('B', "request") => {
                    lane.arrival_us = Some(e.ts_us);
                    if let Some(t) = e.arg_u64("tenant") {
                        lane.tenant = u32::try_from(t).unwrap_or(u32::MAX);
                    }
                }
                ('E', "request") => {
                    lane.end_us = Some(e.ts_us);
                    if let Some(g) = e.arg_u64("generated") {
                        lane.generated = g;
                    }
                }
                ('B', "queued") => lane.queued_open = Some(e.ts_us),
                ('E', "queued") => {
                    if let Some(open) = lane.queued_open.take() {
                        lane.queued_us += (e.ts_us - open).max(0.0);
                    }
                }
                ('i', "preempted") => {
                    lane.preemptions = lane.preemptions.max(e.arg_u64("count").unwrap_or(0));
                }
                ('i', "dropped") => {
                    lane.drop_reason = Some(e.arg_str("reason").unwrap_or("unknown").to_owned());
                }
                ('X', "prefill" | "decode") => {
                    let tokens = e.arg_u64("tokens").unwrap_or(0) as f64;
                    let same_tick = lane
                        .ticks
                        .last()
                        .is_some_and(|t| t.ts_us.to_bits() == e.ts_us.to_bits());
                    if !same_tick {
                        lane.ticks.push(Tick {
                            ts_us: e.ts_us,
                            dur_us: e.dur_us,
                            prefill_tok: 0.0,
                            recompute_tok: 0.0,
                            decode_tok: 0.0,
                        });
                    }
                    if let Some(tick) = lane.ticks.last_mut() {
                        tick.dur_us = tick.dur_us.max(e.dur_us);
                        if e.name == "decode" {
                            tick.decode_tok += tokens;
                        } else if e.has_arg("recompute") {
                            tick.recompute_tok += tokens;
                        } else {
                            tick.prefill_tok += tokens;
                        }
                    }
                }
                _ => {}
            }
        }

        let mut per_request: Vec<RequestPhases> = lanes
            .into_iter()
            .map(|(id, lane)| finish_lane(id, lane, &exposed))
            .collect();
        per_request.sort_by_key(|r| r.id);

        let finished: Vec<&RequestPhases> = per_request
            .iter()
            .filter(|r| r.drop_reason.is_none())
            .collect();
        let mut drop_counts: BTreeMap<String, u64> = BTreeMap::new();
        for r in &per_request {
            if let Some(reason) = &r.drop_reason {
                *drop_counts.entry(reason.clone()).or_insert(0) += 1;
            }
        }
        let mut by_tenant: BTreeMap<u32, Vec<&RequestPhases>> = BTreeMap::new();
        for r in &finished {
            by_tenant.entry(r.tenant).or_default().push(r);
        }
        let arrival_min = finished
            .iter()
            .map(|r| r.arrival_ms)
            .fold(f64::INFINITY, f64::min);
        let end_max = finished.iter().map(|r| r.end_ms).fold(0.0f64, f64::max);

        Attribution {
            schema: "flat-insight-attribution/v1".to_owned(),
            requests: per_request.len(),
            finished: finished.len(),
            dropped: per_request.len() - finished.len(),
            drop_reasons: drop_counts
                .into_iter()
                .map(|(reason, count)| DropTally { reason, count })
                .collect(),
            makespan_ms: if arrival_min.is_finite() {
                end_max - arrival_min
            } else {
                0.0
            },
            preemptions: per_request.iter().map(|r| r.preemptions).sum(),
            phases: PhaseBreakdown::of(&finished),
            tenants: by_tenant
                .into_iter()
                .map(|(tenant, reqs)| TenantPhases {
                    tenant,
                    finished: reqs.len(),
                    breakdown: PhaseBreakdown::of(&reqs),
                })
                .collect(),
            per_request,
        }
    }

    /// The report as pretty JSON — byte-deterministic for a fixed trace
    /// (sorted-key objects, derived field set).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }

    /// The aggregate phase quantiles as a telemetry registry, for
    /// Prometheus text exposition: one summary per phase plus the run
    /// totals as counters.
    #[must_use]
    pub fn registry(&self) -> flat_telemetry::Registry {
        let mut r = flat_telemetry::Registry::new();
        r.counter_add(
            "insight_requests_total",
            "Requests observed in the trace.",
            self.requests as f64,
        );
        r.counter_add(
            "insight_finished_total",
            "Requests that ran to completion.",
            self.finished as f64,
        );
        r.counter_add(
            "insight_dropped_total",
            "Requests shed with a typed reason.",
            self.dropped as f64,
        );
        let phase = |r: &mut flat_telemetry::Registry, name: &str, help: &str, s: &PhaseStat| {
            r.summary_of(
                name,
                help,
                &self
                    .per_request
                    .iter()
                    .filter(|q| q.drop_reason.is_none())
                    .map(pick(name))
                    .collect::<Vec<f64>>(),
            );
            r.counter_add(&format!("{name}_total"), help, s.total_ms.max(0.0));
        };
        phase(
            &mut r,
            "insight_queued_ms",
            "Admission-queue waiting per request.",
            &self.phases.queued,
        );
        phase(
            &mut r,
            "insight_prefill_ms",
            "First-pass prompt paging per request.",
            &self.phases.prefill,
        );
        phase(
            &mut r,
            "insight_recompute_ms",
            "Post-preemption re-paging per request.",
            &self.phases.recompute,
        );
        phase(
            &mut r,
            "insight_decode_ms",
            "Decode-step time per request.",
            &self.phases.decode,
        );
        phase(
            &mut r,
            "insight_collective_exposed_ms",
            "Exposed collective time per request.",
            &self.phases.collective_exposed,
        );
        phase(
            &mut r,
            "insight_other_ms",
            "Admitted-but-stalled time per request.",
            &self.phases.other,
        );
        r
    }
}

/// Field selector for [`Attribution::registry`]'s per-phase samples.
fn pick(metric: &str) -> fn(&RequestPhases) -> f64 {
    match metric {
        "insight_queued_ms" => |r| r.queued_ms,
        "insight_prefill_ms" => |r| r.prefill_ms,
        "insight_recompute_ms" => |r| r.recompute_ms,
        "insight_decode_ms" => |r| r.decode_ms,
        "insight_collective_exposed_ms" => |r| r.collective_exposed_ms,
        _ => |r| r.other_ms,
    }
}

/// Sum of overlap between `[t0, t1]` and the sorted `exposed` intervals.
fn exposed_overlap_us(exposed: &[(f64, f64)], t0: f64, t1: f64) -> f64 {
    // First interval that ends after t0.
    let start = exposed.partition_point(|&(_, end)| end <= t0);
    let mut total = 0.0;
    for &(s, e) in &exposed[start..] {
        if s >= t1 {
            break;
        }
        total += (e.min(t1) - s.max(t0)).max(0.0);
    }
    total
}

/// Closes one lane into its request decomposition.
fn finish_lane(id: u64, lane: Lane, exposed: &[(f64, f64)]) -> RequestPhases {
    let arrival_us = lane.arrival_us.unwrap_or(0.0);
    let end_us = lane.end_us.unwrap_or(arrival_us);
    let mut prefill_us = 0.0;
    let mut recompute_us = 0.0;
    let mut decode_us = 0.0;
    let mut exposed_us = 0.0;
    for t in &lane.ticks {
        let hidden = exposed_overlap_us(exposed, t.ts_us, t.ts_us + t.dur_us).min(t.dur_us);
        exposed_us += hidden;
        let compute = (t.dur_us - hidden).max(0.0);
        let w = t.prefill_tok + t.recompute_tok + t.decode_tok;
        if w > 0.0 {
            prefill_us += compute * t.prefill_tok / w;
            recompute_us += compute * t.recompute_tok / w;
            decode_us += compute * t.decode_tok / w;
        }
    }
    let e2e_us = (end_us - arrival_us).max(0.0);
    let other_us =
        (e2e_us - lane.queued_us - prefill_us - recompute_us - decode_us - exposed_us).max(0.0);
    RequestPhases {
        id,
        tenant: lane.tenant,
        arrival_ms: arrival_us / 1e3,
        end_ms: end_us / 1e3,
        e2e_ms: e2e_us / 1e3,
        queued_ms: lane.queued_us / 1e3,
        prefill_ms: prefill_us / 1e3,
        recompute_ms: recompute_us / 1e3,
        decode_ms: decode_us / 1e3,
        collective_exposed_ms: exposed_us / 1e3,
        other_ms: other_us / 1e3,
        generated: lane.generated,
        preemptions: lane.preemptions,
        drop_reason: lane.drop_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_telemetry::Event;

    /// A hand-built two-request trace: request 0 queues 1 ms, prefills
    /// one 2 ms tick, decodes one 3 ms tick (1 ms of it exposed
    /// collective), finishes. Request 1 is dropped at the queue.
    fn tiny_trace() -> Vec<Event> {
        let ms = 1e3; // µs per ms
        vec![
            Event::begin("request", "request", 0.0, 0, 1).arg("tenant", 2u64),
            Event::begin("queued", "request", 0.0, 0, 1),
            Event::end("queued", "request", ms, 0, 1),
            Event::complete("prefill", "request", ms, 2.0 * ms, 0, 1).arg("tokens", 8u64),
            Event::complete("decode", "request", 3.0 * ms, 3.0 * ms, 0, 1)
                .arg("tokens", 1u64)
                .arg("ctx_tokens", 9u64),
            Event::complete("exposed", "engine", 5.0 * ms, 1.0 * ms, 0, 0),
            Event::end("request", "request", 6.0 * ms, 0, 1).arg("generated", 1u64),
            Event::begin("request", "request", 0.0, 0, 2).arg("tenant", 0u64),
            Event::begin("queued", "request", 0.0, 0, 2),
            Event::end("queued", "request", 4.0 * ms, 0, 2),
            Event::instant("dropped", "request", 4.0 * ms, 0, 2).arg("reason", "deadline-exceeded"),
            Event::end("request", "request", 4.0 * ms, 0, 2),
        ]
    }

    #[test]
    fn phases_decompose_and_sum_to_e2e() {
        let a = Attribution::of(&tiny_trace());
        assert_eq!(a.requests, 2);
        assert_eq!(a.finished, 1);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.drop_reasons[0].reason, "deadline-exceeded");
        let r = &a.per_request[0];
        assert_eq!(r.tenant, 2);
        assert!((r.queued_ms - 1.0).abs() < 1e-9);
        assert!((r.prefill_ms - 2.0).abs() < 1e-9);
        assert!((r.decode_ms - 2.0).abs() < 1e-9, "{}", r.decode_ms);
        assert!((r.collective_exposed_ms - 1.0).abs() < 1e-9);
        assert!((r.e2e_ms - 6.0).abs() < 1e-9);
        let parts: f64 = r.phase_values().iter().sum();
        assert!((parts - r.e2e_ms).abs() < 1e-9, "phases must sum to e2e");
    }

    #[test]
    fn recompute_slices_split_from_prefill() {
        let ms = 1e3;
        let events = vec![
            Event::begin("request", "request", 0.0, 0, 1),
            Event::begin("queued", "request", 0.0, 0, 1),
            Event::end("queued", "request", 0.0, 0, 1),
            Event::complete("prefill", "request", 0.0, ms, 0, 1).arg("tokens", 4u64),
            Event::instant("preempted", "request", ms, 0, 1).arg("count", 1u64),
            Event::begin("queued", "request", ms, 0, 1),
            Event::end("queued", "request", ms, 0, 1),
            Event::complete("prefill", "request", ms, 2.0 * ms, 0, 1)
                .arg("tokens", 4u64)
                .arg("recompute", 1u64),
            Event::end("request", "request", 3.0 * ms, 0, 1).arg("generated", 0u64),
        ];
        let a = Attribution::of(&events);
        let r = &a.per_request[0];
        assert!((r.prefill_ms - 1.0).abs() < 1e-9);
        assert!((r.recompute_ms - 2.0).abs() < 1e-9);
        assert_eq!(r.preemptions, 1);
        assert_eq!(a.preemptions, 1);
    }

    #[test]
    fn json_is_deterministic() {
        let a = Attribution::of(&tiny_trace());
        let b = Attribution::of(&tiny_trace());
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("flat-insight-attribution/v1"));
    }

    #[test]
    fn registry_exports_phase_summaries() {
        let text = Attribution::of(&tiny_trace()).registry().prometheus();
        assert!(text.contains("# TYPE insight_queued_ms summary"));
        assert!(text.contains("insight_decode_ms{quantile=\"0.5\"}"));
        assert!(text.contains("insight_requests_total 2"));
    }

    #[test]
    fn empty_stream_attributes_to_nothing() {
        let a = Attribution::of(&[]);
        assert_eq!(a.requests, 0);
        assert_eq!(a.makespan_ms, 0.0);
        assert!(a.per_request.is_empty());
    }
}
