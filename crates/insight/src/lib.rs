//! `flat-insight` — the analysis layer over the flat telemetry.
//!
//! The rest of the stack produces deterministic observability artifacts:
//! Chrome trace documents from the serving engine (`--trace FILE` or an
//! in-process [`MemorySink`](flat_telemetry::MemorySink)), windowed
//! [`WindowSample`](flat_serve::WindowSample) trajectories from
//! sustained runs, and per-PR `BENCH_PR*.json` benchmark snapshots. This
//! crate turns those artifacts into answers:
//!
//! * [`Attribution`] — critical-path attribution: decompose each traced
//!   request's end-to-end latency into queued / prefill / recompute /
//!   decode / collective-exposed / other phases, with per-phase
//!   percentile distributions overall and per tenant
//!   (`flat insight attr TRACE.json`);
//! * [`DiffReport`] — differential analysis: align two traced runs by
//!   request id and attribute the latency delta to phases, drop-reason
//!   shifts, and the most-moved requests
//!   (`flat insight diff A.json B.json`);
//! * [`analyze_windows`] / [`InsightFinding`] — fleet health: multi-window
//!   SLO burn-rate (fast 3-window / slow 12-window gates) plus rolling
//!   3-sigma anomaly detection over trajectories, surfaced in the
//!   `flat fleet` report;
//! * [`check_snapshot`] / [`load_history`] — the bench observatory: gate
//!   a benchmark snapshot against the best prior result per metric with
//!   per-group tolerances (`flat insight bench --check`).
//!
//! Every analysis is pure arithmetic over its inputs: same artifacts in,
//! byte-identical JSON out. CI pins that contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod attribution;
pub mod bench;
pub mod diff;
pub mod health;
pub mod trace;

pub use attribution::{
    Attribution, DropTally, PhaseBreakdown, PhaseStat, RequestPhases, TenantPhases, PHASE_NAMES,
};
pub use bench::{
    check_snapshot, group_tolerance, load_history, trajectories, BenchCheck, BenchEntry,
    BenchRegression, BenchSnapshot, Trajectory, TrajectoryPoint,
};
pub use diff::{DiffReport, DropShift, PhaseDelta, RequestDelta};
pub use health::{analyze_windows, InsightFinding, DEFAULT_ERROR_BUDGET};
pub use trace::{from_events, parse_chrome_trace, ArgScalar, TraceEvent};
