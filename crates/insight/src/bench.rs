//! Bench observatory: load the committed `BENCH_PR*.json` snapshot
//! history, build per-metric trajectories, and gate a current snapshot
//! against the best prior result with per-group tolerances.
//!
//! The benchmark harness writes `flat-bench-snapshot/v1` documents; the
//! repo commits one per PR. Entries are aligned across snapshots by the
//! `(group, name, config)` triple. Two tolerance regimes, calibrated
//! from the committed history itself:
//!
//! * **Wall-clock groups** (`kernel`, `precision`, `sweep`, `serve`,
//!   `engine`, `validation`) measure real compute on whatever machine
//!   ran the bench; cross-machine noise in the history reaches ~2.2x, so
//!   the gate is 4x the best prior mean — it catches order-of-magnitude
//!   regressions, not jitter.
//! * **Modeled groups** (`dist`, `fleet`) report virtual-time results
//!   from the deterministic cost model; the history shows them
//!   bit-stable across machines, so the gate is a tight 1.5x.
//!
//! Numerical accuracy regresses independently of speed: entries carrying
//! `max_rel_error` also gate on `current <= prior_max * 1.10 + 0.01`.

use serde::Serialize;
use serde_json::Value;
use std::path::{Path, PathBuf};

/// Mean-time tolerance for deterministic modeled groups.
const MODELED_TOLERANCE: f64 = 1.5;
/// Mean-time tolerance for wall-clock groups.
const WALL_TOLERANCE: f64 = 4.0;

/// One benchmark entry from a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchEntry {
    /// Benchmark name.
    pub name: String,
    /// Benchmark group (`kernel`, `dist`, …).
    pub group: String,
    /// Configuration string.
    pub config: String,
    /// Mean time per rep, ms.
    pub mean_ms: f64,
    /// Fastest rep, ms.
    pub min_ms: f64,
    /// Reps measured.
    pub reps: u64,
    /// Worst relative numerical error vs the reference, when measured.
    pub max_rel_error: Option<f64>,
    /// Speedup vs the group's baseline entry.
    pub speedup_vs_baseline: f64,
}

impl BenchEntry {
    /// The alignment key: `group/name [config]`.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}/{} [{}]", self.group, self.name, self.config)
    }
}

/// One parsed `flat-bench-snapshot/v1` document.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchSnapshot {
    /// Snapshot tag (`PR9`, …).
    pub tag: String,
    /// CPU model string of the machine that ran it.
    pub cpu_model: String,
    /// Worker-pool threads used.
    pub pool_threads: u64,
    /// The entries.
    pub entries: Vec<BenchEntry>,
}

impl BenchSnapshot {
    /// Parses a snapshot document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct: bad
    /// JSON, wrong `schema` tag, or an entry missing required fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
        let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
        if schema != "flat-bench-snapshot/v1" {
            return Err(format!(
                "unsupported snapshot schema {schema:?} (want \"flat-bench-snapshot/v1\")"
            ));
        }
        let entries = doc
            .get("entries")
            .and_then(|v| v.as_array())
            .ok_or_else(|| "missing \"entries\" array".to_owned())?
            .iter()
            .enumerate()
            .map(|(i, e)| parse_entry(e).map_err(|err| format!("entries[{i}]: {err}")))
            .collect::<Result<Vec<BenchEntry>, String>>()?;
        Ok(BenchSnapshot {
            tag: doc
                .get("tag")
                .and_then(|v| v.as_str())
                .unwrap_or("untagged")
                .to_owned(),
            cpu_model: doc
                .get("cpu_model")
                .and_then(|v| v.as_str())
                .unwrap_or("unknown")
                .to_owned(),
            pool_threads: doc
                .get("pool_threads")
                .and_then(|v| v.as_u64())
                .unwrap_or(0),
            entries,
        })
    }
}

fn parse_entry(e: &Value) -> Result<BenchEntry, String> {
    let s = |k: &str| {
        e.get(k)
            .and_then(|v| v.as_str())
            .map(str::to_owned)
            .ok_or_else(|| format!("missing \"{k}\""))
    };
    let f = |k: &str| {
        e.get(k)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing \"{k}\""))
    };
    Ok(BenchEntry {
        name: s("name")?,
        group: s("group")?,
        config: s("config")?,
        mean_ms: f("mean_ms")?,
        min_ms: f("min_ms")?,
        reps: e.get("reps").and_then(|v| v.as_u64()).unwrap_or(0),
        max_rel_error: e.get("max_rel_error").and_then(|v| v.as_f64()),
        speedup_vs_baseline: e
            .get("speedup_vs_baseline")
            .and_then(|v| v.as_f64())
            .unwrap_or(1.0),
    })
}

/// Loads the committed snapshot history from `dir`: every
/// `BENCH_PR<n>.json`, sorted by PR number.
///
/// # Errors
///
/// Returns a description when the directory is unreadable or any
/// snapshot fails to parse. An empty directory yields an empty history.
pub fn load_history(dir: &Path) -> Result<Vec<BenchSnapshot>, String> {
    let mut numbered: Vec<(u64, PathBuf)> = Vec::new();
    let listing =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in listing.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(num) = name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            numbered.push((num, entry.path()));
        }
    }
    numbered.sort_by_key(|(n, _)| *n);
    numbered
        .into_iter()
        .map(|(_, path)| {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            BenchSnapshot::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
        })
        .collect()
}

/// One point on a metric's history trajectory.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrajectoryPoint {
    /// Snapshot tag.
    pub tag: String,
    /// Mean time, ms.
    pub mean_ms: f64,
    /// Numerical error, when measured.
    pub max_rel_error: Option<f64>,
}

/// One benchmark's trajectory across the snapshot history.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Trajectory {
    /// Alignment key (`group/name [config]`).
    pub key: String,
    /// Benchmark group.
    pub group: String,
    /// History points, snapshot-ordered.
    pub points: Vec<TrajectoryPoint>,
}

/// Builds per-metric trajectories over a snapshot history
/// (key-sorted; points follow the given snapshot order).
#[must_use]
pub fn trajectories(history: &[BenchSnapshot]) -> Vec<Trajectory> {
    let mut by_key: std::collections::BTreeMap<String, Trajectory> =
        std::collections::BTreeMap::new();
    for snap in history {
        for e in &snap.entries {
            by_key
                .entry(e.key())
                .or_insert_with(|| Trajectory {
                    key: e.key(),
                    group: e.group.clone(),
                    points: Vec::new(),
                })
                .points
                .push(TrajectoryPoint {
                    tag: snap.tag.clone(),
                    mean_ms: e.mean_ms,
                    max_rel_error: e.max_rel_error,
                });
        }
    }
    by_key.into_values().collect()
}

/// One gated regression.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchRegression {
    /// Alignment key of the regressed benchmark.
    pub key: String,
    /// `mean-ms` or `rel-error`.
    pub gate: String,
    /// Best (or worst-tolerated) prior value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// The limit the current value exceeded.
    pub limit: f64,
    /// Human-readable one-liner.
    pub detail: String,
}

/// The result of gating one snapshot against the history.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchCheck {
    /// Report schema tag.
    pub schema: String,
    /// Tag of the snapshot under test.
    pub current_tag: String,
    /// Tags of the prior snapshots gated against.
    pub baseline_tags: Vec<String>,
    /// Entries aligned and gated.
    pub checked: usize,
    /// Entries in the current snapshot with no prior history.
    pub new_entries: Vec<String>,
    /// Entries in the latest prior snapshot absent from the current one.
    pub missing_entries: Vec<String>,
    /// Gate failures.
    pub regressions: Vec<BenchRegression>,
    /// Whether the snapshot passes (no regressions).
    pub pass: bool,
}

impl BenchCheck {
    /// The report as pretty JSON — byte-deterministic for fixed inputs.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }
}

/// Mean-time tolerance for a benchmark group (see the module docs for
/// the calibration).
#[must_use]
pub fn group_tolerance(group: &str) -> f64 {
    match group {
        "dist" | "fleet" => MODELED_TOLERANCE,
        _ => WALL_TOLERANCE,
    }
}

/// Gates `current` against the prior history.
///
/// The baseline per entry is the *best* (minimum) prior mean, so a slow
/// machine in the history cannot mask a real regression; the tolerance
/// absorbs machine-to-machine spread. Entries without history are
/// reported as new, never failed.
#[must_use]
pub fn check_snapshot(history: &[BenchSnapshot], current: &BenchSnapshot) -> BenchCheck {
    let priors: Vec<&BenchSnapshot> = history.iter().filter(|s| s.tag != current.tag).collect();
    let mut best_mean: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    let mut worst_err: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for snap in &priors {
        for e in &snap.entries {
            let k = e.key();
            best_mean
                .entry(k.clone())
                .and_modify(|m| *m = m.min(e.mean_ms))
                .or_insert(e.mean_ms);
            if let Some(err) = e.max_rel_error {
                worst_err
                    .entry(k)
                    .and_modify(|m| *m = m.max(err))
                    .or_insert(err);
            }
        }
    }

    let mut regressions: Vec<BenchRegression> = Vec::new();
    let mut new_entries: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for e in &current.entries {
        let k = e.key();
        let Some(&baseline) = best_mean.get(&k) else {
            new_entries.push(k);
            continue;
        };
        checked += 1;
        let limit = baseline * group_tolerance(&e.group);
        if e.mean_ms > limit {
            regressions.push(BenchRegression {
                key: k.clone(),
                gate: "mean-ms".to_owned(),
                baseline,
                current: e.mean_ms,
                limit,
                detail: format!(
                    "mean {:.3} ms exceeds {:.1}x of best prior {:.3} ms",
                    e.mean_ms,
                    group_tolerance(&e.group),
                    baseline
                ),
            });
        }
        if let (Some(cur), Some(&prior)) = (e.max_rel_error, worst_err.get(&k)) {
            let err_limit = prior * 1.10 + 0.01;
            if cur > err_limit {
                regressions.push(BenchRegression {
                    key: k,
                    gate: "rel-error".to_owned(),
                    baseline: prior,
                    current: cur,
                    limit: err_limit,
                    detail: format!(
                        "max_rel_error {cur:.6} exceeds prior worst {prior:.6} * 1.10 + 0.01"
                    ),
                });
            }
        }
    }

    let missing_entries: Vec<String> = priors.last().map_or_else(Vec::new, |latest| {
        let have: std::collections::BTreeSet<String> =
            current.entries.iter().map(BenchEntry::key).collect();
        latest
            .entries
            .iter()
            .map(BenchEntry::key)
            .filter(|k| !have.contains(k))
            .collect()
    });

    regressions.sort_by(|a, b| a.key.cmp(&b.key).then_with(|| a.gate.cmp(&b.gate)));
    new_entries.sort();
    BenchCheck {
        schema: "flat-insight-bench-check/v1".to_owned(),
        current_tag: current.tag.clone(),
        baseline_tags: priors.iter().map(|s| s.tag.clone()).collect(),
        checked,
        new_entries,
        missing_entries,
        pass: regressions.is_empty(),
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(group: &str, name: &str, mean: f64, err: Option<f64>) -> BenchEntry {
        BenchEntry {
            name: name.to_owned(),
            group: group.to_owned(),
            config: "cfg".to_owned(),
            mean_ms: mean,
            min_ms: mean,
            reps: 3,
            max_rel_error: err,
            speedup_vs_baseline: 1.0,
        }
    }

    fn snap(tag: &str, entries: Vec<BenchEntry>) -> BenchSnapshot {
        BenchSnapshot {
            tag: tag.to_owned(),
            cpu_model: "test".to_owned(),
            pool_threads: 1,
            entries,
        }
    }

    #[test]
    fn identical_snapshot_passes() {
        let history = vec![snap("PR1", vec![entry("kernel", "a", 10.0, Some(1e-6))])];
        let current = snap("PR2", vec![entry("kernel", "a", 10.0, Some(1e-6))]);
        let check = check_snapshot(&history, &current);
        assert!(check.pass, "{check:?}");
        assert_eq!(check.checked, 1);
    }

    #[test]
    fn injected_mean_regression_fails_with_group_tolerance() {
        let history = vec![snap(
            "PR1",
            vec![
                entry("dist", "d", 10.0, None),
                entry("kernel", "k", 10.0, None),
            ],
        )];
        // dist (modeled, 1.5x) fails at 2x; kernel (wall, 4x) tolerates 2x.
        let current = snap(
            "PR2",
            vec![
                entry("dist", "d", 20.0, None),
                entry("kernel", "k", 20.0, None),
            ],
        );
        let check = check_snapshot(&history, &current);
        assert!(!check.pass);
        assert_eq!(check.regressions.len(), 1);
        assert!(check.regressions[0].key.starts_with("dist/"));
        // But a 5x kernel blowup fails too.
        let blowup = snap("PR2", vec![entry("kernel", "k", 50.0, None)]);
        assert!(!check_snapshot(&history, &blowup).pass);
    }

    #[test]
    fn rel_error_gate_fires_independently_of_speed() {
        let history = vec![snap("PR1", vec![entry("precision", "p", 10.0, Some(0.1))])];
        let bad = snap("PR2", vec![entry("precision", "p", 10.0, Some(0.5))]);
        let check = check_snapshot(&history, &bad);
        assert!(!check.pass);
        assert_eq!(check.regressions[0].gate, "rel-error");
        let ok = snap("PR2", vec![entry("precision", "p", 10.0, Some(0.11))]);
        assert!(check_snapshot(&history, &ok).pass);
    }

    #[test]
    fn baseline_is_best_prior_and_new_entries_never_fail() {
        let history = vec![
            snap("PR1", vec![entry("fleet", "f", 10.0, None)]),
            snap("PR2", vec![entry("fleet", "f", 30.0, None)]),
        ];
        // 14 ms is within 1.5x of the best prior (10), though not of a
        // naive latest-prior baseline after PR2's slow machine.
        let current = snap(
            "PR3",
            vec![
                entry("fleet", "f", 14.0, None),
                entry("fleet", "g", 1.0, None),
            ],
        );
        let check = check_snapshot(&history, &current);
        assert!(check.pass, "{check:?}");
        assert_eq!(check.new_entries, vec!["fleet/g [cfg]".to_owned()]);
        // 16 ms exceeds 1.5x of the best prior.
        let slow = snap("PR3", vec![entry("fleet", "f", 16.0, None)]);
        assert!(!check_snapshot(&history, &slow).pass);
    }

    #[test]
    fn parses_and_gates_the_committed_history_format() {
        let doc = r#"{
            "cpu_model": "test cpu",
            "entries": [
                {"config": "c", "group": "kernel", "max_rel_error": null,
                 "mean_ms": 1.5, "min_ms": 1.2, "name": "n", "reps": 3,
                 "speedup_vs_baseline": 1.0}
            ],
            "pool_threads": 1,
            "schema": "flat-bench-snapshot/v1",
            "tag": "PR1"
        }"#;
        let snap = BenchSnapshot::parse(doc).expect("parse");
        assert_eq!(snap.tag, "PR1");
        assert_eq!(snap.entries[0].key(), "kernel/n [c]");
        assert!(BenchSnapshot::parse("{\"schema\":\"other\"}").is_err());
    }

    #[test]
    fn trajectories_align_by_key_in_snapshot_order() {
        let history = vec![
            snap("PR1", vec![entry("kernel", "a", 10.0, None)]),
            snap("PR2", vec![entry("kernel", "a", 12.0, None)]),
        ];
        let t = trajectories(&history);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].points.len(), 2);
        assert_eq!(t[0].points[0].tag, "PR1");
        assert!((t[0].points[1].mean_ms - 12.0).abs() < 1e-12);
    }
}
