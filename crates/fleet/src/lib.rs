//! `flat-fleet` — a sustained-load fleet harness over the `flat-serve`
//! runtime.
//!
//! `flat-serve` answers "what does one burst of traffic cost?"; capacity
//! planning asks a different question: what does a *fleet* sustain over
//! hours of wall-clock under a traffic curve that breathes, with several
//! tenants competing under different SLOs, and a chip count that is
//! allowed to follow the load? This crate generates and drives that
//! shape of experiment, entirely on the deterministic virtual clock:
//!
//! * [`DiurnalCurve`] — a time-varying (non-homogeneous) Poisson arrival
//!   process: a base rate modulated by a sinusoidal day/night swing,
//!   sampled exactly via thinning;
//! * [`TenantLoad`] — one tenant's slice of the offered load: traffic
//!   share, fair-queueing weight, preemption priority, prompt/output
//!   shape, optional SLO, and an optional prompt-prefix template (system
//!   prompt / few-shot preamble) the engine's copy-on-write KV pool
//!   dedups across the tenant's requests;
//! * [`FleetSpec`] — the full experiment description, compiled by
//!   [`FleetSpec::generate`] into one merged, arrival-ordered request
//!   stream (10^5–10^6 requests is the intended scale; CI runs small);
//! * [`run_fleet`] / [`FleetConfig`] — drives the stream through the
//!   distributed serving engine with windowed trajectory sampling,
//!   optional prefix dedup, optional seeded chaos, and an elastic
//!   [`ScalePlan`](flat_serve::ScalePlan) that resizes the cluster
//!   mid-run (KV re-striping priced over the `flat-dist` fabric);
//! * [`FleetMetrics`] — the run report: the underlying
//!   [`DistServeMetrics`] (per-tenant accounting, windowed
//!   goodput/occupancy trajectory, scale-event log) plus fleet-level
//!   framing, serialized to JSON for `flat fleet --json` and the bench
//!   snapshots.
//!
//! Everything is seeded: same spec, same seed, same report — byte for
//! byte. CI holds a determinism smoke to that contract with chaos
//! enabled.
//!
//! # Example
//!
//! ```
//! use flat_arch::Accelerator;
//! use flat_fleet::{run_fleet, FleetConfig, FleetSpec};
//! use flat_workloads::Model;
//!
//! let model = Model::by_name("bert").unwrap();
//! let accel = Accelerator::edge();
//! let mut spec = FleetSpec::sustained(64); // tiny for the doctest
//! spec.curve.base_rate_per_s = 400.0;
//! let cfg = FleetConfig::default();
//! let m = run_fleet(&accel, &model, &spec, &cfg, 42).unwrap();
//! assert_eq!(m.offered, 64);
//! assert_eq!(
//!     (m.dist.serve.finished + m.dist.serve.dropped),
//!     m.offered,
//!     "conservation"
//! );
//! assert!(!m.dist.serve.windows.is_empty(), "trajectory sampled");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Robustness contract: non-test code in this crate must not carry panic
// paths. The clippy CI step fails on any violation.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use flat_arch::Accelerator;
use flat_dist::Topology;
use flat_insight::InsightFinding;
use flat_serve::{
    merge_streams, serve_dist_elastic, DistServeConfig, DistServeMetrics, EngineConfig, FaultPlan,
    RequestSpec, ScalePlan, ServeError,
};
use flat_telemetry::{NoopSink, TraceSink};
use flat_workloads::Model;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

/// One tenant's slice of the fleet's offered load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TenantLoad {
    /// Tenant id stamped on every generated request.
    pub tenant: u32,
    /// Share of the offered arrivals, in milli-units. Shares are
    /// normalized over the mix, so `(500, 300, 200)` and `(5, 3, 2)`
    /// describe the same split.
    pub share_milli: u32,
    /// Weighted-fair-admission weight, milli-units (1000 = 1.0).
    pub weight_milli: u32,
    /// Preemption priority (higher survives KV pressure longer).
    pub priority: u8,
    /// Mean prompt length, tokens.
    pub prompt_mean: usize,
    /// Mean output length, tokens.
    pub output_mean: usize,
    /// Per-request SLO in milliseconds past arrival; `None` = best
    /// effort.
    pub slo_ms: Option<f64>,
    /// Prompt-prefix template id shared by all of this tenant's
    /// requests; the engine's copy-on-write pool dedups the shared
    /// blocks when [`FleetConfig::dedup`] is set.
    pub prefix_template: Option<u64>,
    /// Shared-prefix length in tokens (clamped per request to its
    /// prompt).
    pub prefix_tokens: usize,
}

/// A sinusoidal day/night arrival-rate curve: a non-homogeneous Poisson
/// process with rate `base · (1 + amplitude · sin(2π·t/period))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DiurnalCurve {
    /// Mean arrival rate, requests per second.
    pub base_rate_per_s: f64,
    /// Swing around the mean, in `[0, 1)`: 0 is flat Poisson, 0.8 means
    /// the peak offers 9x the trough.
    pub amplitude: f64,
    /// Period of one "day" in virtual milliseconds.
    pub period_ms: f64,
}

impl DiurnalCurve {
    /// Instantaneous arrival rate at virtual time `t_ms`, requests/s.
    #[must_use]
    pub fn rate_at(&self, t_ms: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t_ms / self.period_ms;
        self.base_rate_per_s * (1.0 + self.amplitude * phase.sin())
    }

    /// The curve's envelope — the majorizing rate thinning samples
    /// against.
    #[must_use]
    pub fn peak_rate_per_s(&self) -> f64 {
        self.base_rate_per_s * (1.0 + self.amplitude)
    }
}

/// A full sustained-load experiment: how many requests arrive, on what
/// curve, split across which tenants.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetSpec {
    /// Total requests offered over the run.
    pub requests: usize,
    /// The arrival-rate curve.
    pub curve: DiurnalCurve,
    /// The tenant mix; must be non-empty with a positive total share.
    pub tenants: Vec<TenantLoad>,
}

impl FleetSpec {
    /// The default three-tenant mix at `requests` total offered load:
    /// an interactive tenant (half the traffic, tight SLO, high
    /// priority, a 96-token shared system prompt), a batch tenant
    /// (30%, long outputs, no SLO), and a background tenant (20%, low
    /// weight and priority). One virtual "day" is 60 s so diurnal
    /// effects show up inside CI-sized runs.
    #[must_use]
    pub fn sustained(requests: usize) -> Self {
        FleetSpec {
            requests,
            curve: DiurnalCurve {
                base_rate_per_s: 200.0,
                amplitude: 0.6,
                period_ms: 60_000.0,
            },
            tenants: vec![
                TenantLoad {
                    tenant: 0,
                    share_milli: 500,
                    weight_milli: 2000,
                    priority: 2,
                    prompt_mean: 128,
                    output_mean: 8,
                    slo_ms: Some(400.0),
                    prefix_template: Some(0xF1EE7),
                    prefix_tokens: 96,
                },
                TenantLoad {
                    tenant: 1,
                    share_milli: 300,
                    weight_milli: 1000,
                    priority: 1,
                    prompt_mean: 64,
                    output_mean: 24,
                    slo_ms: None,
                    prefix_template: None,
                    prefix_tokens: 0,
                },
                TenantLoad {
                    tenant: 2,
                    share_milli: 200,
                    weight_milli: 500,
                    priority: 0,
                    prompt_mean: 32,
                    output_mean: 12,
                    slo_ms: None,
                    prefix_template: None,
                    prefix_tokens: 0,
                },
            ],
        }
    }

    /// Rejects degenerate specs.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidWorkload`] naming the offending knob.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.requests == 0 {
            return Err(ServeError::InvalidWorkload(
                "fleet must offer at least one request".to_owned(),
            ));
        }
        if self.tenants.is_empty() {
            return Err(ServeError::InvalidWorkload(
                "fleet needs at least one tenant".to_owned(),
            ));
        }
        if self
            .tenants
            .iter()
            .map(|t| u64::from(t.share_milli))
            .sum::<u64>()
            == 0
        {
            return Err(ServeError::InvalidWorkload(
                "tenant shares must sum to a positive value".to_owned(),
            ));
        }
        for t in &self.tenants {
            if t.prompt_mean == 0 || t.output_mean == 0 {
                return Err(ServeError::InvalidWorkload(format!(
                    "tenant {} has a zero token mean",
                    t.tenant
                )));
            }
            if let Some(slo) = t.slo_ms {
                if !(slo.is_finite() && slo > 0.0) {
                    return Err(ServeError::InvalidWorkload(format!(
                        "tenant {} SLO must be finite and positive",
                        t.tenant
                    )));
                }
            }
        }
        let c = &self.curve;
        if !(c.base_rate_per_s.is_finite() && c.base_rate_per_s > 0.0) {
            return Err(ServeError::InvalidWorkload(
                "base arrival rate must be finite and positive".to_owned(),
            ));
        }
        if !(c.amplitude.is_finite() && (0.0..1.0).contains(&c.amplitude)) {
            return Err(ServeError::InvalidWorkload(
                "diurnal amplitude must lie in [0, 1)".to_owned(),
            ));
        }
        if !(c.period_ms.is_finite() && c.period_ms > 0.0) {
            return Err(ServeError::InvalidWorkload(
                "diurnal period must be finite and positive".to_owned(),
            ));
        }
        Ok(())
    }

    /// Compiles the spec into one merged, arrival-ordered request
    /// stream.
    ///
    /// Arrival instants are drawn from the diurnal curve by thinning:
    /// candidate gaps come from a homogeneous process at the curve's
    /// peak rate and each candidate survives with probability
    /// `rate(t)/peak`, which samples the non-homogeneous process
    /// exactly. Each accepted arrival is then assigned a tenant by a
    /// share-weighted draw and given prompt/output lengths uniform in
    /// `[mean/2, 3·mean/2]` (the same shape `flat-serve`'s
    /// single-tenant generator uses). Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// Propagates [`FleetSpec::validate`].
    pub fn generate(&self, seed: u64) -> Result<Vec<RequestSpec>, ServeError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let peak = self.curve.peak_rate_per_s();
        let total_share: u64 = self.tenants.iter().map(|t| u64::from(t.share_milli)).sum();
        let mut now_ms = 0.0f64;
        let mut out = Vec::with_capacity(self.requests);
        for id in 0..self.requests {
            // Thinning: propose at the envelope rate, accept at the
            // instantaneous one.
            loop {
                let u: f64 = rng.gen();
                now_ms += -(1.0 - u).ln() / peak * 1e3;
                let accept: f64 = rng.gen();
                if accept * peak <= self.curve.rate_at(now_ms) {
                    break;
                }
            }
            let pick = rng.gen_range(0..total_share);
            let t = pick_tenant(&self.tenants, pick);
            let prompt_len = uniform_about(t.prompt_mean, &mut rng);
            out.push(RequestSpec {
                id,
                arrival_ms: now_ms,
                prompt_len,
                output_len: uniform_about(t.output_mean, &mut rng),
                deadline_ms: t.slo_ms.map(|slo| now_ms + slo),
                tenant: t.tenant,
                priority: t.priority,
                weight_milli: t.weight_milli,
                prefix_template: t.prefix_template,
                prefix_len: t.prefix_tokens.min(prompt_len),
            });
        }
        // Arrivals are already time-ordered; merge_streams re-checks the
        // ordering invariants and re-numbers ids the way the scheduler
        // expects.
        Ok(merge_streams(vec![out]))
    }
}

/// Share-weighted tenant lookup: `pick` is uniform in
/// `[0, total_share)`.
fn pick_tenant(tenants: &[TenantLoad], pick: u64) -> &TenantLoad {
    let mut acc = 0u64;
    for t in tenants {
        acc += u64::from(t.share_milli);
        if pick < acc {
            return t;
        }
    }
    // Unreachable for pick < total_share; the last tenant is a safe
    // fallback that keeps this panic-free.
    &tenants[tenants.len() - 1]
}

/// Uniform in `[mean/2, 3·mean/2]`, floored at 1 token — the same
/// length distribution `flat_serve::WorkloadSpec` draws from.
fn uniform_about(mean: usize, rng: &mut StdRng) -> usize {
    let lo = (mean / 2).max(1);
    let hi = (mean + mean / 2).max(lo + 1);
    rng.gen_range(lo..=hi)
}

/// How the fleet run executes: cluster shape, trajectory sampling,
/// dedup, elastic plan, chaos.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Chips in the cluster at the start of the run.
    pub chips: usize,
    /// Fabric topology wiring them.
    pub topology: Topology,
    /// Trajectory-sampling window in virtual milliseconds.
    pub window_ms: f64,
    /// Copy-on-write prefix dedup in the KV pool.
    pub dedup: bool,
    /// Elastic scale events as `(at_ms, chips)` pairs; empty keeps the
    /// cluster fixed.
    pub scale: Vec<(f64, usize)>,
    /// Seeded chaos (the full `flat-serve` fault battery); `None` runs
    /// clean.
    pub chaos_seed: Option<u64>,
}

impl Default for FleetConfig {
    /// Single chip, ring wiring, 1 s windows, dedup on, no elasticity,
    /// no chaos.
    fn default() -> Self {
        FleetConfig {
            chips: 1,
            topology: Topology::Ring,
            window_ms: 1_000.0,
            dedup: true,
            scale: Vec::new(),
            chaos_seed: None,
        }
    }
}

/// The fleet run report: the distributed serving metrics plus
/// fleet-level framing.
#[derive(Debug, Clone, Serialize)]
pub struct FleetMetrics {
    /// Seed the run was generated and served under.
    pub seed: u64,
    /// Requests offered (after any chaos spec corruption).
    pub offered: usize,
    /// Whether copy-on-write prefix dedup was enabled.
    pub dedup: bool,
    /// Virtual hours the run spanned (`makespan / 3600 s`).
    pub virtual_hours: f64,
    /// The full distributed serving report: per-tenant accounting,
    /// windowed trajectory, scale-event log, KV-pool stats.
    pub dist: DistServeMetrics,
    /// Health findings over the windowed trajectory: multi-window SLO
    /// burn-rate breaches and rolling anomalies (goodput dips,
    /// KV-occupancy spikes, drop-rate steps). Deterministic in the
    /// trajectory.
    pub findings: Vec<InsightFinding>,
}

impl FleetMetrics {
    /// Pretty JSON, schema-stable for the CLI and the bench snapshots.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }
}

/// Generates the fleet's request stream and drives it through the
/// distributed serving engine.
///
/// The run is fully deterministic in `(spec, cfg, seed)`: workload
/// generation, tenant assignment, scheduling, chaos, and elastic
/// resizes all draw from seeded streams on the virtual clock, so two
/// invocations produce byte-identical JSON.
///
/// # Errors
///
/// Propagates spec validation, scale-plan validation, and any engine
/// error.
pub fn run_fleet(
    accel: &Accelerator,
    model: &Model,
    spec: &FleetSpec,
    cfg: &FleetConfig,
    seed: u64,
) -> Result<FleetMetrics, ServeError> {
    let mut sink = NoopSink;
    run_fleet_traced(accel, model, spec, cfg, seed, &mut sink)
}

/// [`run_fleet`] with every engine event streamed into `sink`.
///
/// # Errors
///
/// Same as [`run_fleet`].
pub fn run_fleet_traced(
    accel: &Accelerator,
    model: &Model,
    spec: &FleetSpec,
    cfg: &FleetConfig,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<FleetMetrics, ServeError> {
    if !(cfg.window_ms.is_finite() && cfg.window_ms > 0.0) {
        return Err(ServeError::InvalidConfig(
            "fleet window must be finite and positive".to_owned(),
        ));
    }
    let mut workload = spec.generate(seed)?;
    let faults = cfg.chaos_seed.map(FaultPlan::chaos);
    if let Some(plan) = &faults {
        plan.corrupt_workload(&mut workload);
    }
    let mut ecfg = EngineConfig::for_platform(accel, model, seed);
    ecfg.dedup = cfg.dedup;
    ecfg.window_ms = Some(cfg.window_ms);
    let dist = DistServeConfig::new(cfg.chips, cfg.topology);
    let plan = ScalePlan::new(&cfg.scale);
    let dist_metrics =
        serve_dist_elastic(accel, model, &workload, &ecfg, &dist, &plan, faults, sink)?;
    let virtual_hours = if dist_metrics.serve.makespan_ms.is_finite() {
        dist_metrics.serve.makespan_ms / 3.6e6
    } else {
        0.0
    };
    let findings = flat_insight::analyze_windows(
        &dist_metrics.serve.windows,
        flat_insight::DEFAULT_ERROR_BUDGET,
    );
    Ok(FleetMetrics {
        seed,
        offered: workload.len(),
        dedup: cfg.dedup,
        virtual_hours,
        dist: dist_metrics,
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(requests: usize) -> FleetSpec {
        let mut spec = FleetSpec::sustained(requests);
        spec.curve.base_rate_per_s = 800.0;
        spec.curve.period_ms = 200.0;
        for t in &mut spec.tenants {
            t.prompt_mean = t.prompt_mean.min(48);
            t.output_mean = t.output_mean.min(6);
        }
        spec
    }

    #[test]
    fn diurnal_rate_swings_about_the_base() {
        let c = DiurnalCurve {
            base_rate_per_s: 100.0,
            amplitude: 0.5,
            period_ms: 1000.0,
        };
        assert!((c.rate_at(0.0) - 100.0).abs() < 1e-9);
        assert!((c.rate_at(250.0) - 150.0).abs() < 1e-9, "peak at T/4");
        assert!((c.rate_at(750.0) - 50.0).abs() < 1e-9, "trough at 3T/4");
        assert!((c.peak_rate_per_s() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn generate_is_deterministic_and_well_formed() {
        let spec = small_spec(500);
        let a = spec.generate(7).unwrap();
        let b = spec.generate(7).unwrap();
        assert_eq!(a, b, "same seed, same stream");
        let c = spec.generate(8).unwrap();
        assert_ne!(a, c, "the seed must matter");
        assert_eq!(a.len(), 500);
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.id, i, "ids are arrival-ordered");
            assert!(r.is_well_formed(), "request {i}");
            assert!(r.prefix_len <= r.prompt_len);
            if i > 0 {
                assert!(r.arrival_ms >= a[i - 1].arrival_ms);
            }
        }
    }

    #[test]
    fn generate_respects_the_tenant_mix() {
        let spec = small_spec(4000);
        let wl = spec.generate(11).unwrap();
        let mut counts = [0usize; 3];
        for r in &wl {
            counts[r.tenant as usize] += 1;
        }
        // Shares are 500/300/200 milli; allow generous sampling noise.
        let frac = |n: usize| n as f64 / wl.len() as f64;
        assert!((frac(counts[0]) - 0.5).abs() < 0.05, "{counts:?}");
        assert!((frac(counts[1]) - 0.3).abs() < 0.05, "{counts:?}");
        assert!((frac(counts[2]) - 0.2).abs() < 0.05, "{counts:?}");
        // The interactive tenant carries its prefix template.
        assert!(wl
            .iter()
            .filter(|r| r.tenant == 0)
            .all(|r| r.prefix_template == Some(0xF1EE7) && r.prefix_len > 0));
    }

    #[test]
    fn diurnal_arrivals_cluster_at_the_peak() {
        // With amplitude 0.9 the first quarter-period (rising toward the
        // peak) must receive visibly more arrivals than the third
        // (falling toward the trough).
        let spec = FleetSpec {
            requests: 2000,
            curve: DiurnalCurve {
                base_rate_per_s: 2000.0,
                amplitude: 0.9,
                period_ms: 500.0,
            },
            tenants: FleetSpec::sustained(1).tenants,
        };
        let wl = spec.generate(3).unwrap();
        let in_phase = |r: &RequestSpec, lo: f64, hi: f64| {
            let t = r.arrival_ms % 500.0;
            t >= lo && t < hi
        };
        let peak_half = wl.iter().filter(|r| in_phase(r, 0.0, 250.0)).count();
        let trough_half = wl.iter().filter(|r| in_phase(r, 250.0, 500.0)).count();
        assert!(
            peak_half > trough_half * 2,
            "peak half {peak_half} vs trough half {trough_half}"
        );
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let mut s = small_spec(10);
        s.requests = 0;
        assert!(s.validate().is_err());
        let mut s = small_spec(10);
        s.tenants.clear();
        assert!(s.validate().is_err());
        let mut s = small_spec(10);
        for t in &mut s.tenants {
            t.share_milli = 0;
        }
        assert!(s.validate().is_err());
        let mut s = small_spec(10);
        s.curve.amplitude = 1.0;
        assert!(s.validate().is_err(), "amplitude 1 stalls thinning");
        let mut s = small_spec(10);
        s.curve.base_rate_per_s = 0.0;
        assert!(s.validate().is_err());
        let mut s = small_spec(10);
        s.tenants[0].slo_ms = Some(f64::NAN);
        assert!(s.validate().is_err());
    }

    #[test]
    fn fleet_run_conserves_requests_and_samples_windows() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let spec = small_spec(96);
        let cfg = FleetConfig::default();
        let m = run_fleet(&accel, &model, &spec, &cfg, 21).unwrap();
        assert_eq!(m.offered, 96);
        let s = &m.dist.serve;
        assert_eq!(s.finished + s.dropped, m.offered, "conservation");
        assert_eq!(s.drops.total(), s.dropped as u64);
        assert!(!s.windows.is_empty(), "windowed trajectory present");
        assert!(!s.tenants.is_empty(), "per-tenant accounting present");
        assert!(m.virtual_hours > 0.0);
    }

    #[test]
    fn fleet_runs_are_byte_deterministic_even_under_chaos() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let spec = small_spec(64);
        let cfg = FleetConfig {
            chips: 2,
            scale: vec![(5.0, 4), (40.0, 2)],
            chaos_seed: Some(0xC4A05),
            ..FleetConfig::default()
        };
        let a = run_fleet(&accel, &model, &spec, &cfg, 9).unwrap();
        let b = run_fleet(&accel, &model, &spec, &cfg, 9).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "same seed, same bytes");
        let s = &a.dist.serve;
        assert_eq!(s.finished + s.dropped, a.offered, "chaos conserves");
    }

    #[test]
    fn elastic_plan_is_applied_and_logged() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let spec = small_spec(80);
        let cfg = FleetConfig {
            chips: 2,
            window_ms: 5.0, // fine-grained so windows straddle the resizes
            scale: vec![(2.0, 4), (30.0, 2)],
            ..FleetConfig::default()
        };
        let m = run_fleet(&accel, &model, &spec, &cfg, 5).unwrap();
        assert_eq!(m.dist.chips, 2);
        assert!(!m.dist.scale_events.is_empty(), "resizes were applied");
        let up = &m.dist.scale_events[0];
        assert_eq!(up.to_chips, 4);
        assert!(up.applied_ms >= up.at_ms);
        // Scale-up re-stripes existing KV state over the fabric.
        assert!(m.dist.kv_migrated_bytes > 0.0, "migration was priced");
        assert!(m.dist.kv_migration_ms >= 0.0);
        // The window trajectory records the chip count as it changes.
        let chips_seen: std::collections::BTreeSet<usize> =
            m.dist.serve.windows.iter().map(|w| w.chips).collect();
        assert!(
            chips_seen.len() > 1,
            "trajectory spans more than one cluster size: {chips_seen:?}"
        );
    }

    #[test]
    fn dedup_offers_the_same_stream_as_no_dedup() {
        // The knob must only change KV accounting, never the offered
        // workload: generation is independent of FleetConfig.
        let spec = small_spec(40);
        assert_eq!(spec.generate(13).unwrap(), spec.generate(13).unwrap());
    }

    #[test]
    fn fleet_metrics_serialize() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let spec = small_spec(24);
        let m = run_fleet(&accel, &model, &spec, &FleetConfig::default(), 2).unwrap();
        let json = m.to_json();
        for key in [
            "\"seed\"",
            "\"offered\"",
            "\"dedup\"",
            "\"virtual_hours\"",
            "\"windows\"",
            "\"tenants\"",
            "\"scale_events\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
