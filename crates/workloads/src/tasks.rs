//! Long-sequence task presets — the paper's §1 motivation, as data.
//!
//! "Image generation (sequence length N=12K), paragraph summarization
//! (N=64K), language modeling (N=69K), music processing (N=1024K), and
//! more upcoming new applications."

use serde::{Deserialize, Serialize};
use std::fmt;

/// A long-sequence application domain and its working sequence length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// Token classification / translation style NLP (the classic 512).
    ShortNlp,
    /// Autoregressive image generation (≈12K tokens).
    ImageGeneration,
    /// Paragraph / document summarization (≈64K).
    Summarization,
    /// Long-context language modeling (≈69K).
    LanguageModeling,
    /// Music generation (≈1M tokens).
    MusicProcessing,
}

impl Task {
    /// The representative sequence length the paper quotes for this task.
    #[must_use]
    pub const fn sequence_length(self) -> u64 {
        match self {
            Task::ShortNlp => 512,
            Task::ImageGeneration => 12 * 1024,
            Task::Summarization => 64 * 1024,
            Task::LanguageModeling => 69 * 1024,
            Task::MusicProcessing => 1024 * 1024,
        }
    }

    /// All tasks, shortest first.
    #[must_use]
    pub const fn all() -> [Task; 5] {
        [
            Task::ShortNlp,
            Task::ImageGeneration,
            Task::Summarization,
            Task::LanguageModeling,
            Task::MusicProcessing,
        ]
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Task::ShortNlp => "short NLP",
            Task::ImageGeneration => "image generation",
            Task::Summarization => "summarization",
            Task::LanguageModeling => "language modeling",
            Task::MusicProcessing => "music processing",
        };
        f.write_str(name)
    }
}

/// The Long Range Arena tasks (Tay et al., cited by the paper as "the
/// benchmark for efficient transformers", paper ref 71) with their sequence
/// lengths — a second, externally defined long-sequence suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LraTask {
    /// ListOps: hierarchical expressions, 2K tokens.
    ListOps,
    /// Byte-level text classification, 4K.
    Text,
    /// Byte-level document retrieval, 8K (dual 4K documents).
    Retrieval,
    /// Pixel-level CIFAR-10, 1K.
    Image,
    /// Pathfinder, 1K.
    Pathfinder,
    /// Pathfinder-X, 16K — the task most LRA entrants cannot run at all.
    PathX,
}

impl LraTask {
    /// The task's sequence length.
    #[must_use]
    pub const fn sequence_length(self) -> u64 {
        match self {
            LraTask::ListOps => 2048,
            LraTask::Text => 4096,
            LraTask::Retrieval => 8192,
            LraTask::Image | LraTask::Pathfinder => 1024,
            LraTask::PathX => 16_384,
        }
    }

    /// All six tasks.
    #[must_use]
    pub const fn all() -> [LraTask; 6] {
        [
            LraTask::ListOps,
            LraTask::Text,
            LraTask::Retrieval,
            LraTask::Image,
            LraTask::Pathfinder,
            LraTask::PathX,
        ]
    }
}

impl fmt::Display for LraTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LraTask::ListOps => "ListOps",
            LraTask::Text => "Text",
            LraTask::Retrieval => "Retrieval",
            LraTask::Image => "Image",
            LraTask::Pathfinder => "Pathfinder",
            LraTask::PathX => "Path-X",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lra_lengths_are_canonical() {
        assert_eq!(LraTask::ListOps.sequence_length(), 2048);
        assert_eq!(LraTask::PathX.sequence_length(), 16_384);
        assert_eq!(LraTask::all().len(), 6);
    }

    #[test]
    fn lengths_match_the_paper() {
        assert_eq!(Task::ImageGeneration.sequence_length(), 12_288);
        assert_eq!(Task::Summarization.sequence_length(), 65_536);
        assert_eq!(Task::MusicProcessing.sequence_length(), 1_048_576);
    }

    #[test]
    fn tasks_are_sorted_by_length() {
        let all = Task::all();
        for w in all.windows(2) {
            assert!(w[0].sequence_length() < w[1].sequence_length());
        }
    }
}
