//! Attention workloads: the model zoo and the attention-block operator
//! graph.
//!
//! This crate turns a model name plus `(batch, sequence length)` into the
//! list of batched GEMMs the cost model prices:
//!
//! * [`AttentionConfig`] — the `B/H/N/D/ffn` dimension bundle of one layer,
//!   including cross-attention (`seq_q ≠ seq_kv`) and the Table 1 staging
//!   footprint formulas,
//! * [`Operator`] / [`OpKind`] — the eight operators Q, K, V, L, A, O,
//!   FC1, FC2 with their GEMM forms, tagged by the evaluation's
//!   [`OpCategory`] taxonomy (L-A / Projection / FC),
//! * [`AttentionBlock`] and [`Scope`] — Figure 8's L-A / Block / Model
//!   analysis levels,
//! * [`Model`] — the evaluation suite: BERT, FlauBERT, XLM, TransformerXL,
//!   T5 (§6.1).
//!
//! # Example
//!
//! ```
//! use flat_workloads::{Model, Scope};
//!
//! let block = Model::bert().block(64, 32_768);
//! let la = block.macs_in_scope(Scope::LogitAttend);
//! let all = block.total_macs();
//! // At long sequence lengths L-A dominates the block's compute.
//! assert!(la * 2 > all);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attention;
mod block;
mod decoder;
mod models;
mod operator;
mod tasks;

pub use attention::AttentionConfig;
pub use block::{AttentionBlock, Scope};
pub use decoder::DecoderBlock;
pub use models::{Model, ModelKind};
pub use operator::{OpCategory, OpKind, Operator};
pub use tasks::{LraTask, Task};
