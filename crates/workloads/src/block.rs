//! The attention block: the eight operators plus evaluation scopes.

use crate::{AttentionConfig, OpCategory, OpKind, Operator};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One attention block: attention layer (Q/K/V/L/A/O) followed by the
/// two-layer feed-forward network (Figure 1(a); normalization layers are
/// element-wise and negligible next to the GEMMs, as in the paper's model).
///
/// # Example
///
/// ```
/// use flat_workloads::{AttentionBlock, AttentionConfig, Scope};
///
/// let block = AttentionBlock::new(AttentionConfig::self_attention(64, 16, 512, 1024, 4096));
/// assert_eq!(block.operators().len(), 8);
/// assert_eq!(block.operators_in_scope(Scope::LogitAttend).count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionBlock {
    config: AttentionConfig,
    operators: Vec<Operator>,
}

impl AttentionBlock {
    /// Builds the block's operator list from the layer configuration.
    #[must_use]
    pub fn new(config: AttentionConfig) -> Self {
        let operators = OpKind::all()
            .iter()
            .map(|&k| Operator::from_config(k, &config))
            .collect();
        AttentionBlock { config, operators }
    }

    /// The layer configuration this block was built from.
    #[must_use]
    pub fn config(&self) -> &AttentionConfig {
        &self.config
    }

    /// All eight operators in dataflow order.
    #[must_use]
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// The operator of a particular kind.
    #[must_use]
    pub fn operator(&self, kind: OpKind) -> &Operator {
        self.operators
            .iter()
            .find(|op| op.kind == kind)
            .expect("block always contains all eight operator kinds")
    }

    /// Operators included in an evaluation scope.
    pub fn operators_in_scope(&self, scope: Scope) -> impl Iterator<Item = &Operator> {
        self.operators
            .iter()
            .filter(move |op| scope.includes(op.kind))
    }

    /// Operators of one Figure 11 category.
    pub fn operators_in_category(&self, category: OpCategory) -> impl Iterator<Item = &Operator> {
        self.operators
            .iter()
            .filter(move |op| op.category() == category)
    }

    /// Total MACs across the whole block.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.operators.iter().map(|op| op.gemm.macs()).sum()
    }

    /// Total MACs in a scope.
    #[must_use]
    pub fn macs_in_scope(&self, scope: Scope) -> u64 {
        self.operators_in_scope(scope)
            .map(|op| op.gemm.macs())
            .sum()
    }
}

impl fmt::Display for AttentionBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attention block ({})", self.config)
    }
}

/// The three performance-analysis levels of Figure 8: just the fused pair,
/// the whole block, or the whole model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// Only the Logit and Attend operators.
    LogitAttend,
    /// All operators of one attention block.
    Block,
    /// All blocks of the model (identical blocks — cost scales linearly).
    Model,
}

impl Scope {
    /// Whether an operator kind is inside this scope (for a single block;
    /// `Model` and `Block` include the same kinds, `Model` just multiplies
    /// by the block count downstream).
    #[must_use]
    pub fn includes(self, kind: OpKind) -> bool {
        match self {
            Scope::LogitAttend => kind.is_activation_activation(),
            Scope::Block | Scope::Model => true,
        }
    }

    /// All scopes in Figure 8's row order.
    #[must_use]
    pub const fn all() -> [Scope; 3] {
        [Scope::LogitAttend, Scope::Block, Scope::Model]
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scope::LogitAttend => "L-A",
            Scope::Block => "Block",
            Scope::Model => "Model",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> AttentionBlock {
        AttentionBlock::new(AttentionConfig::self_attention(64, 16, 512, 1024, 4096))
    }

    #[test]
    fn block_has_all_eight_ops_in_order() {
        let b = block();
        let kinds: Vec<OpKind> = b.operators().iter().map(|o| o.kind).collect();
        assert_eq!(kinds, OpKind::all());
    }

    #[test]
    fn scope_filters_operator_counts() {
        let b = block();
        assert_eq!(b.operators_in_scope(Scope::LogitAttend).count(), 2);
        assert_eq!(b.operators_in_scope(Scope::Block).count(), 8);
        assert_eq!(b.operators_in_scope(Scope::Model).count(), 8);
    }

    #[test]
    fn la_macs_grow_quadratically_with_seq() {
        let short = block();
        let long = AttentionBlock::new(short.config().with_seq(1024));
        assert_eq!(
            long.macs_in_scope(Scope::LogitAttend),
            4 * short.macs_in_scope(Scope::LogitAttend)
        );
        // While projection MACs only double.
        let proj = |b: &AttentionBlock| -> u64 {
            b.operators_in_category(OpCategory::Projection)
                .map(|o| o.gemm.macs())
                .sum()
        };
        assert_eq!(proj(&long), 2 * proj(&short));
    }

    #[test]
    fn operator_lookup_by_kind() {
        let b = block();
        assert_eq!(b.operator(OpKind::Logit).kind, OpKind::Logit);
    }

    #[test]
    fn total_is_sum_of_scopes_partition() {
        let b = block();
        let by_cat: u64 = OpCategory::all()
            .iter()
            .flat_map(|&c| b.operators_in_category(c))
            .map(|o| o.gemm.macs())
            .sum();
        assert_eq!(by_cat, b.total_macs());
    }
}
