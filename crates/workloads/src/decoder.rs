//! Encoder-decoder blocks: a decoder layer carries *two* attention layers
//! — causal self-attention over the target sequence and cross-attention
//! into the encoder's output — plus one feed-forward pair. T5 (in the
//! evaluation suite) is this architecture; the paper prices its encoder
//! stack, and this module extends the workload coverage to the decoder.

use crate::{AttentionBlock, AttentionConfig, OpCategory, OpKind, Operator};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One decoder block: self-attention (Q/K/V/L/A/O over the decoder
/// sequence), cross-attention (queries from the decoder, keys/values from
/// the encoder output), and the FFN pair.
///
/// Both attention layers expose a fusable L-A pair; the cross-attention
/// one is where `seq_q ≠ seq_kv` matters.
///
/// # Example
///
/// ```
/// use flat_workloads::{DecoderBlock, Model};
///
/// let block = DecoderBlock::for_model(&Model::t5_small(), 8, 1024, 4096);
/// assert_eq!(block.operators().count(), 14);
/// assert_eq!(block.cross_attention().config().seq_kv, 4096);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecoderBlock {
    self_attn: AttentionBlock,
    cross_attn: AttentionBlock,
}

impl DecoderBlock {
    /// Builds a decoder block from explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics on invalid attention dimensions (see
    /// [`AttentionConfig::cross_attention`]).
    #[must_use]
    pub fn new(
        batch: u64,
        heads: u64,
        dec_seq: u64,
        enc_seq: u64,
        hidden: u64,
        ffn_hidden: u64,
    ) -> Self {
        DecoderBlock {
            self_attn: AttentionBlock::new(AttentionConfig::self_attention(
                batch, heads, dec_seq, hidden, ffn_hidden,
            )),
            cross_attn: AttentionBlock::new(AttentionConfig::cross_attention(
                batch, heads, dec_seq, enc_seq, hidden, ffn_hidden,
            )),
        }
    }

    /// Builds a decoder block with a zoo model's layer dimensions.
    #[must_use]
    pub fn for_model(model: &crate::Model, batch: u64, dec_seq: u64, enc_seq: u64) -> Self {
        DecoderBlock::new(
            batch,
            model.heads(),
            dec_seq,
            enc_seq,
            model.hidden(),
            model.ffn_hidden(),
        )
    }

    /// The self-attention layer (as a full block; its FFN operators are
    /// excluded from [`DecoderBlock::operators`] so the pair is counted
    /// once).
    #[must_use]
    pub fn self_attention(&self) -> &AttentionBlock {
        &self.self_attn
    }

    /// The cross-attention layer.
    #[must_use]
    pub fn cross_attention(&self) -> &AttentionBlock {
        &self.cross_attn
    }

    /// The block's fourteen operators: both attention layers' Q/K/V/L/A/O
    /// plus one FFN pair.
    pub fn operators(&self) -> impl Iterator<Item = &Operator> {
        const ATTN: [OpKind; 6] = [
            OpKind::Query,
            OpKind::Key,
            OpKind::Value,
            OpKind::Logit,
            OpKind::Attend,
            OpKind::Output,
        ];
        let self_ops = ATTN.map(|k| self.self_attn.operator(k));
        let cross_ops = ATTN.map(|k| self.cross_attn.operator(k));
        self_ops.into_iter().chain(cross_ops).chain([
            self.self_attn.operator(OpKind::FeedForward1),
            self.self_attn.operator(OpKind::FeedForward2),
        ])
    }

    /// Operators of one category, across both attention layers.
    pub fn operators_in_category(&self, category: OpCategory) -> impl Iterator<Item = &Operator> {
        self.operators().filter(move |op| op.category() == category)
    }

    /// Total MACs across the block.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.operators().map(|op| op.gemm.macs()).sum()
    }
}

impl fmt::Display for DecoderBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.self_attn.config();
        let c = self.cross_attn.config();
        write!(
            f,
            "decoder block (B={} H={} dec={} enc={} D={})",
            s.batch, s.heads, s.seq_q, c.seq_kv, s.hidden
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    fn block() -> DecoderBlock {
        DecoderBlock::for_model(&Model::t5_small(), 8, 512, 2048)
    }

    #[test]
    fn has_fourteen_operators() {
        assert_eq!(block().operators().count(), 14);
    }

    #[test]
    fn category_split_is_2_la_pairs_8_projections_2_fc() {
        let b = block();
        assert_eq!(b.operators_in_category(OpCategory::LogitAttend).count(), 4);
        assert_eq!(b.operators_in_category(OpCategory::Projection).count(), 8);
        assert_eq!(b.operators_in_category(OpCategory::FeedForward).count(), 2);
    }

    #[test]
    fn cross_attention_sees_both_sequence_lengths() {
        let b = block();
        let logit = b.cross_attention().operator(OpKind::Logit);
        assert_eq!((logit.gemm.m, logit.gemm.n), (512, 2048));
        // Keys and values project the encoder side.
        assert_eq!(b.cross_attention().operator(OpKind::Key).gemm.m, 2048);
        assert_eq!(b.cross_attention().operator(OpKind::Query).gemm.m, 512);
    }

    #[test]
    fn ffn_counted_once() {
        let b = block();
        let ffn_macs: u64 = b
            .operators_in_category(OpCategory::FeedForward)
            .map(|o| o.gemm.macs())
            .sum();
        let single = b
            .self_attention()
            .operator(OpKind::FeedForward1)
            .gemm
            .macs()
            + b.self_attention()
                .operator(OpKind::FeedForward2)
                .gemm
                .macs();
        assert_eq!(ffn_macs, single);
    }

    #[test]
    fn total_macs_is_sum_of_parts() {
        let b = block();
        let by_cat: u64 = OpCategory::all()
            .iter()
            .flat_map(|&c| b.operators_in_category(c))
            .map(|o| o.gemm.macs())
            .sum();
        assert_eq!(by_cat, b.total_macs());
    }
}
