//! Attention layer configuration.

use flat_tensor::{Bytes, DataType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of one multi-head attention layer plus its surrounding
/// feed-forward block, following the notation of Figure 1:
///
/// * `B` — batch size,
/// * `H` — number of heads,
/// * `N` — sequence length (`seq_q` for the query side, `seq_kv` for the
///   key/value side; they differ only in cross-attention),
/// * `D` — hidden (embedding) dimension, with `dk = D / H` per head,
/// * `ffn` — the inner dimension of the two FC layers (typically `4·D`).
///
/// # Example
///
/// ```
/// use flat_workloads::AttentionConfig;
///
/// let cfg = AttentionConfig::self_attention(64, 16, 512, 1024, 4096);
/// assert_eq!(cfg.dk(), 64);
/// assert_eq!(cfg.logit_elements(), 64 * 16 * 512 * 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttentionConfig {
    /// Batch size `B`.
    pub batch: u64,
    /// Number of attention heads `H`.
    pub heads: u64,
    /// Query-side sequence length.
    pub seq_q: u64,
    /// Key/value-side sequence length (equals `seq_q` for self-attention).
    pub seq_kv: u64,
    /// Hidden dimension `D`.
    pub hidden: u64,
    /// Feed-forward inner dimension.
    pub ffn_hidden: u64,
    /// Element precision (the paper evaluates at 16-bit).
    pub dtype: DataType,
}

impl AttentionConfig {
    /// Creates a self-attention configuration (`seq_q == seq_kv`).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `hidden` is not divisible by
    /// `heads`.
    #[must_use]
    pub fn self_attention(batch: u64, heads: u64, seq: u64, hidden: u64, ffn_hidden: u64) -> Self {
        Self::cross_attention(batch, heads, seq, seq, hidden, ffn_hidden)
    }

    /// Creates a cross-attention configuration with distinct query and
    /// key/value sequence lengths (Figure 1 footnote).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `hidden` is not divisible by
    /// `heads`.
    #[must_use]
    pub fn cross_attention(
        batch: u64,
        heads: u64,
        seq_q: u64,
        seq_kv: u64,
        hidden: u64,
        ffn_hidden: u64,
    ) -> Self {
        assert!(
            batch > 0 && heads > 0 && seq_q > 0 && seq_kv > 0 && hidden > 0 && ffn_hidden > 0,
            "attention dimensions must be positive"
        );
        assert!(
            hidden.is_multiple_of(heads),
            "hidden dimension {hidden} must divide evenly across {heads} heads"
        );
        AttentionConfig {
            batch,
            heads,
            seq_q,
            seq_kv,
            hidden,
            ffn_hidden,
            dtype: DataType::default(),
        }
    }

    /// Per-head dimension `dk = D / H`.
    #[must_use]
    pub fn dk(&self) -> u64 {
        self.hidden / self.heads
    }

    /// True when query and key/value sides share a sequence length.
    #[must_use]
    pub fn is_self_attention(&self) -> bool {
        self.seq_q == self.seq_kv
    }

    /// Returns a copy with both sequence lengths set to `seq` (the knob the
    /// Figure 8–12 sweeps turn).
    #[must_use]
    pub fn with_seq(&self, seq: u64) -> Self {
        let mut c = *self;
        c.seq_q = seq;
        c.seq_kv = seq;
        c
    }

    /// Returns a copy with a different batch size.
    #[must_use]
    pub fn with_batch(&self, batch: u64) -> Self {
        let mut c = *self;
        assert!(batch > 0, "batch must be positive");
        c.batch = batch;
        c
    }

    /// Returns a copy with a different element precision.
    #[must_use]
    pub fn with_dtype(&self, dtype: DataType) -> Self {
        let mut c = *self;
        c.dtype = dtype;
        c
    }

    /// Elements of the intermediate (logit) tensor: `B · H · Nq · Nkv`.
    ///
    /// This is the `O(N²)` quantity the whole paper is about.
    #[must_use]
    pub fn logit_elements(&self) -> u64 {
        self.batch * self.heads * self.seq_q * self.seq_kv
    }

    /// Bytes of the intermediate (logit) tensor at the configured precision.
    #[must_use]
    pub fn logit_size(&self) -> Bytes {
        Bytes::new(self.logit_elements() * self.dtype.size_bytes())
    }

    /// On-chip buffer needed to stage one Q/K/V/O projection operator fully
    /// on-chip: weight `D²` plus input and output activations `2·N·D`
    /// (Table 1, "K/Q/V/O" row; per input sample, i.e. batch 1).
    #[must_use]
    pub fn qkvo_staging_size(&self) -> Bytes {
        let elems = self.hidden * self.hidden + 2 * self.seq_q * self.hidden;
        Bytes::new(elems * self.dtype.size_bytes())
    }

    /// On-chip buffer needed to stage the fused L/A pair fully on-chip:
    /// Q and K activations `2·N·D` plus the multi-head logit tensor `H·N²`
    /// (Table 1, "L/A" row; per input sample).
    #[must_use]
    pub fn la_staging_size(&self) -> Bytes {
        let elems = self.seq_q * self.hidden
            + self.seq_kv * self.hidden
            + self.heads * self.seq_q * self.seq_kv;
        Bytes::new(elems * self.dtype.size_bytes())
    }
}

impl fmt::Display for AttentionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_self_attention() {
            write!(
                f,
                "B={} H={} N={} D={} ffn={} ({})",
                self.batch, self.heads, self.seq_q, self.hidden, self.ffn_hidden, self.dtype
            )
        } else {
            write!(
                f,
                "B={} H={} Nq={} Nkv={} D={} ffn={} ({})",
                self.batch,
                self.heads,
                self.seq_q,
                self.seq_kv,
                self.hidden,
                self.ffn_hidden,
                self.dtype
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1, H=1, N=512, D=1024, 16-bit: K/Q/V/O ≈ 4 MB, L/A ≈ 2.5 MB
    /// (the paper uses decimal megabytes).
    #[test]
    fn table1_h1_n512() {
        let cfg = AttentionConfig::self_attention(1, 1, 512, 1024, 4096);
        let qkvo_mb = cfg.qkvo_staging_size().as_u64() as f64 / 1e6;
        let la_mb = cfg.la_staging_size().as_u64() as f64 / 1e6;
        assert!((qkvo_mb - 4.2).abs() < 0.1, "qkvo = {qkvo_mb} MB");
        assert!((la_mb - 2.6).abs() < 0.2, "la = {la_mb} MB");
    }

    /// Table 1, H=16, N=14K: L/A ≈ 6.6 GB — the headline blow-up.
    #[test]
    fn table1_h16_n14k_explodes() {
        let cfg = AttentionConfig::self_attention(1, 16, 14 * 1024, 1024, 4096);
        let la_gb = cfg.la_staging_size().as_u64() as f64 / 1e9;
        assert!((la_gb - 6.6).abs() < 0.3, "la = {la_gb} GB");
        // While the projection side stays flat at ~62 MB.
        let qkvo_mb = cfg.qkvo_staging_size().as_u64() as f64 / 1e6;
        assert!((qkvo_mb - 61.0).abs() < 3.0, "qkvo = {qkvo_mb} MB");
    }

    #[test]
    fn dk_divides_hidden() {
        let cfg = AttentionConfig::self_attention(64, 16, 512, 1024, 4096);
        assert_eq!(cfg.dk() * cfg.heads, cfg.hidden);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn indivisible_heads_rejected() {
        let _ = AttentionConfig::self_attention(1, 3, 512, 1024, 4096);
    }

    #[test]
    fn with_seq_updates_both_sides() {
        let cfg = AttentionConfig::cross_attention(1, 8, 128, 256, 512, 2048).with_seq(1024);
        assert!(cfg.is_self_attention());
        assert_eq!(cfg.seq_q, 1024);
    }

    #[test]
    fn logit_tensor_is_quadratic_in_seq() {
        let cfg = AttentionConfig::self_attention(2, 4, 100, 512, 2048);
        let doubled = cfg.with_seq(200);
        assert_eq!(doubled.logit_elements(), 4 * cfg.logit_elements());
    }
}
