//! The eight operators of an attention block and their GEMM forms.

use crate::AttentionConfig;
use flat_tensor::Gemm;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which operator of the attention block this is (Figure 1(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Query projection `X·Wq`.
    Query,
    /// Key projection `X·Wk`.
    Key,
    /// Value projection `X·Wv`.
    Value,
    /// Logit: `Q·Kᵀ` per (batch, head) — activation-activation.
    Logit,
    /// Attend: `softmax(L)·V` per (batch, head) — activation-activation.
    Attend,
    /// Output projection of the attended tensor.
    Output,
    /// First feed-forward layer (`D → ffn`).
    FeedForward1,
    /// Second feed-forward layer (`ffn → D`).
    FeedForward2,
}

impl OpKind {
    /// True for the two activation-activation operators (L, A) — the ones
    /// with the quadratic intermediate tensor and no batching reuse.
    #[must_use]
    pub const fn is_activation_activation(self) -> bool {
        matches!(self, OpKind::Logit | OpKind::Attend)
    }

    /// The evaluation's three-way operator taxonomy (§6.5.1).
    #[must_use]
    pub const fn category(self) -> OpCategory {
        match self {
            OpKind::Logit | OpKind::Attend => OpCategory::LogitAttend,
            OpKind::Query | OpKind::Key | OpKind::Value | OpKind::Output => OpCategory::Projection,
            OpKind::FeedForward1 | OpKind::FeedForward2 => OpCategory::FeedForward,
        }
    }

    /// All operator kinds in dataflow order.
    #[must_use]
    pub const fn all() -> [OpKind; 8] {
        [
            OpKind::Query,
            OpKind::Key,
            OpKind::Value,
            OpKind::Logit,
            OpKind::Attend,
            OpKind::Output,
            OpKind::FeedForward1,
            OpKind::FeedForward2,
        ]
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpKind::Query => "Q",
            OpKind::Key => "K",
            OpKind::Value => "V",
            OpKind::Logit => "L",
            OpKind::Attend => "A",
            OpKind::Output => "O",
            OpKind::FeedForward1 => "FC1",
            OpKind::FeedForward2 => "FC2",
        };
        f.write_str(name)
    }
}

/// The latency-breakdown categories of Figure 11: L-A, projections
/// (K/Q/V/O), and the block's two FC layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpCategory {
    /// Logit and Attend — the fusion target.
    LogitAttend,
    /// Q/K/V/O projections inside the attention layer.
    Projection,
    /// The two FCs outside the attention layer.
    FeedForward,
}

impl OpCategory {
    /// All categories in the order Figure 11 stacks them.
    #[must_use]
    pub const fn all() -> [OpCategory; 3] {
        [
            OpCategory::LogitAttend,
            OpCategory::Projection,
            OpCategory::FeedForward,
        ]
    }
}

impl fmt::Display for OpCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpCategory::LogitAttend => "L-A",
            OpCategory::Projection => "Projection",
            OpCategory::FeedForward => "FC",
        };
        f.write_str(name)
    }
}

/// One concrete operator: its role in the block plus its GEMM dimensions.
///
/// # Example
///
/// ```
/// use flat_workloads::{AttentionConfig, Operator, OpKind};
///
/// let cfg = AttentionConfig::self_attention(64, 16, 512, 1024, 4096);
/// let logit = Operator::from_config(OpKind::Logit, &cfg);
/// assert_eq!(logit.gemm.batch, 64 * 16);
/// assert_eq!(logit.gemm.n, 512);
/// assert!(!logit.gemm.weight_shared);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operator {
    /// Role in the attention block.
    pub kind: OpKind,
    /// Batched GEMM dimensions.
    pub gemm: Gemm,
}

impl Operator {
    /// Instantiates the GEMM for `kind` at the given layer dimensions.
    #[must_use]
    pub fn from_config(kind: OpKind, cfg: &AttentionConfig) -> Self {
        let (b, h, nq, nkv, d, dk, ffn) = (
            cfg.batch,
            cfg.heads,
            cfg.seq_q,
            cfg.seq_kv,
            cfg.hidden,
            cfg.dk(),
            cfg.ffn_hidden,
        );
        let gemm = match kind {
            // Projections: activation [N, D] × weight [D, D], weight shared
            // across the batch.
            OpKind::Query => Gemm::with_shared_weight(b, nq, d, d),
            OpKind::Key | OpKind::Value => Gemm::with_shared_weight(b, nkv, d, d),
            OpKind::Output => Gemm::with_shared_weight(b, nq, d, d),
            // Activation-activation pair, one GEMM per (batch, head).
            OpKind::Logit => Gemm::new(b * h, nq, dk, nkv),
            OpKind::Attend => Gemm::new(b * h, nq, nkv, dk),
            // Feed-forward pair.
            OpKind::FeedForward1 => Gemm::with_shared_weight(b, nq, d, ffn),
            OpKind::FeedForward2 => Gemm::with_shared_weight(b, nq, ffn, d),
        };
        Operator { kind, gemm }
    }

    /// The Figure 11 category of this operator.
    #[must_use]
    pub fn category(&self) -> OpCategory {
        self.kind.category()
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.gemm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_tensor::DataType;

    fn cfg() -> AttentionConfig {
        AttentionConfig::self_attention(64, 16, 512, 1024, 4096)
    }

    #[test]
    fn logit_and_attend_do_same_work() {
        let l = Operator::from_config(OpKind::Logit, &cfg());
        let a = Operator::from_config(OpKind::Attend, &cfg());
        assert_eq!(l.gemm.macs(), a.gemm.macs());
        // Both equal B·N²·D MACs.
        let c = cfg();
        assert_eq!(l.gemm.macs(), c.batch * c.seq_q * c.seq_kv * c.hidden);
    }

    #[test]
    fn projections_share_weights_and_attention_does_not() {
        for kind in OpKind::all() {
            let op = Operator::from_config(kind, &cfg());
            assert_eq!(op.gemm.weight_shared, !kind.is_activation_activation());
        }
    }

    #[test]
    fn categories_partition_the_block() {
        let mut la = 0;
        let mut proj = 0;
        let mut fc = 0;
        for kind in OpKind::all() {
            match kind.category() {
                OpCategory::LogitAttend => la += 1,
                OpCategory::Projection => proj += 1,
                OpCategory::FeedForward => fc += 1,
            }
        }
        assert_eq!((la, proj, fc), (2, 4, 2));
    }

    /// §2.2: the L operator's OI is far below a projection's at long N and
    /// many heads.
    #[test]
    fn logit_oi_below_projection_oi() {
        let c = cfg().with_seq(4096);
        let l = Operator::from_config(OpKind::Logit, &c);
        let q = Operator::from_config(OpKind::Query, &c);
        assert!(
            l.gemm
                .operational_intensity(DataType::Fp16)
                .flops_per_byte()
                < q.gemm
                    .operational_intensity(DataType::Fp16)
                    .flops_per_byte()
        );
    }

    #[test]
    fn cross_attention_shapes_differ_per_side() {
        let c = AttentionConfig::cross_attention(2, 8, 128, 512, 1024, 4096);
        let q = Operator::from_config(OpKind::Query, &c);
        let k = Operator::from_config(OpKind::Key, &c);
        let l = Operator::from_config(OpKind::Logit, &c);
        assert_eq!(q.gemm.m, 128);
        assert_eq!(k.gemm.m, 512);
        assert_eq!((l.gemm.m, l.gemm.n), (128, 512));
    }

    #[test]
    fn ffn_expands_then_contracts() {
        let c = cfg();
        let f1 = Operator::from_config(OpKind::FeedForward1, &c);
        let f2 = Operator::from_config(OpKind::FeedForward2, &c);
        assert_eq!(f1.gemm.n, c.ffn_hidden);
        assert_eq!(f2.gemm.k, c.ffn_hidden);
        assert_eq!(f2.gemm.n, c.hidden);
    }
}
