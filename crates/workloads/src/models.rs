//! The model zoo used in the paper's evaluation (§6.1).

use crate::{AttentionBlock, AttentionConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five attention-based models of the evaluation suite.
///
/// Layer dimensions come from the models' published configurations; only
/// `D`, `H`, the FFN width, and the block count matter to the cost model.
///
/// # Example
///
/// ```
/// use flat_workloads::Model;
///
/// let bert = Model::bert();
/// assert_eq!(bert.hidden(), 768);
/// let block = bert.block(64, 512);
/// assert_eq!(block.config().heads, 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Model {
    kind: ModelKind,
    blocks: u64,
    heads: u64,
    hidden: u64,
    ffn_hidden: u64,
}

/// Identifier for a zoo model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// BERT-base.
    Bert,
    /// FlauBERT (large).
    FlauBert,
    /// XLM (xlm-mlm-en-2048).
    Xlm,
    /// Transformer-XL (large).
    TransformerXl,
    /// T5-small (encoder stack).
    T5,
    /// A user-supplied configuration (e.g. loaded from a HuggingFace-style
    /// config file).
    Custom,
}

impl Model {
    /// BERT-base: 12 blocks, D=768, H=12, FFN=3072.
    #[must_use]
    pub const fn bert() -> Self {
        Model {
            kind: ModelKind::Bert,
            blocks: 12,
            heads: 12,
            hidden: 768,
            ffn_hidden: 3072,
        }
    }

    /// FlauBERT-large: 24 blocks, D=1024, H=16, FFN=4096.
    #[must_use]
    pub const fn flaubert() -> Self {
        Model {
            kind: ModelKind::FlauBert,
            blocks: 24,
            heads: 16,
            hidden: 1024,
            ffn_hidden: 4096,
        }
    }

    /// XLM (xlm-mlm-en-2048): 12 blocks, D=2048, H=16, FFN=8192.
    #[must_use]
    pub const fn xlm() -> Self {
        Model {
            kind: ModelKind::Xlm,
            blocks: 12,
            heads: 16,
            hidden: 2048,
            ffn_hidden: 8192,
        }
    }

    /// Transformer-XL large: 18 blocks, D=1024, H=16, FFN=4096.
    #[must_use]
    pub const fn transformer_xl() -> Self {
        Model {
            kind: ModelKind::TransformerXl,
            blocks: 18,
            heads: 16,
            hidden: 1024,
            ffn_hidden: 4096,
        }
    }

    /// T5-small encoder: 6 blocks, D=512, H=8, FFN=2048.
    #[must_use]
    pub const fn t5_small() -> Self {
        Model {
            kind: ModelKind::T5,
            blocks: 6,
            heads: 8,
            hidden: 512,
            ffn_hidden: 2048,
        }
    }

    /// A custom model from explicit dimensions (the knobs a
    /// HuggingFace-style config file carries: `num_hidden_layers`,
    /// `num_attention_heads`, `hidden_size`, `intermediate_size`).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `hidden` is not divisible by
    /// `heads`.
    #[must_use]
    pub fn custom(blocks: u64, heads: u64, hidden: u64, ffn_hidden: u64) -> Self {
        assert!(
            blocks > 0 && heads > 0 && hidden > 0 && ffn_hidden > 0,
            "model dimensions must be positive"
        );
        assert!(
            hidden.is_multiple_of(heads),
            "hidden {hidden} must divide across {heads} heads"
        );
        Model {
            kind: ModelKind::Custom,
            blocks,
            heads,
            hidden,
            ffn_hidden,
        }
    }

    /// The whole evaluation suite, in the row order of Figure 12(a).
    #[must_use]
    pub fn suite() -> Vec<Model> {
        vec![
            Model::bert(),
            Model::transformer_xl(),
            Model::flaubert(),
            Model::t5_small(),
            Model::xlm(),
        ]
    }

    /// Looks a model up by its lowercase short name
    /// (`bert`, `trxl`, `flaubert`, `t5`, `xlm`).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Model> {
        match name {
            "bert" => Some(Model::bert()),
            "trxl" | "transformerxl" | "transformer-xl" => Some(Model::transformer_xl()),
            "flaubert" => Some(Model::flaubert()),
            "t5" | "t5-small" => Some(Model::t5_small()),
            "xlm" => Some(Model::xlm()),
            _ => None,
        }
    }

    /// Which zoo model this is.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of (identically parameterized) attention blocks.
    #[must_use]
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Attention heads per layer.
    #[must_use]
    pub fn heads(&self) -> u64 {
        self.heads
    }

    /// Hidden dimension D.
    #[must_use]
    pub fn hidden(&self) -> u64 {
        self.hidden
    }

    /// Feed-forward inner dimension.
    #[must_use]
    pub fn ffn_hidden(&self) -> u64 {
        self.ffn_hidden
    }

    /// Instantiates one attention block at a batch size and sequence length.
    #[must_use]
    pub fn block(&self, batch: u64, seq: u64) -> AttentionBlock {
        AttentionBlock::new(self.config(batch, seq))
    }

    /// The layer configuration at a batch size and sequence length.
    #[must_use]
    pub fn config(&self, batch: u64, seq: u64) -> AttentionConfig {
        AttentionConfig::self_attention(batch, self.heads, seq, self.hidden, self.ffn_hidden)
    }

    /// One autoregressive *decode step* with a KV cache: a single query
    /// token attending to `context` cached keys/values (`seq_q = 1`,
    /// `seq_kv = context`).
    ///
    /// The logit tensor of a decode step is `B·H·1·context` — *linear* in
    /// the context, so the quadratic bottleneck FLAT targets does not
    /// arise; what remains bandwidth-bound is streaming the KV cache
    /// itself. Useful as the contrast case to the prefill/encoder
    /// workloads of the paper.
    #[must_use]
    pub fn decode_step(&self, batch: u64, context: u64) -> AttentionBlock {
        AttentionBlock::new(AttentionConfig::cross_attention(
            batch,
            self.heads,
            1,
            context,
            self.hidden,
            self.ffn_hidden,
        ))
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.kind {
            ModelKind::Bert => "BERT",
            ModelKind::FlauBert => "FlauBERT",
            ModelKind::Xlm => "XLM",
            ModelKind::TransformerXl => "TrXL",
            ModelKind::T5 => "T5",
            ModelKind::Custom => "custom",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_five_models() {
        let suite = Model::suite();
        assert_eq!(suite.len(), 5);
        let mut kinds: Vec<ModelKind> = suite.iter().map(Model::kind).collect();
        kinds.dedup();
        assert_eq!(kinds.len(), 5, "all suite entries distinct");
    }

    #[test]
    fn by_name_round_trips() {
        for m in Model::suite() {
            let name = m.to_string().to_lowercase();
            assert_eq!(Model::by_name(&name), Some(m), "{name}");
        }
        assert_eq!(Model::by_name("nope"), None);
    }

    #[test]
    fn heads_divide_hidden_for_all_models() {
        for m in Model::suite() {
            assert_eq!(m.hidden() % m.heads(), 0, "{m}");
            // Instantiation must not panic.
            let _ = m.block(64, 512);
        }
    }

    #[test]
    fn bert_base_dimensions() {
        let b = Model::bert();
        assert_eq!(
            (b.blocks(), b.heads(), b.hidden(), b.ffn_hidden()),
            (12, 12, 768, 3072)
        );
    }

    #[test]
    fn custom_model_builds_blocks() {
        let m = Model::custom(4, 32, 4096, 16_384);
        assert_eq!(m.kind(), ModelKind::Custom);
        let block = m.block(8, 1024);
        assert_eq!(block.config().dk(), 128);
        assert_eq!(m.to_string(), "custom");
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn custom_model_validates_heads() {
        let _ = Model::custom(2, 3, 1024, 4096);
    }

    #[test]
    fn decode_step_logits_are_linear_in_context() {
        let m = Model::bert();
        let short = m.decode_step(64, 1024);
        let long = m.decode_step(64, 4096);
        assert_eq!(
            long.config().logit_elements(),
            4 * short.config().logit_elements(),
            "decode logits scale linearly, not quadratically"
        );
        assert_eq!(short.config().seq_q, 1);
        assert!(!short.config().is_self_attention());
    }

    #[test]
    fn xlm_is_the_widest() {
        let widest = Model::suite()
            .into_iter()
            .max_by_key(Model::hidden)
            .unwrap();
        assert_eq!(widest.kind(), ModelKind::Xlm);
    }
}
