//! Property tests for the workload substrate.

use flat_workloads::{
    AttentionBlock, AttentionConfig, DecoderBlock, Model, OpCategory, OpKind, Scope,
};
use proptest::prelude::*;

fn configs() -> impl Strategy<Value = AttentionConfig> {
    (
        1u64..=16,
        prop::sample::select(vec![1u64, 2, 4, 8, 16]),
        1u64..2048,
        1u64..2048,
        prop::sample::select(vec![128u64, 256, 512, 1024, 2048]),
    )
        .prop_filter("divisible", |(_, h, _, _, d)| d % h == 0)
        .prop_map(|(b, h, nq, nkv, d)| AttentionConfig::cross_attention(b, h, nq, nkv, d, 4 * d))
}

proptest! {
    /// The L and A operators always do identical MAC counts, equal to
    /// B·Nq·Nkv·D each.
    #[test]
    fn l_and_a_work_is_symmetric(cfg in configs()) {
        let block = AttentionBlock::new(cfg);
        let l = block.operator(OpKind::Logit).gemm.macs();
        let a = block.operator(OpKind::Attend).gemm.macs();
        prop_assert_eq!(l, a);
        prop_assert_eq!(l, cfg.batch * cfg.seq_q * cfg.seq_kv * cfg.hidden);
    }

    /// Multi-head reshaping never changes total work: H is invisible to
    /// the block's MAC count.
    #[test]
    fn heads_preserve_total_macs(b in 1u64..16, n in 1u64..1024, d in prop::sample::select(vec![256u64, 512, 1024])) {
        let one = AttentionBlock::new(AttentionConfig::self_attention(b, 1, n, d, 4 * d));
        let many = AttentionBlock::new(AttentionConfig::self_attention(b, d / 64, n, d, 4 * d));
        prop_assert_eq!(one.total_macs(), many.total_macs());
    }

    /// The three Figure 11 categories partition the block exactly.
    #[test]
    fn categories_partition(cfg in configs()) {
        let block = AttentionBlock::new(cfg);
        let sum: usize = OpCategory::all()
            .iter()
            .map(|&c| block.operators_in_category(c).count())
            .sum();
        prop_assert_eq!(sum, block.operators().len());
        prop_assert_eq!(block.macs_in_scope(Scope::Block), block.total_macs());
    }

    /// The logit tensor is the only O(Nq·Nkv) object: its elements equal
    /// the product of the two sequence lengths times batch and heads.
    #[test]
    fn logit_tensor_size(cfg in configs()) {
        prop_assert_eq!(
            cfg.logit_elements(),
            cfg.batch * cfg.heads * cfg.seq_q * cfg.seq_kv
        );
        prop_assert_eq!(
            cfg.logit_size().as_u64(),
            cfg.logit_elements() * cfg.dtype.size_bytes()
        );
    }

    /// Table 1 staging formulas are monotone in sequence length and the
    /// L/A one eventually dominates the projection one (the paper's
    /// motivating crossover).
    #[test]
    fn staging_footprints_cross(h in prop::sample::select(vec![4u64, 8, 16])) {
        let at = |n: u64| AttentionConfig::self_attention(1, h, n, 1024, 4096);
        prop_assert!(at(512).la_staging_size() < at(4096).la_staging_size());
        // At long N, L/A staging exceeds projection staging.
        prop_assert!(at(16_384).la_staging_size() > at(16_384).qkvo_staging_size());
    }

    /// A decoder block is exactly one self-attention and one
    /// cross-attention worth of L-A work plus a single FFN.
    #[test]
    fn decoder_block_work_decomposes(
        b in 1u64..8,
        dec in 1u64..512,
        enc in 1u64..2048,
    ) {
        let model = Model::t5_small();
        let block = DecoderBlock::for_model(&model, b, dec, enc);
        let la: u64 = block
            .operators_in_category(OpCategory::LogitAttend)
            .map(|o| o.gemm.macs())
            .sum();
        let expected = 2 * b * dec * dec * model.hidden()     // self L+A
            + 2 * b * dec * enc * model.hidden();              // cross L+A
        prop_assert_eq!(la, expected);
    }

    /// Decode steps are linear in context: doubling the KV cache doubles
    /// the decode logit tensor.
    #[test]
    fn decode_step_linearity(b in 1u64..32, ctx in 1u64..32_768) {
        let m = Model::bert();
        let one = m.decode_step(b, ctx).config().logit_elements();
        let two = m.decode_step(b, 2 * ctx).config().logit_elements();
        prop_assert_eq!(two, 2 * one);
    }
}
