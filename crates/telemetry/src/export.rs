//! Exporters: Chrome trace-event JSON (Perfetto-loadable) documents.
//!
//! Both the buffered ([`MemorySink::to_chrome_trace`]) and streaming
//! ([`JsonStreamSink`]) paths produce *byte-identical* documents for the
//! same event sequence — the determinism tests compare them directly.
//!
//! [`MemorySink::to_chrome_trace`]: crate::MemorySink::to_chrome_trace
//! [`JsonStreamSink`]: crate::JsonStreamSink

use crate::event::Event;

/// Document prefix shared by both export paths.
pub(crate) const TRACE_HEADER: &str = "{\"traceEvents\":[\n";

/// Document suffix shared by both export paths.
pub(crate) const TRACE_FOOTER: &str = "\n],\"displayTimeUnit\":\"ms\"}\n";

/// Sorts events into the deterministic total order the exporters and
/// golden tests rely on: `(ts, pid, tid, name)`, stable — events equal
/// on all four keys keep their production order. Producers that collect
/// events from several lanes (the `flat-desim` per-context traces, the
/// multi-chip collective traces) sort before export so the document is a
/// pure function of the event *set*, not of collection order.
pub fn sort_events(events: &mut [Event]) {
    events.sort_by(|a, b| {
        a.ts_us
            .total_cmp(&b.ts_us)
            .then_with(|| a.pid.cmp(&b.pid))
            .then_with(|| a.tid.cmp(&b.tid))
            .then_with(|| a.name.cmp(&b.name))
    });
}

/// Serializes `events` as one Chrome trace JSON document, one event per
/// line, in the given order.
///
/// # Contract
///
/// The exporter is a pure serializer — it never panics and never
/// validates span structure:
///
/// * an empty stream is a complete, loadable document;
/// * events fully tied on `(ts, pid, tid, name)` all serialize, in
///   their given order;
/// * an unmatched `B` (begin with no `E`) serializes as-is — balancing
///   spans is the *producer's* contract (the `flat-serve` engine closes
///   every lane it opens), and viewers render an unmatched `B` as a
///   span running to the end of the trace.
#[must_use]
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(TRACE_HEADER.len() + 112 * events.len());
    out.push_str(TRACE_HEADER);
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&ev.to_json());
    }
    out.push_str(TRACE_FOOTER);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_a_complete_document() {
        let doc = chrome_trace_json(&[]);
        assert_eq!(doc, "{\"traceEvents\":[\n\n],\"displayTimeUnit\":\"ms\"}\n");
    }

    /// Pins the deterministic total order: ts, then pid, then tid, then
    /// name, stable within full ties.
    #[test]
    fn sort_events_orders_by_ts_pid_tid_name() {
        let mut events = vec![
            Event::instant("b", "c", 2.0, 0, 0),
            Event::instant("z", "c", 1.0, 1, 0),
            Event::instant("a", "c", 1.0, 0, 5),
            Event::instant("y", "c", 1.0, 0, 2),
            Event::instant("x", "c", 1.0, 0, 2),
            Event::instant("x", "c", 1.0, 0, 2).arg("first", 1u64),
        ];
        sort_events(&mut events);
        let keys: Vec<(f64, u32, u64, &str)> = events
            .iter()
            .map(|e| (e.ts_us, e.pid, e.tid, e.name.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![
                (1.0, 0, 2, "x"),
                (1.0, 0, 2, "x"),
                (1.0, 0, 2, "y"),
                (1.0, 0, 5, "a"),
                (1.0, 1, 0, "z"),
                (2.0, 0, 0, "b"),
            ]
        );
        // Stable: the un-arg'd "x" was produced first and stays first.
        assert!(events[0].args.is_empty());
        assert_eq!(events[1].args.len(), 1);
    }

    /// The pathological-input contract: empty streams, full key ties,
    /// and unbalanced spans all sort and serialize without panicking.
    #[test]
    fn pathological_inputs_sort_and_serialize() {
        // Empty stream: sorting is a no-op, the document is complete.
        let mut none: Vec<Event> = Vec::new();
        sort_events(&mut none);
        assert!(chrome_trace_json(&none).contains("\"traceEvents\""));

        // Every event identical on (ts, pid, tid, name): the stable sort
        // keeps production order, and all of them serialize.
        let mut tied: Vec<Event> = (0..4)
            .map(|i| Event::instant("tie", "c", 1.0, 2, 3).arg("seq", i as u64))
            .collect();
        sort_events(&mut tied);
        let doc = chrome_trace_json(&tied);
        for i in 0..4 {
            assert!(doc.contains(&format!("\"seq\":{i}")), "lost tied event {i}");
        }
        let seqs: Vec<usize> = tied
            .iter()
            .map(|e| match e.args[0].1 {
                crate::ArgValue::U64(v) => v as usize,
                _ => usize::MAX,
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3], "stable sort reordered ties");

        // Unmatched B without E: serialized as-is, no panic, no synthetic
        // close — balancing is the producer's job.
        let mut open = vec![Event::begin("orphan", "c", 5.0, 0, 0)];
        sort_events(&mut open);
        let doc = chrome_trace_json(&open);
        assert_eq!(doc.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(doc.matches("\"ph\":\"E\"").count(), 0);
    }

    #[test]
    fn events_are_comma_separated_lines() {
        let doc = chrome_trace_json(&[
            Event::begin("a", "c", 0.0, 0, 0),
            Event::end("a", "c", 1.0, 0, 0),
        ]);
        assert_eq!(doc.matches("\"ph\":").count(), 2);
        assert_eq!(doc.matches(",\n{").count(), 1);
    }
}
