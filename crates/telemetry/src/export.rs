//! Exporters: Chrome trace-event JSON (Perfetto-loadable) documents.
//!
//! Both the buffered ([`MemorySink::to_chrome_trace`]) and streaming
//! ([`JsonStreamSink`]) paths produce *byte-identical* documents for the
//! same event sequence — the determinism tests compare them directly.
//!
//! [`MemorySink::to_chrome_trace`]: crate::MemorySink::to_chrome_trace
//! [`JsonStreamSink`]: crate::JsonStreamSink

use crate::event::Event;

/// Document prefix shared by both export paths.
pub(crate) const TRACE_HEADER: &str = "{\"traceEvents\":[\n";

/// Document suffix shared by both export paths.
pub(crate) const TRACE_FOOTER: &str = "\n],\"displayTimeUnit\":\"ms\"}\n";

/// Serializes `events` as one Chrome trace JSON document, one event per
/// line, in the given order.
#[must_use]
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(TRACE_HEADER.len() + 112 * events.len());
    out.push_str(TRACE_HEADER);
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&ev.to_json());
    }
    out.push_str(TRACE_FOOTER);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_a_complete_document() {
        let doc = chrome_trace_json(&[]);
        assert_eq!(doc, "{\"traceEvents\":[\n\n],\"displayTimeUnit\":\"ms\"}\n");
    }

    #[test]
    fn events_are_comma_separated_lines() {
        let doc = chrome_trace_json(&[
            Event::begin("a", "c", 0.0, 0, 0),
            Event::end("a", "c", 1.0, 0, 0),
        ]);
        assert_eq!(doc.matches("\"ph\":").count(), 2);
        assert_eq!(doc.matches(",\n{").count(), 1);
    }
}
