//! Trace sinks: where producers send their events.
//!
//! The contract is built for hot loops: every producer call site guards
//! with [`TraceSink::enabled`] before *constructing* an [`Event`] (event
//! construction allocates), so a disabled sink costs one inlined boolean
//! load per potential event — the zero-overhead-when-off guarantee the
//! serving tests pin by diffing metrics JSON against an untraced run.

use crate::event::Event;
use crate::export::{chrome_trace_json, TRACE_FOOTER, TRACE_HEADER};
use std::io::Write;

/// A destination for trace events.
///
/// Implementations must not reorder events: exporters rely on
/// file-arrival order only for byte-determinism (viewers sort by `ts`
/// themselves), and producers emit deterministically.
pub trait TraceSink {
    /// Whether events should be produced at all. Call sites must check
    /// this before building an [`Event`]; a `false` sink sees no traffic.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&mut self, ev: Event);
}

/// The disabled sink: [`enabled`](TraceSink::enabled) is `false` and
/// [`record`](TraceSink::record) is empty, so traced code paths compile
/// down to untraced ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: Event) {}
}

/// An in-memory sink: buffers every event, for tests and for callers
/// that post-process (schema checks, histogram extraction).
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// The recorded events, in arrival order.
    pub events: Vec<Event>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Exports everything recorded so far as a Chrome trace JSON
    /// document.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace_json(&self.events)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

/// A streaming sink: writes each event as one line of a Chrome trace
/// JSON document as it arrives, so long runs never buffer their whole
/// trace in memory.
///
/// I/O errors cannot surface from [`TraceSink::record`]; the first one
/// is latched and returned by [`finish`](Self::finish), and recording
/// stops after it.
#[derive(Debug)]
pub struct JsonStreamSink<W: Write> {
    writer: W,
    written: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonStreamSink<W> {
    /// Starts a trace document on `writer`.
    ///
    /// # Errors
    ///
    /// Propagates the header write failure.
    pub fn new(mut writer: W) -> std::io::Result<Self> {
        writer.write_all(TRACE_HEADER.as_bytes())?;
        Ok(JsonStreamSink {
            writer,
            written: 0,
            error: None,
        })
    }

    /// Events successfully written so far.
    #[must_use]
    pub fn events_written(&self) -> u64 {
        self.written
    }

    /// Closes the JSON document and returns the writer.
    ///
    /// # Errors
    ///
    /// The first error hit while recording, or the footer write/flush
    /// failure.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.write_all(TRACE_FOOTER.as_bytes())?;
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonStreamSink<W> {
    fn record(&mut self, ev: Event) {
        if self.error.is_some() {
            return;
        }
        let mut line = String::with_capacity(112);
        if self.written > 0 {
            line.push_str(",\n");
        }
        line.push_str(&ev.to_json());
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
            return;
        }
        self.written += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled() {
        let mut sink = NoopSink;
        assert!(!sink.enabled());
        sink.record(Event::instant("x", "c", 0.0, 0, 0)); // must not panic
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let mut sink = MemorySink::new();
        assert!(sink.enabled());
        sink.record(Event::begin("a", "c", 0.0, 0, 1));
        sink.record(Event::end("a", "c", 5.0, 0, 1));
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].name, "a");
        let json = sink.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
    }

    #[test]
    fn stream_sink_matches_memory_export_byte_for_byte() {
        let events = vec![
            Event::process_name(0, "engine"),
            Event::begin("a", "c", 0.0, 0, 1).arg("k", 7u64),
            Event::end("a", "c", 5.0, 0, 1),
        ];
        let mut mem = MemorySink::new();
        let mut stream = JsonStreamSink::new(Vec::new()).unwrap();
        for ev in &events {
            mem.record(ev.clone());
            stream.record(ev.clone());
        }
        assert_eq!(stream.events_written(), 3);
        let bytes = stream.finish().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), mem.to_chrome_trace());
    }

    #[test]
    fn stream_sink_with_no_events_is_valid_json() {
        let sink = JsonStreamSink::new(Vec::new()).unwrap();
        let bytes = sink.finish().unwrap();
        let doc = String::from_utf8(bytes).unwrap();
        assert_eq!(doc, chrome_trace_json(&[]));
    }

    /// A sink that fails mid-run latches the error for `finish` instead
    /// of panicking in `record`.
    #[test]
    fn stream_sink_latches_io_errors() {
        struct Failing(usize);
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonStreamSink::new(Failing(2)).unwrap();
        sink.record(Event::instant("a", "c", 0.0, 0, 0));
        sink.record(Event::instant("b", "c", 1.0, 0, 0)); // hits the error
        sink.record(Event::instant("c", "c", 2.0, 0, 0)); // silently skipped
        assert!(sink.finish().is_err());
    }
}
