//! The trace event model: a minimal, allocation-conscious subset of the
//! Chrome trace-event format that Perfetto and `chrome://tracing` load.
//!
//! Every event carries the four fields the viewers require — a phase
//! (`ph`), a timestamp in microseconds (`ts`), a process id (`pid`), and
//! a thread id (`tid`) — plus a name, a category, and an ordered list of
//! numeric or string arguments. Producers stamp `ts` from whatever clock
//! they own (the serving engine's deterministic virtual clock, the
//! simulator's cycle counter, a search's candidate index): the schema is
//! clock-agnostic, and byte-reproducibility is the producer's clock's
//! property, preserved verbatim here.

use std::fmt::Write as _;

/// The event phase — the `ph` field of the Chrome trace-event format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventPhase {
    /// `B`: a span opens on `(pid, tid)` at `ts`.
    Begin,
    /// `E`: the innermost open span on `(pid, tid)` closes at `ts`.
    End,
    /// `X`: a complete span of `dur_us` microseconds starting at `ts`.
    Complete {
        /// Span duration in microseconds.
        dur_us: f64,
    },
    /// `C`: a counter sample — each numeric argument becomes one series
    /// of the counter track named by the event.
    Counter,
    /// `i`: an instant marker.
    Instant,
    /// `M`: viewer metadata (`process_name` / `thread_name`).
    Metadata,
}

impl EventPhase {
    /// The single-character `ph` value the exporters write.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            EventPhase::Begin => "B",
            EventPhase::End => "E",
            EventPhase::Complete { .. } => "X",
            EventPhase::Counter => "C",
            EventPhase::Instant => "i",
            EventPhase::Metadata => "M",
        }
    }
}

/// One event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An integer (exact in the export).
    U64(u64),
    /// A float (exported with three decimals, deterministically).
    F64(f64),
    /// A string (JSON-escaped in the export).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event (or span, or counter-track) name.
    pub name: String,
    /// Category, used by viewers for filtering (`request`, `collective`,
    /// `dse`, `kernel`, …).
    pub cat: &'static str,
    /// Phase.
    pub ph: EventPhase,
    /// Timestamp in microseconds on the producer's clock.
    pub ts_us: f64,
    /// Process lane: `pid` 0 is the engine/scheduler; chips map to
    /// `pid = 1 + chip`.
    pub pid: u32,
    /// Thread lane within the process: request id, engine lane, or
    /// hardware resource.
    pub tid: u64,
    /// Ordered key/value arguments (order is preserved in the export, so
    /// output stays byte-deterministic).
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    /// A span-begin event.
    #[must_use]
    pub fn begin(name: &str, cat: &'static str, ts_us: f64, pid: u32, tid: u64) -> Self {
        Event::new(name, cat, EventPhase::Begin, ts_us, pid, tid)
    }

    /// A span-end event.
    #[must_use]
    pub fn end(name: &str, cat: &'static str, ts_us: f64, pid: u32, tid: u64) -> Self {
        Event::new(name, cat, EventPhase::End, ts_us, pid, tid)
    }

    /// A complete span covering `[ts_us, ts_us + dur_us]`.
    #[must_use]
    pub fn complete(
        name: &str,
        cat: &'static str,
        ts_us: f64,
        dur_us: f64,
        pid: u32,
        tid: u64,
    ) -> Self {
        Event::new(name, cat, EventPhase::Complete { dur_us }, ts_us, pid, tid)
    }

    /// A counter sample; add one series per [`arg`](Self::arg).
    #[must_use]
    pub fn counter(name: &str, cat: &'static str, ts_us: f64, pid: u32, tid: u64) -> Self {
        Event::new(name, cat, EventPhase::Counter, ts_us, pid, tid)
    }

    /// An instant marker.
    #[must_use]
    pub fn instant(name: &str, cat: &'static str, ts_us: f64, pid: u32, tid: u64) -> Self {
        Event::new(name, cat, EventPhase::Instant, ts_us, pid, tid)
    }

    /// Metadata naming process `pid` in the viewer.
    #[must_use]
    pub fn process_name(pid: u32, name: &str) -> Self {
        Event::new(
            "process_name",
            "__metadata",
            EventPhase::Metadata,
            0.0,
            pid,
            0,
        )
        .arg("name", name)
    }

    /// Metadata naming thread `(pid, tid)` in the viewer.
    #[must_use]
    pub fn thread_name(pid: u32, tid: u64, name: &str) -> Self {
        Event::new(
            "thread_name",
            "__metadata",
            EventPhase::Metadata,
            0.0,
            pid,
            tid,
        )
        .arg("name", name)
    }

    fn new(name: &str, cat: &'static str, ph: EventPhase, ts_us: f64, pid: u32, tid: u64) -> Self {
        Event {
            name: name.to_owned(),
            cat,
            ph,
            ts_us,
            pid,
            tid,
            args: Vec::new(),
        }
    }

    /// Appends one argument (builder-style).
    #[must_use]
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }

    /// Serializes the event as one Chrome trace-event JSON object —
    /// byte-deterministic: fixed field order, fixed float precision, no
    /// hash-ordered containers anywhere.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"name\":\"");
        escape_into(&mut out, &self.name);
        out.push_str("\",\"cat\":\"");
        escape_into(&mut out, self.cat);
        let _ = write!(
            out,
            "\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":{},\"tid\":{}",
            self.ph.code(),
            self.ts_us,
            self.pid,
            self.tid
        );
        if let EventPhase::Complete { dur_us } = self.ph {
            // Viewers drop zero-width slices; clamp to 1 ns.
            let _ = write!(out, ",\"dur\":{:.3}", dur_us.max(0.001));
        }
        if !self.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(&mut out, key);
                out.push_str("\":");
                match value {
                    ArgValue::U64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    ArgValue::F64(v) if v.is_finite() => {
                        let _ = write!(out, "{v:.3}");
                    }
                    // JSON has no NaN/inf; stringify rather than emit an
                    // unparseable document.
                    ArgValue::F64(v) => {
                        let _ = write!(out, "\"{v}\"");
                    }
                    ArgValue::Str(s) => {
                        out.push('"');
                        escape_into(&mut out, s);
                        out.push('"');
                    }
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_has_all_required_fields() {
        let ev = Event::begin("prefill", "request", 1500.25, 0, 7);
        let json = ev.to_json();
        for field in [
            "\"name\":\"prefill\"",
            "\"cat\":\"request\"",
            "\"ph\":\"B\"",
            "\"ts\":1500.250",
            "\"pid\":0",
            "\"tid\":7",
        ] {
            assert!(json.contains(field), "{field} missing from {json}");
        }
    }

    #[test]
    fn complete_events_carry_duration_and_clamp_zero() {
        let ev = Event::complete("tick", "engine", 10.0, 0.0, 0, 0);
        assert!(ev.to_json().contains("\"dur\":0.001"));
        let ev = Event::complete("tick", "engine", 10.0, 2.5, 0, 0);
        assert!(ev.to_json().contains("\"dur\":2.500"));
    }

    #[test]
    fn args_preserve_order_and_types() {
        let ev = Event::counter("kv", "engine", 0.0, 0, 0)
            .arg("used", 12u64)
            .arg("frac", 0.5)
            .arg("label", "pool");
        let json = ev.to_json();
        assert!(json.contains("\"args\":{\"used\":12,\"frac\":0.500,\"label\":\"pool\"}"));
    }

    #[test]
    fn nonfinite_args_stay_parseable() {
        let ev = Event::counter("x", "c", 0.0, 0, 0).arg("bad", f64::NAN);
        assert!(ev.to_json().contains("\"bad\":\"NaN\""));
    }

    #[test]
    fn names_are_escaped() {
        let ev = Event::instant("a\"b\\c\n", "cat", 0.0, 0, 0);
        assert!(ev.to_json().contains("a\\\"b\\\\c\\n"));
    }

    #[test]
    fn metadata_constructors_name_lanes() {
        let p = Event::process_name(2, "chip 1");
        assert_eq!(p.ph.code(), "M");
        assert!(p.to_json().contains("\"args\":{\"name\":\"chip 1\"}"));
        let t = Event::thread_name(0, 3, "request 3");
        assert_eq!(t.pid, 0);
        assert_eq!(t.tid, 3);
    }
}
